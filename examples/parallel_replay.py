"""Hindsight parallelism: replaying a recorded run across parallel workers.

The paper's Section 5.4: checkpoints taken at record time break the
cross-iteration dependencies of the main training loop, so replay can run
the epochs in parallel, coordination-free — "even sequential code can be
re-executed in parallel if the right checkpoints are materialized on the
first pass".

This example records a miniature image-classification run, adds an
inner-loop probe (forcing a full re-execution), and replays it with 1, 2
and 4 workers, reporting the wall-clock times, the work partition each
worker received, and the deferred correctness check.

Run it with::

    python examples/parallel_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.modes import InitStrategy
from repro.workloads import build_training_script


def main() -> None:
    home = Path(tempfile.mkdtemp(prefix="flor_parallel_"))
    repro.set_config(repro.FlorConfig(home=home))

    epochs = 8
    script = build_training_script("ImgN", epochs=epochs)

    print(f"=== Recording {epochs} epochs of the miniature ImgN workload ===")
    record = repro.record_source(script, name="parallel-demo")
    print(f"run id: {record.run_id}; vanilla wall time {record.wall_seconds:.2f}s; "
          f"{record.checkpoint_count} checkpoints")

    # A probe inside the training loop: every epoch must be re-executed, so
    # hindsight parallelism is the only lever (Figure 12, bottom).
    probed = script.replace(
        "        optimizer.step()",
        "        optimizer.step()\n"
        "        flor.log(\"batch_loss\", loss.item())")

    print("\n=== Parallel replay of the probed run ===")
    results = {}
    for workers in (1, 2, 4):
        replay = repro.replay_script(record.run_id, new_source=probed,
                                     num_workers=workers,
                                     init_strategy=InitStrategy.WEAK)
        results[workers] = replay
        shares = {worker.pid: worker.iterations
                  for worker in replay.worker_results}
        print(f"\nworkers={workers}: wall {replay.wall_seconds:.2f}s, "
              f"probed={sorted(replay.probed_blocks)}, "
              f"consistent={replay.consistency.consistent}")
        for pid, iterations in sorted(shares.items()):
            print(f"  worker {pid}: epochs {iterations}")
        print(f"  hindsight records recovered: "
              f"{len(replay.values('batch_loss'))} batch losses")

    baseline = results[1].wall_seconds
    print("\n=== Summary ===")
    for workers, replay in results.items():
        speedup = baseline / replay.wall_seconds if replay.wall_seconds else 1.0
        print(f"  {workers} worker(s): {replay.wall_seconds:6.2f}s "
              f"({speedup:.2f}x vs single worker)")
    print("\nNote: miniature epochs take milliseconds, so process start-up "
          "dominates here; at paper scale (hours of GPU time per epoch) the "
          "same partitioning yields the near-ideal scale-out of Figure 13.")


if __name__ == "__main__":
    main()
