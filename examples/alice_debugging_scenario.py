"""The Alice scenario (Section 2.1), replayed with hindsight logging.

In the paper, Alice implements stochastic weight averaging, watches her
model collapse, and spends hours re-running training with ever more logging
statements to track down exploding-then-vanishing gradients caused by the
interaction of a high learning rate with weight decay.

With Flor, Alice records the (failing) run once.  When she later wants the
gradient and weight magnitudes over time, she adds the log statements to
her script and replays — no retraining.

This example reproduces that workflow in miniature: a fine-tuning run with
an aggressively high learning rate and heavy weight decay, recorded once,
then diagnosed entirely from hindsight logs.
"""

from __future__ import annotations

import tempfile
import textwrap
from pathlib import Path

import repro

FAILING_TRAINING_SCRIPT = textwrap.dedent("""
    import numpy as np
    from repro import api as flor
    from repro import torchlike as tl
    from repro.workloads import synthetic_data

    rng = np.random.default_rng(0)
    dataset = synthetic_data.synthetic_text_classification(num_samples=64, seed=0)
    trainloader = tl.DataLoader(dataset, batch_size=16, shuffle=True, seed=0)

    from repro.workloads.models import MiniRoBERTaClassifier
    net = MiniRoBERTaClassifier(freeze_encoder=True, rng=rng)

    # Alice's bug: stochastic-weight-averaging-style high learning rate bounds
    # combined with strong regularization (weight decay).
    optimizer = tl.SGD(net.trainable_parameters(), lr=2.0, momentum=0.9,
                       weight_decay=0.2)
    criterion = tl.CrossEntropyLoss()


    def evaluate(model):
        with tl.no_grad():
            correct, total = 0, 0
            for tokens, labels in trainloader:
                predictions = model(tokens).argmax(axis=-1).numpy()
                correct += int((predictions == labels).sum())
                total += len(labels)
        return correct / max(total, 1)


    for epoch in range(6):
        trainloader.set_epoch(epoch)
        for tokens, labels in trainloader:
            logits = net(tokens)
            loss = criterion(logits, labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        flor.log("train_loss", loss.item())
        flor.log("accuracy", evaluate(net))
""")

GRADIENT_PROBES = FAILING_TRAINING_SCRIPT.replace(
    "        optimizer.step()",
    "        optimizer.step()\n"
    "        flor.log(\"grad_magnitude\", float(sum(\n"
    "            float((p.grad ** 2).sum()) for p in net.trainable_parameters()\n"
    "            if p.grad is not None)) ** 0.5)\n"
    "        flor.log(\"weight_magnitude\", float(sum(\n"
    "            float((p ** 2).sum()) for p in net.trainable_parameters())) ** 0.5)")


def main() -> None:
    home = Path(tempfile.mkdtemp(prefix="flor_alice_"))
    repro.set_config(repro.FlorConfig(home=home))

    print("=== 1. Alice trains with her new technique (recorded by Flor) ===")
    record = repro.record_source(FAILING_TRAINING_SCRIPT, name="alice-swa")
    losses = [r.value for r in record.log_records if r.name == "train_loss"]
    accuracies = [r.value for r in record.log_records if r.name == "accuracy"]
    print(f"epoch losses:     {[round(x, 3) for x in losses]}")
    print(f"epoch accuracies: {[round(x, 3) for x in accuracies]}")
    print("-> the loss gets stuck and accuracy is near chance: something is wrong.")

    print("\n=== 2. Hindsight logging: gradient & weight magnitudes ===")
    print("(In the paper Alice re-trained for an hour per question; here the")
    print(" answers come from replaying the checkpoints of the recorded run.)")
    replay = repro.replay_script(record.run_id, new_source=GRADIENT_PROBES)
    gradients = replay.values("grad_magnitude")
    weights = replay.values("weight_magnitude")
    print(f"probed blocks: {sorted(replay.probed_blocks)}")
    print(f"first-epoch gradient magnitudes: "
          f"{[round(x, 2) for x in gradients[:4]]}")
    print(f"last-epoch gradient magnitudes:  "
          f"{[round(x, 4) for x in gradients[-4:]]}")
    print(f"weight magnitudes over time:     "
          f"{[round(x, 2) for x in weights[::4]]}")

    exploding_then_vanishing = (max(gradients[:4]) > 10 * max(gradients[-4:]))
    print("\n=== 3. Diagnosis ===")
    if exploding_then_vanishing:
        print("Gradients explode early and then vanish while weight magnitudes")
        print("collapse: the high learning rate inflates gradients and weight")
        print("decay over-compensates — disable weight decay (Alice's fix).")
    else:
        print("Gradient trajectory recovered from hindsight logs:")
        print([round(x, 3) for x in gradients])
    print(f"\nDeferred correctness check: {replay.consistency.summary()}")


if __name__ == "__main__":
    main()
