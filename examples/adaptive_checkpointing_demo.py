"""Adaptive checkpointing: why fine-tuning is checkpointed sparsely.

Fine-tuning updates a small head on top of a huge frozen model, so each
epoch is short but a full checkpoint is enormous — materializing one every
epoch would add ~91% overhead on RTE (Figure 7).  The Joint Invariant
(Eq. 4) notices the poor materialization-to-computation ratio and backs off
to periodic checkpoints, keeping overhead below the user's tolerance.

This example shows the mechanism twice:

1. live, by driving the real ``AdaptiveController`` with the cost profile of
   a fine-tuning loop and of a from-scratch training loop;
2. at paper scale, by regenerating Figure 7 from the simulator.

Run it with::

    python examples/adaptive_checkpointing_demo.py
"""

from __future__ import annotations

from repro.config import DEFAULT_EPSILON
from repro.record.adaptive import AdaptiveController
from repro.sim import experiments


def drive_controller(label: str, epochs: int, compute_seconds: float,
                     checkpoint_nbytes: int, materialize_seconds: float) -> None:
    """Run the Joint Invariant over a simulated workload and report."""
    controller = AdaptiveController(epsilon=DEFAULT_EPSILON)
    controller._throughput = checkpoint_nbytes / materialize_seconds
    block = label
    kept: list[int] = []
    for epoch in range(epochs):
        controller.observe_execution(block, compute_seconds)
        decision = controller.should_materialize(block, compute_seconds,
                                                 checkpoint_nbytes)
        if decision.materialize:
            controller.observe_materialization(block, materialize_seconds,
                                               checkpoint_nbytes)
            kept.append(epoch)
    overhead = len(kept) * materialize_seconds / (epochs * compute_seconds)
    print(f"{label:22s} M/C={materialize_seconds / compute_seconds:6.2f}  "
          f"checkpoints {len(kept):3d}/{epochs}  overhead {overhead:6.2%}  "
          f"(tolerance {DEFAULT_EPSILON:.2%})")
    if len(kept) < epochs:
        print(f"{'':22s} checkpointed epochs: {kept[:8]}"
              f"{' ...' if len(kept) > 8 else ''}")


def main() -> None:
    print("=== Live Joint Invariant decisions (Eq. 4) ===")
    # A from-scratch training loop: long epochs, modest checkpoints.
    drive_controller("training (Cifr-like)", epochs=50, compute_seconds=18.0,
                     checkpoint_nbytes=4_000_000, materialize_seconds=0.3)
    # A fine-tuning loop: short epochs, enormous checkpoints.
    drive_controller("fine-tuning (RTE-like)", epochs=50, compute_seconds=2.0,
                     checkpoint_nbytes=70_000_000, materialize_seconds=1.8)

    print("\n=== Paper-scale reproduction of Figure 7 ===")
    rows = experiments.figure7_adaptive_overhead()
    print(experiments.format_table(rows))
    print("\nTakeaway: with adaptivity disabled the fine-tuning workloads blow")
    print("past any budget (91% / 28%); with the Joint Invariant no workload")
    print("exceeds the 6.67% tolerance, at the cost of sparser checkpoints —")
    print("which is exactly why RTE/CoLA later need weak initialization on")
    print("parallel replay (Figure 10).")


if __name__ == "__main__":
    main()
