"""Quickstart: record a training run, then query it in hindsight.

This example mirrors the paper's workflow end to end:

1. write an ordinary PyTorch-style training script (here: a miniature
   SqueezeNet on a synthetic Cifar-like dataset),
2. record it with Flor — the script is instrumented automatically, the
   nested training loop is memoized with Loop End Checkpoints,
3. after the run, add a hindsight logging statement (a "probe") to the
   script and replay: the probed loop is re-executed from checkpoints, the
   rest is skipped, and the new log values appear without retraining.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import repro
from repro.workloads import build_training_script


def main() -> None:
    # Keep this example self-contained: use a throwaway Flor home.
    home = Path(tempfile.mkdtemp(prefix="flor_quickstart_"))
    repro.set_config(repro.FlorConfig(home=home))

    # ------------------------------------------------------------------ #
    # 1. The training script: a plain nested-loop training program.
    # ------------------------------------------------------------------ #
    script = build_training_script("Cifr", epochs=4)
    print("=== Training script (excerpt) ===")
    print("\n".join(script.splitlines()[-12:]))

    # ------------------------------------------------------------------ #
    # 2. Record: instrument, execute, checkpoint.
    # ------------------------------------------------------------------ #
    print("\n=== Recording ===")
    record = repro.record_source(script, name="quickstart")
    losses = [r.value for r in record.log_records if r.name == "train_loss"]
    print(f"run id: {record.run_id}")
    print(f"epoch losses: {[round(x, 4) for x in losses]}")
    print(f"checkpoints materialized: {record.checkpoint_count} "
          f"({record.stored_nbytes} bytes compressed)")
    print(f"wall time: {record.wall_seconds:.2f}s, materialization on the "
          f"main thread: {record.materialization_main_thread_seconds:.3f}s")

    # ------------------------------------------------------------------ #
    # 3. Hindsight logging: probe the inner training loop after the fact.
    # ------------------------------------------------------------------ #
    print("\n=== Hindsight logging: per-batch gradient norms ===")
    probed = script.replace(
        "        optimizer.step()",
        "        optimizer.step()\n"
        "        flor.log(\"grad_norm\", float(sum(\n"
        "            float((p.grad ** 2).sum()) for p in net.parameters()\n"
        "            if p.grad is not None)) ** 0.5)")
    replay = repro.replay_script(record.run_id, new_source=probed)
    print(f"probed blocks: {sorted(replay.probed_blocks)}")
    grad_norms = replay.values("grad_norm")
    print(f"recovered {len(grad_norms)} per-batch gradient norms, "
          f"first five: {[round(x, 4) for x in grad_norms[:5]]}")
    print(f"deferred correctness check: {replay.consistency.summary()}")

    # ------------------------------------------------------------------ #
    # 4. A cheaper query: outer-loop probes skip the training loop entirely.
    # ------------------------------------------------------------------ #
    print("\n=== Hindsight logging: per-epoch weight norm (partial replay) ===")
    outer = script.replace(
        '    flor.log("accuracy", evaluate(net))',
        '    flor.log("accuracy", evaluate(net))\n'
        '    flor.log("weight_norm", float(sum(\n'
        '        float((p ** 2).sum()) for p in net.parameters())) ** 0.5)')
    partial = repro.replay_script(record.run_id, new_source=outer)
    print(f"probed blocks: {sorted(partial.probed_blocks)} "
          "(empty: every training loop was skipped)")
    print(f"weight norms per epoch: "
          f"{[round(x, 3) for x in partial.values('weight_norm')]}")
    print(f"replay wall time: {partial.wall_seconds:.2f}s vs "
          f"record {record.wall_seconds:.2f}s")


if __name__ == "__main__":
    main()
