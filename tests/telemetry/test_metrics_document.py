"""Metrics registry and telemetry-document tests (Chrome-trace round-trip)."""

from __future__ import annotations

import json

from repro.telemetry import (chrome_trace, current_document, document_spans,
                             get_metrics, render_timeline,
                             spans_from_chrome_trace)
from repro.telemetry.document import DOCUMENT_SCHEMA
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import SpanTracer


class TestMetrics:
    def test_disabled_registry_ignores_updates(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.set_gauge("b", 3)
        registry.observe("c", 1.5)
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {},
                            "histograms": {}}

    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("hits")
        registry.inc("hits", 2)
        registry.set_gauge("depth", 5)
        registry.set_gauge("depth", 2)
        for value in (1.0, 3.0, 2.0):
            registry.observe("nbytes", value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits"] == 3
        assert snapshot["gauges"]["depth"] == 2
        histogram = snapshot["histograms"]["nbytes"]
        assert histogram["count"] == 3
        assert histogram["min"] == 1.0
        assert histogram["max"] == 3.0
        assert histogram["mean"] == 2.0

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("x")
        json.dumps(registry.snapshot())

    def test_reset_clears_instruments(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("x")
        registry.reset()
        assert registry.snapshot()["counters"] == {}


def _sample_tracer() -> SpanTracer:
    tracer = SpanTracer(enabled=True)
    with tracer.span("record.session") as root:
        with tracer.span("record.capture", nbytes=21):
            pass
        with tracer.span("storage.put", nbytes=9):
            pass
    assert root.span_id is not None
    return tracer


class TestChromeTrace:
    def test_chrome_trace_schema(self):
        trace = chrome_trace(_sample_tracer().spans())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], int)
            assert event["dur"] >= 1
            assert "pid" in event and "tid" in event
            assert "span_id" in event["args"]
        json.dumps(trace)

    def test_round_trip_preserves_tree_and_attrs(self):
        spans = _sample_tracer().spans()
        back = spans_from_chrome_trace(
            json.loads(json.dumps(chrome_trace(spans))))
        assert {span.name for span in back} == {span.name for span in spans}
        original = {span.span_id: span for span in spans}
        for span in back:
            assert span.parent_id == original[span.span_id].parent_id
        by_name = {span.name: span for span in back}
        assert by_name["record.capture"].attrs["nbytes"] == 21

    def test_non_complete_events_are_skipped(self):
        trace = {"traceEvents": [{"ph": "M", "name": "metadata"}]}
        assert spans_from_chrome_trace(trace) == []


class TestDocument:
    def test_current_document_shape(self, enabled_telemetry):
        with enabled_telemetry.span("record.capture"):
            pass
        get_metrics().inc("record.checkpoints")
        document = current_document(meta={"run_id": "r1"})
        assert document["schema"] == DOCUMENT_SCHEMA
        assert document["meta"] == {"run_id": "r1"}
        assert document["metrics"]["counters"]["record.checkpoints"] == 1
        spans = document_spans(document)
        assert [span.name for span in spans] == ["record.capture"]
        json.dumps(document)

    def test_render_timeline(self):
        text = render_timeline(_sample_tracer().spans())
        lines = text.splitlines()
        assert lines[0].split() == ["OFFSET", "DURATION", "PID", "NAME"]
        assert any("record.capture" in line and "nbytes=21" in line
                   for line in lines)
        # Children are indented under the session root.
        (capture_line,) = [line for line in lines
                           if "record.capture" in line]
        assert "  record.capture" in capture_line

    def test_render_timeline_empty_and_limited(self):
        assert render_timeline([]) == "(no spans)"
        limited = render_timeline(_sample_tracer().spans(), limit=1)
        assert len(limited.splitlines()) == 2  # header + one span
