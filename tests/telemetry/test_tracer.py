"""Unit tests for the span tracer: ring bound, nesting, disabled cost."""

from __future__ import annotations

import os

import pytest

from repro.telemetry import NOOP_SPAN, get_tracer, walk_children
from repro.telemetry.tracer import Span, SpanTracer


class TestDisabled:
    def test_disabled_tracer_returns_the_shared_noop(self):
        tracer = SpanTracer(enabled=False)
        handle = tracer.span("anything", x=1)
        assert handle is NOOP_SPAN
        assert tracer.start("anything") is NOOP_SPAN
        assert len(tracer) == 0

    def test_noop_span_supports_the_full_surface(self):
        with NOOP_SPAN as handle:
            assert handle.set(a=1) is handle
            handle.end()
        assert NOOP_SPAN.span_id is None

    def test_disabled_decorator_adds_no_spans(self):
        tracer = SpanTracer(enabled=False)

        @tracer.trace("work")
        def work():
            return 42

        assert work() == 42
        assert len(tracer) == 0


class TestNesting:
    def test_context_manager_nesting_builds_a_tree(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild"):
                    pass
        spans = tracer.spans()
        by_name = {span.name: span for span in spans}
        assert by_name["root"].parent_id is None
        assert by_name["child"].parent_id == root.span_id
        assert by_name["grandchild"].parent_id == child.span_id
        descendants = {span.name
                       for span in walk_children(spans, root.span_id)}
        assert descendants == {"child", "grandchild"}

    def test_explicit_start_end_brackets_parent_correctly(self):
        tracer = SpanTracer(enabled=True)
        outer = tracer.start("iteration")
        with tracer.span("capture"):
            pass
        outer.end()
        by_name = {span.name: span for span in tracer.spans()}
        assert by_name["capture"].parent_id == outer.span_id
        assert by_name["iteration"].parent_id is None

    def test_exception_marks_the_span_and_still_records_it(self):
        tracer = SpanTracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"

    def test_set_attaches_attributes(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("op", fixed=1) as handle:
            handle.set(late=2)
        (span,) = tracer.spans()
        assert span.attrs == {"fixed": 1, "late": 2}

    def test_end_is_idempotent(self):
        tracer = SpanTracer(enabled=True)
        handle = tracer.start("once")
        handle.end()
        handle.end()
        assert len(tracer) == 1


class TestRingBuffer:
    def test_capacity_bounds_the_buffer_keeping_newest(self):
        tracer = SpanTracer(capacity=16, enabled=True)
        for index in range(40):
            with tracer.span("op", index=index):
                pass
        spans = tracer.spans()
        assert len(spans) == 16
        assert [span.attrs["index"] for span in spans] == list(range(24, 40))

    def test_resize_keeps_the_newest_spans(self):
        tracer = SpanTracer(capacity=32, enabled=True)
        for index in range(20):
            with tracer.span("op", index=index):
                pass
        tracer.configure(capacity=16)
        assert [span.attrs["index"] for span in tracer.spans()] == \
            list(range(4, 20))

    def test_capacity_floor(self):
        assert SpanTracer(capacity=1).capacity == 16


class TestExportIngest:
    def test_span_dict_round_trip(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("op", nbytes=7):
            pass
        (payload,) = tracer.export()
        span = Span.from_dict(payload)
        assert span.name == "op"
        assert span.attrs == {"nbytes": 7}
        assert span.pid == os.getpid()

    def test_drain_exports_and_clears(self):
        tracer = SpanTracer(enabled=True)
        with tracer.span("op"):
            pass
        assert len(tracer.drain()) == 1
        assert len(tracer) == 0

    def test_ingest_reparents_roots_under_the_dispatch_span(self):
        worker = SpanTracer(enabled=True)
        with worker.span("replay.worker") as worker_root:
            with worker.span("replay.restore"):
                pass
        payloads = worker.drain()

        parent = SpanTracer(enabled=True)
        with parent.span("replay.parallel") as dispatch:
            parent.ingest(payloads, parent_id=dispatch.span_id)
        by_name = {span.name: span for span in parent.spans()}
        assert by_name["replay.worker"].parent_id == dispatch.span_id
        # Non-root worker spans keep their in-worker parent link.
        assert by_name["replay.restore"].parent_id == worker_root.span_id

    def test_decorator_records_when_enabled(self):
        tracer = SpanTracer(enabled=True)

        @tracer.trace()
        def compute():
            return 7

        assert compute() == 7
        (span,) = tracer.spans()
        assert "compute" in span.name


class TestOverhead:
    def test_disabled_span_call_is_cheap(self):
        """The disabled fast path must not allocate spans or read clocks."""
        tracer = get_tracer()
        assert not tracer.enabled  # suite default: telemetry off
        before = len(tracer)
        for _ in range(10_000):
            tracer.span("hot.seam", a=1)
        assert len(tracer) == before
