"""Telemetry test fixtures: restore the process-global recorder state.

The tracer and metrics registry are process-wide singletons and
``enable_from_config`` never turns them off, so every test here snapshots
and restores enabled/capacity state to keep telemetry from leaking into
unrelated tests in the same pytest process.
"""

from __future__ import annotations

import pytest

from repro.telemetry import DEFAULT_CAPACITY, configure, get_metrics, \
    get_tracer


@pytest.fixture(autouse=True)
def clean_telemetry():
    tracer = get_tracer()
    metrics = get_metrics()
    was_enabled = tracer.enabled
    was_capacity = tracer.capacity
    metrics_enabled = metrics.enabled
    tracer.reset()
    metrics.reset()
    yield
    configure(enabled=was_enabled, capacity=was_capacity)
    metrics.configure(enabled=metrics_enabled)
    tracer.reset()
    metrics.reset()


@pytest.fixture()
def enabled_telemetry(clean_telemetry):
    configure(enabled=True, capacity=DEFAULT_CAPACITY)
    get_metrics().configure(enabled=True)
    yield get_tracer()
    configure(enabled=False)
    get_metrics().configure(enabled=False)
