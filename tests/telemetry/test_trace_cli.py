"""``python -m repro.trace`` CLI tests: formats, targets, exit codes."""

from __future__ import annotations

import json
import textwrap

import pytest

import repro
from repro.config import FlorConfig
from repro.record.recorder import record_source
from repro.trace import main

SCRIPT = textwrap.dedent("""
    import numpy as np
    from repro import api as flor

    state = np.zeros(8, dtype='float32')
    for epoch in range(4):
        for _step in range(1):
            state = state + 1.0
        flor.log("loss", float(state.sum()))
""")


@pytest.fixture()
def traced_run(tmp_path):
    config = FlorConfig(home=tmp_path / "flor_home", telemetry=True)
    repro.set_config(config)
    result = record_source(SCRIPT, name="traced", config=config)
    yield result.run_id
    repro.reset_config()


class TestTraceCLI:
    def test_table_output_for_a_run(self, traced_run, capsys):
        assert main([traced_run]) == 0
        out = capsys.readouterr().out
        assert "record.session" in out
        assert out.splitlines()[0].split() == \
            ["OFFSET", "DURATION", "PID", "NAME"]

    def test_chrome_output_is_valid_trace_json(self, traced_run, tmp_path):
        out_file = tmp_path / "trace.json"
        assert main([traced_run, "--format", "chrome",
                     "--output", str(out_file)]) == 0
        trace = json.loads(out_file.read_text(encoding="utf-8"))
        assert trace["traceEvents"]
        assert all(event["ph"] == "X" for event in trace["traceEvents"])
        categories = {event["cat"] for event in trace["traceEvents"]}
        assert {"record", "spool", "storage"} <= categories

    def test_chrome_trace_spans_record_through_query(self, traced_run,
                                                     tmp_path):
        """One document covering record, spool, storage, AND query seams."""
        probe = SCRIPT.replace(
            'flor.log("loss", float(state.sum()))',
            'flor.log("loss", float(state.sum()))\n'
            '    flor.log("norm", float(np.linalg.norm(state)))')
        repro.query(values="norm", runs=traced_run, source=probe)
        from repro.telemetry import current_document
        document_file = tmp_path / "document.json"
        document_file.write_text(json.dumps(current_document()),
                                 encoding="utf-8")
        out_file = tmp_path / "trace.json"
        assert main([str(document_file), "--format", "chrome",
                     "--output", str(out_file)]) == 0
        trace = json.loads(out_file.read_text(encoding="utf-8"))
        categories = {event["cat"] for event in trace["traceEvents"]}
        assert {"record", "spool", "storage", "query"} <= categories

    def test_file_target_round_trips(self, traced_run, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        main([traced_run, "--format", "chrome", "--output", str(out_file)])
        assert main([str(out_file), "--limit", "5"]) == 0
        assert "record.session" in capsys.readouterr().out

    def test_unknown_target_exits_2(self, flor_config, capsys):
        assert main(["definitely-not-a-run"]) == 2
        assert "neither a file nor a cataloged run" in \
            capsys.readouterr().err

    def test_run_without_telemetry_exits_2(self, flor_config, capsys):
        result = record_source(SCRIPT, name="dark", config=flor_config)
        assert main([result.run_id]) == 2
        assert "no persisted telemetry" in capsys.readouterr().err

    def test_empty_document_file_exits_1(self, flor_config, tmp_path,
                                         capsys):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"schema": 1, "spans": []}),
                         encoding="utf-8")
        assert main([str(empty)]) == 1
        assert "(no spans)" in capsys.readouterr().out

    def test_malformed_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"neither\": true}", encoding="utf-8")
        assert main([str(bad)]) == 2
        capsys.readouterr()
