"""End-to-end flight recorder: sessions, workers, persistence, feedback.

These tests record (and replay) tiny runs with ``FlorConfig.telemetry``
on and assert the promises of the telemetry subsystem: spans from every
hot seam land in one bounded buffer, worker-process spans come back
re-parented under the dispatching span, the document is persisted as
store metadata at session close, and measured restore durations feed the
planner's cost model.
"""

from __future__ import annotations

import os
import textwrap

import pytest

import repro
from repro.config import FlorConfig
from repro.record.recorder import record_source
from repro.replay.scheduler import load_iteration_costs
from repro.storage.checkpoint_store import CheckpointStore
from repro.telemetry import (METADATA_KEY, configure, document_spans,
                             get_metrics, get_tracer, walk_children)

EPOCHS = 8

SCRIPT = textwrap.dedent(f"""
    import numpy as np
    from repro import api as flor

    state = np.zeros(16, dtype='float32')
    for epoch in range({EPOCHS}):
        for _step in range(1):
            state = state + 1.0
        flor.log("loss", float(state.sum()))
""")

PROBE = SCRIPT.replace(
    'flor.log("loss", float(state.sum()))',
    'flor.log("loss", float(state.sum()))\n'
    '    flor.log("norm", float(np.linalg.norm(state)))')


@pytest.fixture()
def telemetry_config(tmp_path):
    # Default (spool) materialization: the telemetry tests assert spans
    # from the spool seams specifically.
    config = FlorConfig(home=tmp_path / "flor_home", telemetry=True)
    repro.set_config(config)
    yield config
    repro.reset_config()


class TestRecordCapture:
    def test_telemetry_off_by_default_leaves_no_trace(self, flor_config):
        configure(enabled=False)
        get_metrics().configure(enabled=False)
        result = record_source(SCRIPT, name="dark", config=flor_config)
        assert len(get_tracer()) == 0
        assert get_metrics().snapshot()["counters"] == {}
        store = CheckpointStore.for_config(
            flor_config.run_dir(result.run_id), flor_config)
        try:
            assert store.get_metadata(METADATA_KEY) is None
        finally:
            store.close()

    def test_record_session_persists_a_document(self, telemetry_config):
        result = record_source(SCRIPT, name="lit", config=telemetry_config)
        store = CheckpointStore.for_config(
            telemetry_config.run_dir(result.run_id), telemetry_config)
        try:
            document = store.get_metadata(METADATA_KEY)
        finally:
            store.close()
        assert document["meta"]["run_id"] == result.run_id
        names = {span.name for span in document_spans(document)}
        # Hot seams across the layers all reported in.
        assert "record.session" in names
        assert "record.iteration" in names
        assert "record.capture" in names
        assert any(name.startswith("spool.") for name in names)
        assert any(name.startswith("storage.") for name in names)
        counters = document["metrics"]["counters"]
        assert counters["record.checkpoints"] >= 1

    def test_buffer_stays_within_configured_capacity(self, tmp_path):
        config = FlorConfig(home=tmp_path / "flor_home",
                            telemetry=True, telemetry_buffer=32)
        repro.set_config(config)
        try:
            record_source(SCRIPT, name="ring", config=config)
            assert get_tracer().capacity == 32
            assert len(get_tracer()) <= 32
        finally:
            repro.reset_config()


@pytest.mark.multiproc
class TestCrossProcessSpans:
    def test_worker_spans_reparent_under_the_dispatch_span(
            self, telemetry_config):
        recorded = record_source(SCRIPT, name="pool",
                                 config=telemetry_config)
        result = repro.query(values=["loss", "norm"], runs=recorded.run_id,
                             source=PROBE, config=telemetry_config,
                             workers=2)
        assert result.stats.resolved_replay == EPOCHS
        assert result.stats.replay_job_count >= 2

        spans = get_tracer().spans()
        dispatches = [span for span in spans if span.name == "replay.jobs"]
        assert dispatches, "pool dispatch span missing"
        dispatch = dispatches[-1]
        children = list(walk_children(spans, dispatch.span_id))
        worker_pids = {span.pid for span in children} - {os.getpid()}
        assert worker_pids, "no spans shipped back from worker processes"
        child_names = {span.name for span in children}
        assert any(name.startswith("replay.") for name in child_names)
        # Worker-side spans keep their own subtree structure: every child
        # either hangs off the dispatch or off another shipped span.
        shipped_ids = {span.span_id for span in children}
        for span in children:
            assert span.parent_id == dispatch.span_id \
                or span.parent_id in shipped_ids


@pytest.mark.multiproc
class TestCostFeedback:
    def test_observed_restore_seconds_feed_iteration_costs(
            self, telemetry_config):
        recorded = record_source(SCRIPT, name="ewma",
                                 config=telemetry_config)
        repro.query(values="norm", runs=recorded.run_id, source=PROBE,
                    config=telemetry_config, workers=2)
        store = CheckpointStore.for_config(
            telemetry_config.run_dir(recorded.run_id), telemetry_config)
        try:
            stats = store.get_metadata("iteration_stats")
            costs = load_iteration_costs(store)
        finally:
            store.close()
        assert stats["restore_observations"] >= 1
        observed = stats["observed_restore_seconds"]
        assert observed > 0.0
        # The measured EWMA replaces the prior in the planner's cost model.
        assert costs.restore_seconds == pytest.approx(observed)
