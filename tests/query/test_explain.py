"""Tests for ``repro.explain``: plan reporting without execution."""

from __future__ import annotations

import json
import textwrap

import pytest

import repro
from repro.exceptions import ReplaySafetyError
from repro.query.explain import ExplainReport, SpanChoice, explain
from repro.query.memo import MemoCache
from repro.record.recorder import record_source
from repro.storage.checkpoint_store import CheckpointStore

EPOCHS = 6

SCRIPT = textwrap.dedent(f"""
    import numpy as np
    from repro import api as flor

    state = np.zeros(8, dtype='float32')
    for epoch in range({EPOCHS}):
        for _step in range(1):
            state = state + 1.0
        flor.log("loss", float(state.sum()))
""")

PROBE = SCRIPT.replace(
    'flor.log("loss", float(state.sum()))',
    'flor.log("loss", float(state.sum()))\n'
    '    flor.log("norm", float(np.linalg.norm(state)))')


@pytest.fixture()
def recorded(flor_config):
    return record_source(SCRIPT, name="explained", config=flor_config)


class TestExplainReport:
    def test_counts_match_the_query_stats(self, flor_config, recorded):
        report = explain(values=["loss", "norm"], runs=recorded.run_id,
                         source=PROBE, config=flor_config)
        result = repro.query(values=["loss", "norm"],
                             runs=recorded.run_id, source=PROBE,
                             config=flor_config)
        assert report.count("logged") == result.stats.resolved_logged
        assert report.count("memo") == result.stats.resolved_memo
        assert report.count("analysis") == result.stats.analysis_resolved
        assert report.count("replay") == result.stats.resolved_replay
        assert report.count("missing") == result.stats.missing_cells
        assert report.requested_cells == result.stats.requested_cells

    def test_explain_after_memoization_predicts_memo_reads(
            self, flor_config, recorded):
        repro.query(values="norm", runs=recorded.run_id, source=PROBE,
                    config=flor_config)
        report = explain(values="norm", runs=recorded.run_id,
                         source=PROBE, config=flor_config)
        assert report.count("memo") == EPOCHS
        assert report.count("replay") == 0
        assert report.replay_span_count == 0

    def test_explain_does_not_execute_or_memoize(self, flor_config,
                                                 recorded):
        report = explain(values="norm", runs=recorded.run_id,
                         source=PROBE, config=flor_config)
        assert report.count("replay") == EPOCHS
        store = CheckpointStore.for_config(
            flor_config.run_dir(recorded.run_id), flor_config)
        try:
            assert MemoCache.keys(store) == []
        finally:
            store.close()

    def test_missing_without_probe_source(self, flor_config, recorded):
        report = explain(values="norm", runs=recorded.run_id,
                         config=flor_config)
        assert report.count("missing") == EPOCHS
        assert report.count("replay") == 0

    def test_spans_are_priced(self, flor_config, recorded):
        report = explain(values="norm", runs=recorded.run_id,
                         source=PROBE, config=flor_config)
        run = report.run(recorded.run_id)
        assert run.spans, "replay plan should need spans"
        covered = set()
        for span in run.spans:
            assert span.estimated_seconds >= 0.0
            covered.update(range(span.start, span.stop))
        assert covered == set(range(EPOCHS))
        assert report.estimated_replay_seconds == pytest.approx(
            sum(span.estimated_seconds for span in run.spans))

    def test_probe_safety_gate_still_applies(self, flor_config, recorded):
        mutating = SCRIPT.replace(
            'flor.log("loss", float(state.sum()))',
            'state = state * 0.0\n'
            '    flor.log("loss", float(state.sum()))')
        with pytest.raises(ReplaySafetyError):
            explain(values="loss", runs=recorded.run_id, source=mutating,
                    config=flor_config)


class TestRenderers:
    def test_render_text(self, flor_config, recorded):
        report = explain(values=["loss", "norm"], runs=recorded.run_id,
                         source=PROBE, config=flor_config)
        text = report.render_text()
        assert f"run {recorded.run_id}" in text
        assert "logged" in text and "replay" in text
        assert "span [" in text

    def test_json_document(self, flor_config, recorded):
        report = explain(values="loss", runs=recorded.run_id,
                         config=flor_config)
        document = json.loads(report.to_json())
        assert document["schema"] == 1
        assert document["summary"]["logged"] == EPOCHS
        assert document["runs"][0]["run_id"] == recorded.run_id

    def test_payload_round_trip(self, flor_config, recorded):
        report = explain(values=["loss", "norm"], runs=recorded.run_id,
                         source=PROBE, config=flor_config)
        back = ExplainReport.from_payload(report.to_payload())
        assert back.to_payload() == report.to_payload()
        assert back.sources() == report.sources()

    def test_span_choice_round_trip(self):
        span = SpanChoice(start=3, stop=9, restore_index=2,
                          estimated_seconds=0.5)
        assert SpanChoice.from_dict(span.to_dict()) == span
        assert span.iterations == 6
        scratch = SpanChoice(start=0, stop=4, restore_index=None,
                             estimated_seconds=0.1)
        assert "from-scratch" in scratch.render()
