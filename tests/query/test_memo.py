"""Unit tests for the cross-query replay memoization cache."""

from __future__ import annotations

import threading

from repro.query.memo import MEMO_KEY_PREFIX, MemoCache, source_digest
from repro.record.logger import LogRecord
from repro.storage.checkpoint_store import CheckpointStore


def records(name: str = "grad", values: dict | None = None):
    return [LogRecord(name=name, value=value, iteration=iteration)
            for iteration, value in (values or {1: 0.5, 2: 0.25}).items()]


class TestSourceDigest:
    def test_stable_across_line_endings_and_trailing_space(self):
        assert source_digest("a = 1\nb = 2\n") == \
            source_digest("a = 1  \r\nb = 2\r\n")

    def test_stable_across_blank_line_only_edits(self):
        # Blank lines change nothing a replay computes; equal digests keep
        # the planner from scheduling replay jobs for a blank-line edit.
        assert source_digest("a = 1\nb = 2\n") == \
            source_digest("a = 1\n\n\nb = 2\n\n")

    def test_differs_for_different_code(self):
        assert source_digest("a = 1\n") != source_digest("a = 2\n")


class TestMemoCache:
    def test_write_back_then_reload(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        digest = source_digest("probe-source")
        assert MemoCache(store, digest).write_back(records()) == 2
        fresh = MemoCache(store, digest)
        assert fresh.load() == {"grad": {1: 0.5, 2: 0.25}}
        assert fresh.cell_count() == 2
        assert fresh.names() == ["grad"]

    def test_rewrite_of_same_cells_adds_nothing(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        memo = MemoCache(store, source_digest("s"))
        assert memo.write_back(records()) == 2
        assert MemoCache(store, memo.digest).write_back(records()) == 0

    def test_overlapping_write_back_adds_only_new_cells(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        digest = source_digest("s")
        MemoCache(store, digest).write_back(records(values={1: 0.5}))
        added = MemoCache(store, digest).write_back(
            records(values={1: 0.5, 3: 0.1}))
        assert added == 1
        assert MemoCache(store, digest).load()["grad"] == {1: 0.5, 3: 0.1}

    def test_outside_loop_records_are_not_memoized(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        memo = MemoCache(store, source_digest("s"))
        assert memo.write_back([LogRecord("setup", 1, iteration=None)]) == 0
        assert memo.load() == {}

    def test_entries_are_isolated_per_probe_source(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        MemoCache(store, source_digest("probe-A")).write_back(records())
        other = MemoCache(store, source_digest("probe-B"))
        assert other.load() == {}

    def test_short_key_collision_verified_by_full_digest(self, tmp_path):
        # A different probe source that (hypothetically) shares the first
        # 16 digest characters must not serve the stale entry: the full
        # digest stored inside the payload is verified on load.
        store = CheckpointStore(tmp_path / "run")
        victim = MemoCache(store, "a" * 64)
        victim.write_back(records())
        imposter = MemoCache(store, "a" * 16 + "b" * 48)
        assert imposter.key == victim.key
        assert imposter.load() == {}

    def test_stale_reader_does_not_clobber_interleaved_writer(self, tmp_path):
        """Write-back merges into the *stored* entry, not a stale snapshot.

        Regression: writer A loads the (empty) entry, writer B lands its
        cells, then A writes back.  A read-modify-write built on A's stale
        snapshot would erase B's cells; the transactional merge must keep
        both.
        """
        digest = source_digest("s")
        writer_a = MemoCache(CheckpointStore(tmp_path / "run"), digest)
        writer_b = MemoCache(CheckpointStore(tmp_path / "run"), digest)
        writer_a.load()  # A's snapshot predates B's write
        assert writer_b.write_back(records(values={10: 1.0})) == 1
        assert writer_a.write_back(records(values={20: 2.0})) == 1
        stored = MemoCache(CheckpointStore(tmp_path / "run"), digest).load()
        assert stored["grad"] == {10: 1.0, 20: 2.0}
        # A's own read cache was refreshed from the settled transaction.
        assert writer_a.load()["grad"] == {10: 1.0, 20: 2.0}

    def test_concurrent_writers_lose_no_cells(self, tmp_path):
        """Two-writer hammer: every thread's cells survive the race.

        Each writer holds its own store (own sqlite connection) and writes
        disjoint iterations through the shared manifest; without the
        single-transaction merge, last-writer-wins clobbering drops cells
        nondeterministically.
        """
        digest = source_digest("s")
        errors: list[BaseException] = []

        def write(offset: int):
            try:
                memo = MemoCache(CheckpointStore(tmp_path / "run"), digest)
                for index in range(10):
                    memo.write_back(records(
                        values={offset + index: float(offset + index)}))
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=write, args=(offset,))
                   for offset in (0, 100, 200, 300)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        stored = MemoCache(CheckpointStore(tmp_path / "run"), digest).load()
        expected = {offset + index
                    for offset in (0, 100, 200, 300)
                    for index in range(10)}
        assert set(stored["grad"]) == expected

    def test_keys_enumerates_memo_entries_only(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.set_metadata("run_id", "r")
        MemoCache(store, source_digest("A")).write_back(records())
        MemoCache(store, source_digest("B")).write_back(records())
        keys = MemoCache.keys(store)
        assert len(keys) == 2
        assert all(key.startswith(MEMO_KEY_PREFIX) for key in keys)
