"""Cross-run drift diff: correctness and the O(log n) replay-job budget.

Three layers, cheapest first:

* pure-function properties of the bisection core against a stub prober —
  hypothesis drives hundreds of planted divergences through
  ``_bisect_drift`` with zero recording;
* recorded toy runs (a tiny numpy trajectory, dense checkpoints) where a
  perturbation is planted via ``script_globals`` — same source text, same
  loop blocks — so every resolution tier is exercised end to end:
  logged-scan (free), digest pre-narrowing (free), and probe bisection
  whose replay jobs are counted through the QueryStats ledger;
* the acceptance benchmark: a 512-iteration pair with one planted
  divergence must resolve within 12 replay jobs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.exceptions import QueryError
from repro.query.diff import DiffStats, _bisect_drift, _values_equal
from repro.record.recorder import record_source

TOY_TEMPLATE = '''\
import numpy as np
from repro import api as flor

PERTURB_AT = globals().get("PERTURB_AT", -1)
state = np.zeros(8)

def _advance(value, step):
    value = value + 0.25
    if step == PERTURB_AT:
        value = value + 0.5
    return value

for step in range({n}):
    for _ in range(1):
        state = _advance(state, step)
    flor.log("signal", float(state.sum()))
'''


def toy_script(n: int) -> str:
    return TOY_TEMPLATE.format(n=n)


def probe_script(n: int) -> str:
    """The toy script plus a probe-only value (never logged at record)."""
    return toy_script(n).replace(
        'flor.log("signal", float(state.sum()))',
        'flor.log("signal", float(state.sum()))\n'
        '    flor.log("probe_norm", float(np.linalg.norm(state)))')


@pytest.fixture()
def dense_config(sequential_config):
    """Dense checkpoints: every iteration aligned, every digest comparable."""
    return sequential_config.with_overrides(adaptive_checkpointing=False)


def record_pair(config, n: int, perturb_at: int | None):
    """Record a baseline run and a (possibly perturbed) twin; same source."""
    baseline = record_source(toy_script(n), name="toy-a", config=config)
    twin_globals = ({"PERTURB_AT": perturb_at}
                    if perturb_at is not None else None)
    twin = record_source(toy_script(n), name="toy-b", config=config,
                         script_globals=twin_globals)
    return baseline.run_id, twin.run_id


# --------------------------------------------------------------------------- #
# Bisection core: hypothesis over planted persistent drifts (no recording)
# --------------------------------------------------------------------------- #
class StubProber:
    """In-memory stand-in for _ValueProber: two value trajectories."""

    def __init__(self, values_a, values_b):
        self.values_a = values_a
        self.values_b = values_b
        self.probes = 0
        self._seen: set[int] = set()

    def at(self, iteration: int):
        if iteration not in self._seen:
            self._seen.add(iteration)
            self.probes += 1
        return (self.values_a[iteration], self.values_b[iteration])


@given(n=st.integers(min_value=1, max_value=700),
       data=st.data())
@settings(max_examples=200, deadline=None)
def test_bisection_finds_planted_divergence_within_log_budget(n, data):
    k = data.draw(st.integers(min_value=0, max_value=n - 1), label="k")
    values_a = [0.0] * n
    values_b = [0.0] * k + [1.0] * (n - k)
    prober = StubProber(values_a, values_b)
    stats = DiffStats()
    drift = _bisect_drift("v", list(range(n)), prober, 0.0, stats)
    assert drift.status == "diverged"
    assert drift.first_divergence == k
    assert drift.last_equal == (k - 1 if k > 0 else None)
    assert drift.value_b == 1.0
    # Endpoint confirmation + bisection + baseline: ceil(log2 n) + 3.
    assert prober.probes <= math.ceil(math.log2(n)) + 3 if n > 1 \
        else prober.probes <= 2


@given(n=st.integers(min_value=1, max_value=300))
@settings(max_examples=50, deadline=None)
def test_bisection_equal_trajectories_cost_one_probe(n):
    prober = StubProber([0.5] * n, [0.5] * n)
    drift = _bisect_drift("v", list(range(n)), prober, 0.0, DiffStats())
    assert drift.status == "equal"
    assert drift.last_equal == n - 1
    assert prober.probes == 1  # the endpoint check alone settles it


@given(n=st.integers(min_value=2, max_value=300),
       data=st.data())
@settings(max_examples=100, deadline=None)
def test_digest_bracket_collapses_search_to_constant_probes(n, data):
    """When the state divergence coincides with the value divergence (the
    planted-drift shape), the digest bracket makes the search O(1)."""
    k = data.draw(st.integers(min_value=1, max_value=n - 1), label="k")
    values_a = [0.0] * n
    values_b = [0.0] * k + [1.0] * (n - k)
    prober = StubProber(values_a, values_b)
    stats = DiffStats(last_state_match=k - 1, state_divergence=k)
    drift = _bisect_drift("v", list(range(n)), prober, 0.0, stats)
    assert drift.status == "diverged"
    assert drift.first_divergence == k
    assert drift.method == "digest+bisect"
    assert prober.probes <= 3


def test_unresolved_when_probe_cannot_answer():
    prober = StubProber([None] * 8, [1.0] * 8)
    drift = _bisect_drift("v", list(range(8)), prober, 0.0, DiffStats())
    assert drift.status == "unresolved"


def test_values_equal_semantics():
    assert _values_equal(1.0, 1.0 + 1e-9, 1e-6)
    assert not _values_equal(1.0, 1.1, 1e-6)
    assert _values_equal(float("nan"), float("nan"), 0.0)
    assert not _values_equal(float("nan"), 1.0, 0.0)
    # Bools are excluded from the tolerance path: True vs False is a
    # divergence no matter how loose the tolerance.
    assert not _values_equal(True, False, 10.0)
    assert _values_equal("same", "same", 0.0)


# --------------------------------------------------------------------------- #
# End to end on recorded runs
# --------------------------------------------------------------------------- #
class TestLoggedScan:
    def test_logged_value_diffs_for_free(self, dense_config):
        run_a, run_b = record_pair(dense_config, n=24, perturb_at=9)
        report = repro.diff(run_a, run_b, "signal", config=dense_config)
        drift = report.drift("signal")
        assert drift.status == "diverged"
        assert drift.first_divergence == 9
        assert drift.last_equal == 8
        assert drift.method == "logged-scan"
        assert report.stats.replay_job_count == 0
        assert report.diverged

    def test_identical_runs_are_equal(self, dense_config):
        run_a, run_b = record_pair(dense_config, n=12, perturb_at=None)
        report = repro.diff(run_a, run_b, "signal", config=dense_config)
        drift = report.drift("signal")
        assert drift.status == "equal"
        assert drift.last_equal == 11
        assert not report.diverged

    def test_tolerance_absorbs_planted_drift(self, dense_config):
        run_a, run_b = record_pair(dense_config, n=12, perturb_at=5)
        # The perturbation shifts the 8-element sum by 8 * 0.5 = 4.0.
        report = repro.diff(run_a, run_b, "signal", tolerance=5.0,
                            config=dense_config)
        assert report.drift("signal").status == "equal"

    def test_columnar_report_shape(self, dense_config):
        run_a, run_b = record_pair(dense_config, n=8, perturb_at=3)
        report = repro.diff(run_a, run_b, "signal", config=dense_config)
        records = report.to_records()
        assert [r["name"] for r in records] == ["signal"]
        assert set(records[0]) == set(report.COLUMNS)
        columns = report.to_columns()
        assert columns["first_divergence"] == [3]
        assert report.first_divergence("signal") == 3


class TestDiffErrors:
    def test_same_run_twice_rejected(self, dense_config):
        run_a, _ = record_pair(dense_config, n=4, perturb_at=None)
        with pytest.raises(QueryError):
            repro.diff(run_a, run_a, "signal", config=dense_config)

    def test_unknown_run_rejected(self, dense_config):
        run_a, _ = record_pair(dense_config, n=4, perturb_at=None)
        with pytest.raises(QueryError):
            repro.diff(run_a, "no-such-run", "signal", config=dense_config)

    def test_empty_values_rejected(self, dense_config):
        run_a, run_b = record_pair(dense_config, n=4, perturb_at=None)
        with pytest.raises(QueryError):
            repro.diff(run_a, run_b, [], config=dense_config)

    def test_unlogged_value_needs_probe_source(self, dense_config):
        run_a, run_b = record_pair(dense_config, n=4, perturb_at=None)
        with pytest.raises(QueryError, match="probe script"):
            repro.diff(run_a, run_b, "probe_norm", config=dense_config)


class TestProbedBisection:
    @pytest.mark.parametrize("seed", [11, 29])
    def test_seeded_random_plant_found_within_log_budget(self, dense_config,
                                                         seed):
        """Pure bisection (digests off, memo off): the planted iteration is
        found exactly, within ceil(log2 n) + 3 probes and two replay jobs
        per probe, counted through the QueryStats ledger."""
        import random
        n = 48
        k = random.Random(seed).randrange(n)
        run_a, run_b = record_pair(dense_config, n=n, perturb_at=k)
        report = repro.diff(run_a, run_b, "probe_norm",
                            source=probe_script(n),
                            use_checkpoint_digests=False,
                            memoize=False, config=dense_config)
        drift = report.drift("probe_norm")
        assert drift.status == "diverged"
        assert drift.first_divergence == k
        assert drift.method == "bisect"
        budget = math.ceil(math.log2(n)) + 3
        assert report.stats.probe_queries <= budget
        assert report.stats.replay_job_count <= 2 * budget
        assert len(report.stats.replay_jobs) == \
            report.stats.replay_job_count

    def test_digest_narrowing_collapses_probe_count(self, dense_config):
        run_a, run_b = record_pair(dense_config, n=64, perturb_at=41)
        report = repro.diff(run_a, run_b, "probe_norm",
                            source=probe_script(64),
                            memoize=False, config=dense_config)
        drift = report.drift("probe_norm")
        assert drift.status == "diverged"
        assert drift.first_divergence == 41
        assert drift.method == "digest+bisect"
        assert report.stats.state_divergence == 41
        assert report.stats.last_state_match == 40
        # Digest narrowing is free replay-wise and collapses the search.
        assert report.stats.probe_queries <= 3
        assert report.stats.replay_job_count <= 6

    def test_memoized_rediff_issues_fewer_jobs(self, dense_config):
        run_a, run_b = record_pair(dense_config, n=32, perturb_at=17)
        first = repro.diff(run_a, run_b, "probe_norm",
                           source=probe_script(32), config=dense_config)
        second = repro.diff(run_a, run_b, "probe_norm",
                            source=probe_script(32), config=dense_config)
        assert first.drift("probe_norm").first_divergence == 17
        assert second.drift("probe_norm").first_divergence == 17
        assert second.stats.replay_job_count < \
            max(1, first.stats.replay_job_count)


class TestAcceptance512:
    def test_one_planted_divergence_resolves_within_twelve_jobs(
            self, dense_config):
        """The PR's acceptance bar: 512-iteration pair, one planted
        divergence, resolved with at most 12 replay jobs."""
        n, k = 512, 137
        run_a, run_b = record_pair(dense_config, n=n, perturb_at=k)
        report = repro.diff(run_a, run_b, "probe_norm",
                            source=probe_script(n),
                            memoize=False, config=dense_config)
        drift = report.drift("probe_norm")
        assert drift.status == "diverged"
        assert drift.first_divergence == k
        assert drift.method == "digest+bisect"
        assert report.stats.common_iterations == n
        assert report.stats.replay_job_count <= 12, \
            report.stats.summary()
