"""Unit tests for cost-based query planning (spans, splitting, resolution)."""

from __future__ import annotations

from repro.query.catalog import RunEntry
from repro.query.planner import (balance_spans, plan_run, plan_spans,
                                 split_span)
from repro.replay.scheduler import IterationCosts


def costs_of(mean: float = 1.0, restore: float = 0.1,
             per: dict | None = None) -> IterationCosts:
    return IterationCosts(per_iteration=per or {}, mean_compute_seconds=mean,
                          restore_seconds=restore)


def entry_of(total: int = 10, aligned: tuple = (0, 3, 6),
             logged: tuple = ("loss",)) -> RunEntry:
    return RunEntry(run_id="r1", run_dir="/nowhere", workload="w",
                    storage_backend="local", started_at=0.0, wall_seconds=1.0,
                    main_loop_total=total, loop_blocks=("skipblock_0",),
                    checkpoint_count=len(aligned),
                    aligned_iterations=tuple(aligned), logged_values=logged,
                    execution_index_scheme=2, source_digest="abc")


class TestPlanSpans:
    def test_empty_wanted_produces_no_spans(self):
        assert plan_spans([], [0, 3], costs_of()) == []

    def test_dense_range_from_zero_is_one_unrestored_span(self):
        spans = plan_spans(range(6), [0, 1, 2, 3, 4, 5], costs_of())
        assert len(spans) == 1
        assert (spans[0].start, spans[0].stop) == (0, 6)
        assert spans[0].restore_index is None

    def test_span_starts_after_nearest_aligned_checkpoint(self):
        spans = plan_spans([4, 5], [0, 3], costs_of())
        assert len(spans) == 1
        assert (spans[0].start, spans[0].stop) == (4, 6)
        assert spans[0].restore_index == 3

    def test_checkpoint_gap_is_recomputed_not_skipped(self):
        # Wanted 5 with checkpoints at 0 and 3: the span must recompute 4
        # from checkpoint 3, never restore stale state into iteration 5.
        spans = plan_spans([5], [0, 3], costs_of())
        assert (spans[0].start, spans[0].stop) == (4, 6)
        assert spans[0].restore_index == 3

    def test_cheap_restores_split_sparse_groups(self):
        spans = plan_spans([2, 9], [1, 8], costs_of(mean=1.0, restore=0.1))
        assert [(s.start, s.stop, s.restore_index) for s in spans] == [
            (2, 3, 1), (9, 10, 8)]

    def test_expensive_gap_bridges_instead_of_restoring_backward(self):
        # Only checkpoint 1 exists: starting the second group fresh would
        # recompute 2..9 from checkpoint 1 anyway (plus a restore), so the
        # planner bridges the first span forward.
        spans = plan_spans([2, 9], [1], costs_of(mean=1.0, restore=0.1))
        assert [(s.start, s.stop, s.restore_index) for s in spans] == [
            (2, 10, 1)]

    def test_no_checkpoints_recomputes_whole_prefix(self):
        spans = plan_spans([3, 4], [], costs_of())
        assert [(s.start, s.stop, s.restore_index) for s in spans] == [
            (0, 5, None)]

    def test_spans_never_overlap(self):
        spans = plan_spans([1, 4, 7, 9], [0, 2, 5, 8],
                           costs_of(mean=1.0, restore=0.2))
        bounds = [(s.start, s.stop) for s in spans]
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert start >= stop

    def test_estimated_seconds_price_restore_and_compute(self):
        spans = plan_spans([4, 5], [0, 3], costs_of(mean=2.0, restore=0.5))
        assert spans[0].estimated_seconds == 0.5 + 2 * 2.0


class TestSplitSpan:
    def test_unsplittable_without_interior_checkpoint(self):
        [span] = plan_spans([1, 2], [0], costs_of())
        assert split_span(span, [0], costs_of()) == [span]

    def test_split_cuts_only_at_aligned_starts(self):
        [span] = plan_spans(range(12), list(range(12)), costs_of())
        pieces = split_span(span, [3, 7], costs_of(), parts=2)
        assert len(pieces) == 2
        assert pieces[0].start == 0
        assert pieces[1].start in (4, 8)  # aligned + 1
        assert pieces[1].restore_index == pieces[1].start - 1
        assert pieces[0].stop == pieces[1].start
        assert pieces[-1].stop == 12

    def test_split_preserves_coverage(self):
        [span] = plan_spans(range(20), list(range(20)), costs_of())
        pieces = split_span(span, [4, 9, 14], costs_of(), parts=4)
        covered = sorted(index for piece in pieces
                         for index in piece.iterations())
        assert covered == list(range(20))


class TestBalanceSpans:
    def test_splits_heaviest_span_to_reach_target(self):
        costs = costs_of()
        aligned = list(range(12))
        [big] = plan_spans(range(12), aligned, costs)
        [small] = plan_spans([14], aligned + [13], costs)
        jobs = balance_spans([("a", big), ("b", small)],
                             {"a": aligned, "b": aligned + [13]},
                             {"a": costs, "b": costs}, target_jobs=3)
        assert len(jobs) == 3
        assert sum(1 for run_id, _ in jobs if run_id == "a") == 2

    def test_stops_when_nothing_splittable(self):
        costs = costs_of()
        [span] = plan_spans([1, 2], [0], costs)
        jobs = balance_spans([("a", span)], {"a": [0]}, {"a": costs},
                             target_jobs=4)
        assert len(jobs) == 1


class TestPlanRun:
    def test_resolution_prefers_logged_then_memo_then_replay(self):
        entry = entry_of()
        record_index = {("loss", 1): 0.9, ("loss", 2): 0.8, ("loss", 3): 0.7}
        memo_index = {"grad": {2: 5.0}}
        plan = plan_run(entry, ("loss", "grad"), (1, 2, 3),
                        record_index=record_index, memo_index=memo_index,
                        costs=costs_of(), replay_possible=True)
        assert plan.count("logged") == 3
        assert plan.count("memo") == 1
        assert plan.unresolved_cells == [("grad", 1), ("grad", 3)]
        assert plan.replay_iterations == (1, 3)
        # Bridging 2 is cheaper than a second restore hop back to 0.
        assert [(s.start, s.stop) for s in plan.spans] == [(1, 4)]

    def test_no_probe_source_means_no_jobs_for_unresolved(self):
        plan = plan_run(entry_of(), ("grad",), (1, 2),
                        record_index={}, memo_index={}, costs=costs_of(),
                        replay_possible=False)
        assert plan.spans == []
        assert plan.unresolved_cells == [("grad", 1), ("grad", 2)]

    def test_fully_resolved_run_schedules_no_spans(self):
        plan = plan_run(entry_of(), ("loss",), (1,),
                        record_index={("loss", 1): 0.5}, memo_index={},
                        costs=costs_of(), replay_possible=True)
        assert plan.spans == []
        assert plan.count("logged") == 1

    def test_replay_all_mode_replays_whole_recorded_range(self):
        entry = entry_of(total=10)
        plan = plan_run(entry, ("grad",), (4,), record_index={},
                        memo_index={}, costs=costs_of(),
                        replay_possible=True, mode="replay_all")
        assert [(s.start, s.stop) for s in plan.spans] == [(0, 10)]
        assert plan.replay_iterations == tuple(range(10))
