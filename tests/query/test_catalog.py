"""Tests for the multi-run catalog (indexing, persistence, selection)."""

from __future__ import annotations

import textwrap

import pytest

from repro.exceptions import QueryError
from repro.query.catalog import (CATALOG_METADATA_KEY, RunCatalog, RunEntry,
                                 looks_like_run_dir)
from repro.record.recorder import record_source
from repro.storage.checkpoint_store import CheckpointStore

EPOCHS = 4

SCRIPT = textwrap.dedent(f"""
    import numpy as np
    from repro import api as flor

    state = np.zeros(8, dtype='float32')
    for epoch in range({EPOCHS}):
        for _step in range(1):
            state = state + 1.0
        flor.log("loss", float(state.sum()))
""")


def record_run(config, name: str):
    return record_source(SCRIPT, name=name, config=config)


class TestCatalogIndexing:
    def test_entries_describe_recorded_runs(self, flor_config):
        recorded = record_run(flor_config, "alpha")
        record_run(flor_config, "beta")
        catalog = RunCatalog.open(flor_config)
        assert len(catalog) == 2
        entry = catalog.get(recorded.run_id)
        assert entry is not None
        assert entry.workload == "alpha"
        assert entry.main_loop_total == EPOCHS
        assert entry.loop_blocks == ("skipblock_0",)
        assert entry.logged_values == ("loss",)
        assert entry.checkpoint_count == recorded.checkpoint_count
        assert set(entry.aligned_iterations) <= set(range(EPOCHS))
        assert 0.0 < entry.checkpoint_density <= 1.0
        assert entry.started_at > 0
        # The catalog digest uses the memo cache's normalization, so the
        # two are directly comparable.
        from repro.query.memo import source_digest
        assert entry.source_digest == source_digest(SCRIPT)

    def test_non_run_directories_are_ignored(self, flor_config, tmp_path):
        record_run(flor_config, "alpha")
        (flor_config.home / "not-a-run").mkdir(parents=True)
        (flor_config.home / "stray.txt").write_text("x", encoding="utf-8")
        assert not looks_like_run_dir(flor_config.home / "not-a-run")
        assert len(RunCatalog.open(flor_config)) == 1

    def test_empty_home_yields_empty_catalog(self, flor_config):
        assert len(RunCatalog.open(flor_config)) == 0


class TestCatalogPersistence:
    def test_entry_is_persisted_into_the_runs_store(self, flor_config):
        recorded = record_run(flor_config, "alpha")
        RunCatalog.open(flor_config)
        store = CheckpointStore(flor_config.run_dir(recorded.run_id))
        persisted = store.get_metadata(CATALOG_METADATA_KEY)
        assert persisted is not None
        assert RunEntry.from_dict(persisted).run_id == recorded.run_id

    def test_fresh_entry_is_served_without_rebuild(self, flor_config):
        recorded = record_run(flor_config, "alpha")
        RunCatalog.open(flor_config)
        # Tamper with a field the rebuild would recompute: if the second
        # open serves the tampered value, it used the persisted entry.
        store = CheckpointStore(flor_config.run_dir(recorded.run_id))
        persisted = store.get_metadata(CATALOG_METADATA_KEY)
        persisted["workload"] = "tampered"
        store.set_metadata(CATALOG_METADATA_KEY, persisted)
        store.close()
        catalog = RunCatalog.open(flor_config)
        assert catalog.get(recorded.run_id).workload == "tampered"

    def test_stale_entry_is_rebuilt(self, flor_config):
        recorded = record_run(flor_config, "alpha")
        RunCatalog.open(flor_config)
        store = CheckpointStore(flor_config.run_dir(recorded.run_id))
        persisted = store.get_metadata(CATALOG_METADATA_KEY)
        persisted["workload"] = "tampered"
        persisted["checkpoint_count"] = persisted["checkpoint_count"] + 99
        store.set_metadata(CATALOG_METADATA_KEY, persisted)
        store.close()
        catalog = RunCatalog.open(flor_config)
        assert catalog.get(recorded.run_id).workload == "alpha"

    def test_old_schema_version_is_rebuilt(self, flor_config):
        recorded = record_run(flor_config, "alpha")
        RunCatalog.open(flor_config)
        store = CheckpointStore(flor_config.run_dir(recorded.run_id))
        persisted = store.get_metadata(CATALOG_METADATA_KEY)
        persisted["schema_version"] = 0
        persisted["workload"] = "tampered"
        store.set_metadata(CATALOG_METADATA_KEY, persisted)
        store.close()
        assert RunCatalog.open(flor_config).get(
            recorded.run_id).workload == "alpha"


class TestCatalogSelection:
    def test_select_by_id_list_prefix_and_workload(self, flor_config):
        first = record_run(flor_config, "alpha")
        second = record_run(flor_config, "beta")
        catalog = RunCatalog.open(flor_config)
        assert [e.run_id for e in catalog.select([second.run_id])] == \
            [second.run_id]
        assert [e.run_id for e in catalog.select("alpha")] == [first.run_id]
        assert [e.run_id for e in catalog.select(workload="beta")] == \
            [second.run_id]
        assert len(catalog.select()) == 2

    def test_select_orders_by_recording_time(self, flor_config):
        ids = [record_run(flor_config, f"run{k}").run_id for k in range(3)]
        catalog = RunCatalog.open(flor_config)
        assert [entry.run_id for entry in catalog.select()] == ids
        assert [entry.run_id for entry in catalog.latest(2)] == ids[-2:]

    def test_select_values_filter_keeps_answerable_runs(self, flor_config):
        record_run(flor_config, "alpha")
        catalog = RunCatalog.open(flor_config)
        assert len(catalog.select(values=["loss"])) == 1
        assert catalog.select(values=["loss", "never_logged"]) == []

    def test_unknown_run_id_raises(self, flor_config):
        record_run(flor_config, "alpha")
        catalog = RunCatalog.open(flor_config)
        with pytest.raises(QueryError, match="not in catalog"):
            catalog.select(["missing-run"])


class TestJobGrouping:
    """The merged job view: worker runs grouped back into logical jobs."""

    def record_worker_run(self, config, job_id: str, rank: int):
        from repro.utils.naming import worker_run_id
        return record_source(SCRIPT, name="toy", config=config,
                             run_id=worker_run_id(job_id, rank))

    def test_worker_identity_derived_from_run_id(self, flor_config):
        self.record_worker_run(flor_config, "jobA", 1)
        entry = RunCatalog.open(flor_config).get("jobA@1")
        assert entry.job_id == "jobA"
        assert entry.worker_rank == 1

    def test_plain_run_is_its_own_singleton_job(self, flor_config):
        recorded = record_run(flor_config, "solo")
        entry = RunCatalog.open(flor_config).get(recorded.run_id)
        assert entry.job_id == recorded.run_id
        assert entry.worker_rank is None
        group = RunCatalog.open(flor_config).job(recorded.run_id)
        assert group.run_ids == (recorded.run_id,)
        assert group.world_size == 1 and group.complete

    def test_jobs_groups_workers_in_rank_order(self, flor_config):
        for rank in (2, 0, 1):
            self.record_worker_run(flor_config, "jobA", rank)
        record_run(flor_config, "solo")
        catalog = RunCatalog.open(flor_config)
        groups = {group.job_id: group for group in catalog.jobs()}
        assert set(groups) == {"jobA"} | {
            entry.job_id for entry in catalog.select()
            if entry.worker_rank is None}
        job = groups["jobA"]
        assert job.ranks == (0, 1, 2)
        assert job.run_ids == ("jobA@0", "jobA@1", "jobA@2")
        assert len(job) == 3

    def test_job_lookup_by_unique_prefix(self, flor_config):
        self.record_worker_run(flor_config, "jobAlpha", 0)
        self.record_worker_run(flor_config, "jobBeta", 0)
        catalog = RunCatalog.open(flor_config)
        assert catalog.job("jobA").job_id == "jobAlpha"
        with pytest.raises(QueryError, match="ambiguous"):
            catalog.job("job")
        with pytest.raises(QueryError, match="not in catalog"):
            catalog.job("nothing")
