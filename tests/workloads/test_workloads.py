"""Tests for the workload catalogue, synthetic data, models and training."""

from __future__ import annotations

import numpy as np
import pytest

from repro import torchlike as tl
from repro.exceptions import WorkloadError
from repro.workloads import (WORKLOADS, build_model_for, build_training_script,
                             dataset_for, get_workload, make_training_setup,
                             run_vanilla_training, synthetic_data,
                             workload_names)
from repro.workloads.models import (MiniJasper, MiniResNet, MiniRNNTranslator,
                                    MiniRoBERTaClassifier, MiniSqueezeNet)


class TestRegistry:
    def test_eight_workloads_in_table3_order(self):
        assert workload_names() == ["RTE", "CoLA", "Cifr", "RsNt", "Wiki",
                                    "Jasp", "ImgN", "RnnT"]

    def test_lookup_is_case_insensitive(self):
        assert get_workload("rte").name == "RTE"
        assert get_workload("RSNT").model == "ResNet-152"

    def test_unknown_workload_raises(self):
        with pytest.raises(WorkloadError):
            get_workload("BERT")

    def test_table3_epoch_counts(self):
        epochs = {name: spec.epochs for name, spec in WORKLOADS.items()}
        assert epochs == {"RTE": 200, "CoLA": 80, "Cifr": 200, "RsNt": 200,
                          "Wiki": 12, "Jasp": 4, "ImgN": 8, "RnnT": 8}

    def test_fine_tune_flags(self):
        assert get_workload("RTE").is_fine_tune
        assert get_workload("CoLA").is_fine_tune
        assert not get_workload("Cifr").is_fine_tune

    def test_derived_quantities(self):
        spec = get_workload("RsNt")
        assert spec.vanilla_seconds == pytest.approx(spec.vanilla_hours * 3600)
        assert spec.epoch_seconds == pytest.approx(spec.vanilla_seconds / 200)
        assert spec.checkpoint_nbytes_per_epoch == pytest.approx(
            spec.checkpoint_nbytes / 200)

    def test_fine_tune_workloads_have_poor_materialize_compute_ratio(self):
        """The structural property adaptive checkpointing reacts to: the
        fine-tuning workloads write far more checkpoint bytes per second of
        epoch compute than the training workloads."""
        def ratio(name):
            spec = get_workload(name)
            return spec.checkpoint_nbytes_per_epoch / spec.epoch_seconds

        worst_fine_tune = min(ratio("RTE"), ratio("CoLA"))
        best_training = max(ratio(name) for name in ("Cifr", "Wiki", "Jasp",
                                                     "ImgN"))
        assert worst_fine_tune > best_training


class TestSyntheticData:
    def test_image_dataset_shapes_and_determinism(self):
        ds = synthetic_data.synthetic_image_classification(num_samples=20, seed=3)
        image, label = ds[0]
        assert image.shape == (3, 16, 16)
        assert 0 <= label < 4
        again = synthetic_data.synthetic_image_classification(num_samples=20, seed=3)
        np.testing.assert_allclose(ds[5][0], again[5][0])

    def test_image_dataset_is_learnable_signal(self):
        ds = synthetic_data.synthetic_image_classification(num_samples=40, seed=0)
        images = np.stack([ds[i][0] for i in range(40)])
        labels = np.array([ds[i][1] for i in range(40)])
        # Class-0 images have a bright top-left quadrant on average.
        class0 = images[labels == 0][:, :, :8, :8].mean()
        other = images[labels != 0][:, :, :8, :8].mean()
        assert class0 > other

    def test_text_dataset_keyword_marks_positive_class(self):
        ds = synthetic_data.synthetic_text_classification(num_samples=50, seed=0)
        tokens = np.stack([ds[i][0] for i in range(50)])
        labels = np.array([ds[i][1] for i in range(50)])
        has_keyword = (tokens == 1).any(axis=1)
        np.testing.assert_array_equal(has_keyword, labels == 1)

    def test_language_modeling_targets_are_shifted_inputs(self):
        ds = synthetic_data.synthetic_language_modeling(num_samples=10, seed=0)
        inputs, targets = ds[0]
        assert inputs.shape == targets.shape
        # Targets continue the same arithmetic progression.
        step = (targets[0] - inputs[0]) % 50
        np.testing.assert_array_equal((inputs + step) % 50, targets)

    def test_speech_frames_band_structure(self):
        ds = synthetic_data.synthetic_speech_frames(num_samples=12, seed=0)
        frames, label = ds[0]
        assert frames.shape == (1, 16, 16)

    def test_translation_pairs_reverse_relation(self):
        ds = synthetic_data.synthetic_translation_pairs(num_samples=8, seed=0)
        source, target = ds[0]
        np.testing.assert_array_equal(target, (source[::-1] + 1) % 40)


class TestModels:
    @pytest.mark.parametrize("model_cls,input_shape", [
        (MiniSqueezeNet, (2, 3, 16, 16)),
        (MiniResNet, (2, 3, 16, 16)),
        (MiniJasper, (2, 1, 16, 16)),
    ])
    def test_vision_models_forward_and_backward(self, model_cls, input_shape):
        model = model_cls(num_classes=4, rng=np.random.default_rng(0))
        x = tl.Tensor(np.random.default_rng(1).standard_normal(
            input_shape).astype(np.float32))
        logits = model(x)
        assert logits.shape == (input_shape[0], 4)
        tl.cross_entropy(logits, np.zeros(input_shape[0], dtype=np.int64)).backward()
        assert any(p.grad is not None for p in model.parameters())

    def test_roberta_classifier_forward(self):
        model = MiniRoBERTaClassifier(rng=np.random.default_rng(0))
        tokens = np.random.default_rng(0).integers(0, 50, size=(3, 10))
        logits = model(tokens)
        assert logits.shape == (3, 2)

    def test_frozen_encoder_excludes_parameters_from_training(self):
        model = MiniRoBERTaClassifier(freeze_encoder=True,
                                      rng=np.random.default_rng(0))
        trainable = model.trainable_parameters()
        assert 0 < len(trainable) < len(list(model.parameters()))
        head_params = set(map(id, model.head.parameters()))
        assert head_params <= set(map(id, trainable))

    def test_rnn_translator_output_shape(self):
        model = MiniRNNTranslator(vocab_size=40, d_model=8,
                                  rng=np.random.default_rng(0))
        source = np.random.default_rng(0).integers(2, 40, size=(2, 6))
        logits = model(source)
        assert logits.shape == (2, 6, 40)

    def test_build_model_for_every_workload(self):
        for name in workload_names():
            model = build_model_for(name, rng=np.random.default_rng(0))
            assert model.num_parameters() > 0

    def test_build_model_for_unknown_name(self):
        with pytest.raises(ValueError):
            build_model_for("gpt4")


class TestTraining:
    def test_make_training_setup_uses_adamw_for_fine_tuning(self):
        setup = make_training_setup("RTE")
        assert isinstance(setup.optimizer, tl.AdamW)
        setup = make_training_setup("Cifr")
        assert isinstance(setup.optimizer, tl.SGD)

    def test_dataset_for_every_workload(self):
        for name in workload_names():
            dataset = dataset_for(get_workload(name))
            assert len(dataset) > 0

    @pytest.mark.parametrize("name", ["Cifr", "RTE", "RnnT"])
    def test_vanilla_training_reduces_loss(self, name):
        losses = run_vanilla_training(name, epochs=3)
        assert len(losses) == 3
        assert losses[-1] < losses[0]

    def test_training_script_builds_and_compiles_for_every_workload(self):
        for name in workload_names():
            source = build_training_script(name, epochs=2)
            compile(source, f"<{name}>", "exec")
            assert "for epoch in range(2):" in source
            assert "flor.log" in source

    def test_training_script_is_instrumentable(self):
        from repro.analysis import instrument_source
        result = instrument_source(build_training_script("Cifr", epochs=2))
        assert result.has_main_loop
        assert "skipblock_0" in result.blocks
        assert "optimizer" in result.blocks["skipblock_0"].changeset
