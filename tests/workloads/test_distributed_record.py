"""Distributed record: K workers, one shared home, one logical job.

The top half covers the workload surface (script builder, worker identity,
the merged :class:`JobGroup` catalog view).  The bottom half is the
multi-process concurrency battery the shared-home storage hardening is
proven by: K real recorder processes write into one home — on the local
and sharded backends as genuinely concurrent OS processes, on the
process-local memory backend sequentially — and afterwards the store must
show **no lost manifests** (every worker's rows readable and
digest-verified), **no orphan blobs** (one GC pass leaves exactly the
referenced set) and **exact refcounts** (derived counts match a manifest
recount), including when one worker is SIGKILLed mid-record.
"""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import WorkloadError
from repro.query.catalog import RunCatalog
from repro.storage.checkpoint_store import CheckpointStore
from repro.utils.naming import worker_run_id
from repro.workloads import (build_distributed_training_script, record_worker,
                             run_distributed_record)

from faultutils import (assert_manifest_closed, assert_no_orphans,
                        assert_refcounts_exact, kill_process,
                        start_recorder_process, wait_for_file)


class TestScriptBuilder:
    def test_script_compiles_for_every_rank(self):
        for rank in range(3):
            source = build_distributed_training_script("cifr", rank, 3,
                                                       epochs=2)
            compile(source, "<worker>", "exec")
            assert f"RANK = {rank}" in source
            assert "WORLD_SIZE = 3" in source

    def test_rank_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            build_distributed_training_script("cifr", 3, 3)
        with pytest.raises(WorkloadError):
            build_distributed_training_script("cifr", -1, 2)
        with pytest.raises(WorkloadError):
            build_distributed_training_script("cifr", 0, 0)

    def test_world_size_validated_by_driver(self, sequential_config):
        with pytest.raises(WorkloadError):
            run_distributed_record("cifr", world_size=0,
                                   config=sequential_config)


class TestWorkerIdentity:
    def test_worker_records_under_job_at_rank(self, sequential_config):
        result = record_worker("jobx", 1, 2, epochs=2,
                               config=sequential_config)
        assert result.succeeded
        assert result.run_id == worker_run_id("jobx", 1) == "jobx@1"
        assert result.logged_iterations == 2
        assert result.checkpoint_count > 0

    def test_worker_failure_is_reported_not_raised(self, sequential_config):
        result = record_worker("jobx", 0, 1, workload_name="nope",
                               config=sequential_config)
        assert not result.succeeded
        assert "WorkloadError" in result.error


class TestJobGrouping:
    def test_sequential_job_groups_into_one_logical_job(self,
                                                        sequential_config):
        result = run_distributed_record("cifr", world_size=1, epochs=2,
                                        config=sequential_config)
        assert result.succeeded
        catalog = RunCatalog.open(sequential_config)
        group = catalog.job(result.job_id)
        assert group.run_ids == tuple(result.run_ids)
        assert group.ranks == (0,)
        assert group.complete

    def test_missing_rank_detected(self, sequential_config):
        # Ranks 0, 1 and 3 report in; rank 2's record never started — the
        # merged view must name the hole instead of silently shrinking the
        # job to the survivors.
        for rank in (0, 1, 3):
            assert record_worker("holey", rank, 4, epochs=2,
                                 config=sequential_config).succeeded
        group = RunCatalog.open(sequential_config).job("holey")
        assert group.world_size == 4
        assert group.missing_ranks == (2,)
        assert not group.complete
        assert group.worker(1).run_id == "holey@1"
        assert group.worker(2) is None

    def test_job_level_logged_values_and_checkpoints(self, sequential_config):
        result = run_distributed_record("cifr", world_size=2, epochs=2,
                                        config=sequential_config)
        group = RunCatalog.open(sequential_config).job(result.job_id)
        assert set(group.logged_values) >= {"shard_loss", "shard_examples"}
        assert group.checkpoint_count == sum(
            worker.checkpoint_count for worker in result.workers)
        assert group.workload == "cifr"

    def test_shard_drift_visible_through_diff(self, sequential_config):
        """Two workers of one job trained different shards: the logged-scan
        diff pinpoints the drift at the first shared epoch, free."""
        result = run_distributed_record("cifr", world_size=2, epochs=3,
                                        config=sequential_config)
        assert result.succeeded
        run_a, run_b = result.run_ids
        report = repro.diff(run_a, run_b, ["shard_loss", "shard_examples"],
                            config=sequential_config)
        drift = report.drift("shard_loss")
        assert drift.status == "diverged"
        assert drift.first_divergence == 0
        assert drift.method == "logged-scan"
        assert report.stats.replay_job_count == 0


# --------------------------------------------------------------------------- #
# The multi-process concurrency battery
# --------------------------------------------------------------------------- #
def _open_worker_stores(config, run_ids):
    return [CheckpointStore.for_config(config.run_dir(run_id), config)
            for run_id in run_ids]


def _assert_shared_home_consistent(config, run_ids, expected_iterations=None,
                                   extra_run_ids=()):
    """The battery's three invariants over one shared home.

    ``run_ids`` are the workers that must have *complete* runs;
    ``extra_run_ids`` are partial runs (a killed worker) whose committed
    rows still count toward the home's refcounts.
    """
    stores = _open_worker_stores(config, run_ids)
    extra = _open_worker_stores(config, extra_run_ids)
    try:
        for run_id, store in zip(run_ids, stores):
            rows = assert_manifest_closed(store)
            assert rows > 0, f"worker {run_id} lost its manifest"
            if expected_iterations is not None:
                assert store.checkpoint_count() >= expected_iterations, (
                    f"worker {run_id} lost manifest rows: "
                    f"{store.checkpoint_count()} < {expected_iterations}")
        for store in extra:
            assert_manifest_closed(store)
        assert_no_orphans(config.home)
        assert_refcounts_exact(config.home, stores + extra)
    finally:
        for store in stores + extra:
            store.close()


@pytest.mark.multiproc
@pytest.mark.parametrize("backend", ["local", "sharded"])
def test_concurrent_worker_processes_share_one_home(tmp_path, backend):
    """K=4 real recorder processes, one home: nothing lost, nothing orphaned."""
    config = repro.FlorConfig(home=tmp_path / "home",
                              storage_backend=backend,
                              background_materialization="sequential")
    result = run_distributed_record("cifr", world_size=4, epochs=2,
                                    config=config)
    assert result.succeeded, [w.error for w in result.workers]
    assert len(set(result.run_ids)) == 4
    _assert_shared_home_consistent(config, result.run_ids,
                                   expected_iterations=2)
    group = RunCatalog.open(config).job(result.job_id)
    assert group.complete and group.world_size == 4


def test_memory_backend_records_job_sequentially(tmp_path):
    """The process-local memory backend still produces a consistent job —
    recorded in-process, since its store cannot span real processes."""
    config = repro.FlorConfig(home=tmp_path / "home",
                              storage_backend="memory",
                              background_materialization="sequential")
    result = run_distributed_record("cifr", world_size=3, epochs=2,
                                    config=config)
    assert result.succeeded, [w.error for w in result.workers]
    _assert_shared_home_consistent(config, result.run_ids,
                                   expected_iterations=2)


@pytest.mark.multiproc
@pytest.mark.parametrize("backend", ["local", "sharded"])
def test_worker_killed_mid_record_leaves_home_consistent(tmp_path, backend):
    """SIGKILL one of K=4 workers mid-record: survivors keep their runs,
    the victim's partial manifest stays closed, and one GC sweep restores
    the exact referenced set with exact refcounts."""
    config = repro.FlorConfig(home=tmp_path / "home",
                              storage_backend=backend,
                              background_materialization="sequential")
    job_id, victim_rank = "killjob", 3
    victim = start_recorder_process(job_id, victim_rank, 4, config=config,
                                    epochs=400)
    survivors = [start_recorder_process(job_id, rank, 4, config=config,
                                        epochs=2)
                 for rank in range(3)]

    victim_dir = config.run_dir(worker_run_id(job_id, victim_rank))
    assert wait_for_file(victim_dir / "record.log"), \
        "victim never started recording"
    kill_process(victim)
    for process in survivors:
        process.join(timeout=60)
        assert process.exitcode == 0

    survivor_ids = [worker_run_id(job_id, rank) for rank in range(3)]
    # Survivors must be whole; the victim's partial manifest must still be
    # closed (committed rows readable, digest-verified), the GC sweep in
    # the middle must reclaim only what no manifest — victim's included —
    # references, and refcounts must recount exactly.
    _assert_shared_home_consistent(
        config, survivor_ids, expected_iterations=2,
        extra_run_ids=[worker_run_id(job_id, victim_rank)])
