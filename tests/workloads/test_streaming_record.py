"""Streaming record: unbounded epochs under a load-bearing retention policy.

A continual trainer has no final epoch, so retention prune + GC must run
*while* the recorder is hot — on the async spool's background hook — and
keep the run's checkpoint footprint bounded by policy, not by stream
length.  These tests assert the bound actually binds, that pruning live
under the writer loses nothing it should keep, and that the surviving
window replays correctly.
"""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import WorkloadError
from repro.query.catalog import RunCatalog
from repro.storage.checkpoint_store import CheckpointStore
from repro.storage.lifecycle import RetentionPolicy
from repro.workloads import (DEFAULT_STREAMING_POLICY, build_streaming_script,
                             run_streaming_record)

from faultutils import assert_manifest_closed, assert_no_orphans


class TestScriptBuilder:
    def test_script_compiles(self):
        source = build_streaming_script("cifr", max_iterations=8)
        compile(source, "<stream>", "exec")

    def test_bad_arguments_rejected(self):
        with pytest.raises(WorkloadError):
            build_streaming_script("cifr", max_iterations=0)
        with pytest.raises(WorkloadError):
            build_streaming_script("cifr", micro_batches=0)


class TestRetentionIsLoadBearing:
    def test_surviving_checkpoints_bounded_by_policy(self, flor_config):
        keep = 4
        result = run_streaming_record(
            "cifr", max_iterations=24, config=flor_config,
            policy=RetentionPolicy(keep_last_n=keep))
        assert result.iterations == 24
        # The bound binds: far fewer survivors than iterations, and never
        # more than the policy allows per block (one loop block here).
        assert 0 < result.checkpoint_count <= keep
        assert result.lifecycle_passes >= 1
        assert result.stored_nbytes > 0

    def test_background_passes_overlap_the_recording(self, flor_config):
        """With gc_interval set, lifecycle runs *during* record — more than
        the single close-time pass."""
        result = run_streaming_record("cifr", max_iterations=24,
                                      gc_interval=0.01, config=flor_config)
        assert result.lifecycle_passes > 1

    def test_close_only_pruning_without_interval(self, flor_config):
        result = run_streaming_record("cifr", max_iterations=12,
                                      gc_interval=None, config=flor_config)
        assert result.lifecycle_passes == 1
        assert result.checkpoint_count <= DEFAULT_STREAMING_POLICY.keep_last_n

    def test_pruned_store_is_consistent(self, flor_config):
        result = run_streaming_record("cifr", max_iterations=24,
                                      config=flor_config)
        store = CheckpointStore.for_config(result.run_dir, flor_config)
        try:
            assert_manifest_closed(store)
        finally:
            store.close()
        assert_no_orphans(flor_config.home)

    def test_surviving_window_is_recent_and_replayable(self, flor_config):
        """The survivors are the *newest* checkpoints, and replay answers a
        hindsight probe from them with the recorded state."""
        # Dense checkpointing so "the last N rows" is "the last N stream
        # iterations" — the suffix claim is exact, not a sparse sample.
        config = flor_config.with_overrides(adaptive_checkpointing=False)
        result = run_streaming_record("cifr", max_iterations=24,
                                      config=config)
        entry = RunCatalog.open(config).get(result.run_id)
        assert entry is not None
        aligned = entry.aligned_iterations
        assert aligned, "retention pruned every restorable iteration"
        # keep_last_n keeps a suffix of the stream, not a random sample.
        assert min(aligned) >= 24 - DEFAULT_STREAMING_POLICY.keep_last_n
        assert max(aligned) == 23
        probe_at = max(aligned)

        probe = build_streaming_script("cifr", max_iterations=24).replace(
            'flor.log("stream_loss", loss.item())',
            'flor.log("stream_loss", loss.item())\n'
            '    flor.log("stream_probe", 2.0 * loss.item())')
        answer = repro.query(values="stream_probe", runs=[result.run_id],
                             iterations=probe_at, source=probe,
                             config=flor_config)
        pivot = answer.pivot("stream_probe")
        probed = pivot[result.run_id][probe_at]
        logged = repro.query(values="stream_loss", runs=[result.run_id],
                             iterations=probe_at,
                             config=flor_config).pivot("stream_loss")
        assert probed == pytest.approx(
            2.0 * logged[result.run_id][probe_at])
