"""Tests for deferred correctness checks (record vs replay log comparison)."""

from __future__ import annotations

import pytest

from repro.exceptions import ReplayAnomalyError
from repro.record.logger import LogRecord
from repro.replay.consistency import check_consistency, compare_logs


def records(values, name="loss", start_iteration=0):
    return [LogRecord(name, value, iteration=start_iteration + index,
                      sequence=index)
            for index, value in enumerate(values)]


class TestCompareLogs:
    def test_identical_logs_are_consistent(self):
        record = records([0.5, 0.4, 0.3])
        report = compare_logs(record, records([0.5, 0.4, 0.3]))
        assert report.consistent
        assert report.matched == 3
        assert report.hindsight_records == []

    def test_value_mismatch_detected(self):
        record = records([0.5, 0.4])
        replay = records([0.5, 0.9])
        report = compare_logs(record, replay)
        assert not report.consistent
        assert len(report.mismatches) == 1
        assert "anomalies" in report.summary()

    def test_float_tolerance(self):
        record = records([0.5])
        replay = records([0.5 + 1e-9])
        assert compare_logs(record, replay).consistent

    def test_missing_replay_record_detected(self):
        record = records([0.5, 0.4, 0.3])
        replay = records([0.5, 0.4])
        report = compare_logs(record, replay)
        assert not report.consistent
        assert len(report.missing_from_replay) == 1

    def test_extra_replay_records_are_hindsight_logs(self):
        record = records([0.5, 0.4])
        replay = record + records([1.0, 2.0], name="grad_norm")
        report = compare_logs(record, replay)
        assert report.consistent
        assert len(report.hindsight_records) == 2

    def test_partial_replay_compares_only_covered_iterations(self):
        record = records([0.5, 0.4, 0.3, 0.2])
        replay = records([0.3, 0.2], start_iteration=2)
        report = compare_logs(record, replay, replay_iterations={2, 3})
        assert report.consistent
        assert report.matched == 2

    def test_partial_replay_without_coverage_reports_missing(self):
        record = records([0.5, 0.4, 0.3, 0.2])
        replay = records([0.3, 0.2], start_iteration=2)
        report = compare_logs(record, replay)
        assert len(report.missing_from_replay) == 2

    def test_non_numeric_values_compared_by_equality(self):
        record = [LogRecord("status", "converged", iteration=0, sequence=0)]
        good = [LogRecord("status", "converged", iteration=0, sequence=0)]
        bad = [LogRecord("status", "diverged", iteration=0, sequence=0)]
        assert compare_logs(record, good).consistent
        assert not compare_logs(record, bad).consistent


class TestCheckConsistency:
    def test_warns_by_default_on_anomaly(self):
        record = records([0.5])
        replay = records([0.7])
        with pytest.warns(UserWarning, match="anomalies"):
            report = check_consistency(record, replay)
        assert not report.consistent

    def test_strict_mode_raises(self):
        record = records([0.5])
        replay = records([0.7])
        with pytest.raises(ReplayAnomalyError):
            check_consistency(record, replay, strict=True)

    def test_consistent_logs_do_not_warn(self, recwarn):
        record = records([0.5])
        check_consistency(record, records([0.5]))
        assert len(recwarn) == 0
        summary = compare_logs(record, records([0.5])).summary()
        assert "consistent" in summary
