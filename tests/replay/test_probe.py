"""Tests for probe detection via source diffing."""

from __future__ import annotations

import textwrap

from repro.analysis.instrument import BlockSpec, instrument_source
from repro.replay.probe import detect_probed_blocks, diff_sources

RECORD_SOURCE = textwrap.dedent("""\
    loader = list(range(4))
    net = make_model()
    optimizer = make_optimizer(net)

    for epoch in range(3):
        for batch in loader:
            loss = step(net, optimizer, batch)
        log("loss", loss)
""")


def blocks_for(source: str) -> dict[str, BlockSpec]:
    return instrument_source(source).blocks


class TestDiffSources:
    def test_identical_sources(self):
        diff = diff_sources(RECORD_SOURCE, RECORD_SOURCE)
        assert diff.is_identical

    def test_insertion_recorded_with_position_and_lines(self):
        replay = RECORD_SOURCE.replace(
            '    log("loss", loss)',
            '    log("loss", loss)\n    log("acc", evaluate(net))')
        diff = diff_sources(RECORD_SOURCE, replay)
        assert not diff.is_identical
        assert len(diff.insertions) == 1
        _point, lines = diff.insertions[0]
        assert "acc" in lines[0]

    def test_modified_line_recorded(self):
        replay = RECORD_SOURCE.replace('log("loss", loss)',
                                       'log("training_loss", loss)')
        diff = diff_sources(RECORD_SOURCE, replay)
        assert diff.changed_record_lines
        assert diff.new_replay_lines


class TestDetectProbedBlocks:
    def test_unchanged_source_probes_nothing(self):
        blocks = blocks_for(RECORD_SOURCE)
        assert detect_probed_blocks(RECORD_SOURCE, RECORD_SOURCE, blocks) == set()

    def test_log_added_inside_inner_loop_probes_block(self):
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace(
            "        loss = step(net, optimizer, batch)",
            "        loss = step(net, optimizer, batch)\n"
            "        log(\"grad_norm\", grad_norm(net))")
        assert replay != RECORD_SOURCE
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == {
            "skipblock_0"}

    def test_log_added_after_inner_loop_does_not_probe(self):
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace(
            '    log("loss", loss)',
            '    log("loss", loss)\n    log("weights", norm(net))')
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == set()

    def test_insertion_at_loop_boundary_disambiguated_by_indentation(self):
        """A line added directly after the loop's last statement is inside the
        loop body when it is indented like the body."""
        blocks = blocks_for(RECORD_SOURCE)
        inside = RECORD_SOURCE.replace(
            "        loss = step(net, optimizer, batch)",
            "        loss = step(net, optimizer, batch)\n"
            "        probe(loss)")
        outside = RECORD_SOURCE.replace(
            "        loss = step(net, optimizer, batch)",
            "        loss = step(net, optimizer, batch)\n"
            "    after_loop(net)")
        assert inside != RECORD_SOURCE and outside != RECORD_SOURCE
        assert detect_probed_blocks(RECORD_SOURCE, inside, blocks) == {
            "skipblock_0"}
        assert detect_probed_blocks(RECORD_SOURCE, outside, blocks) == set()

    def test_modified_line_inside_loop_probes_block(self):
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace(
            "loss = step(net, optimizer, batch)",
            "loss = verbose_step(net, optimizer, batch)")
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == {
            "skipblock_0"}

    def test_change_before_main_loop_probes_nothing(self):
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace("net = make_model()",
                                       "net = make_model()\nprint(net)")
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == set()

    def test_explicit_blockspec_ranges(self):
        blocks = {"b": BlockSpec("b", start_line=3, end_line=5,
                                 changeset=(), loop_scoped=())}
        record = "a\nb\nc\nd\ne\nf\n"
        replay = "a\nb\nc\nNEW\nd\ne\nf\n"
        assert detect_probed_blocks(record, replay, blocks) == {"b"}


class TestDiffEdgeCases:
    """Diff corner cases: EOF insertion, CRLF, whitespace-only, multi-insert."""

    # The inner loop's body ends on the last line of the file, so an
    # end-of-file insertion lands exactly on the "last statement of the
    # body vs first statement after the loop" boundary.
    EOF_SOURCE = ("loader = list(range(4))\n"
                  "for epoch in range(3):\n"
                  "    for batch in loader:\n"
                  "        loss = step(batch)\n")

    def test_insertion_at_end_of_file_inside_body_probes(self):
        blocks = blocks_for(self.EOF_SOURCE)
        replay = self.EOF_SOURCE + "        probe(loss)\n"
        assert detect_probed_blocks(self.EOF_SOURCE, replay, blocks) == {
            "skipblock_0"}

    def test_insertion_at_end_of_file_outside_body_does_not_probe(self):
        blocks = blocks_for(self.EOF_SOURCE)
        replay = self.EOF_SOURCE + "after_training()\n"
        assert detect_probed_blocks(self.EOF_SOURCE, replay, blocks) == set()

    def test_crlf_replay_of_lf_record_is_identical(self):
        replay = RECORD_SOURCE.replace("\n", "\r\n")
        assert diff_sources(RECORD_SOURCE, replay).is_identical
        blocks = blocks_for(RECORD_SOURCE)
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == set()

    def test_crlf_does_not_mask_a_real_probe(self):
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace(
            "        loss = step(net, optimizer, batch)",
            "        loss = step(net, optimizer, batch)\n"
            "        probe(loss)").replace("\n", "\r\n")
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == {
            "skipblock_0"}

    def test_trailing_whitespace_only_change_does_not_probe(self):
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace(
            "        loss = step(net, optimizer, batch)",
            "        loss = step(net, optimizer, batch)   ")
        assert diff_sources(RECORD_SOURCE, replay).is_identical
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == set()

    def test_blank_line_insertion_inside_body_does_not_probe(self):
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace(
            "        loss = step(net, optimizer, batch)",
            "        loss = step(net, optimizer, batch)\n")
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == set()

    def test_indentation_change_still_probes(self):
        """Leading whitespace is semantics; only trailing is normalized."""
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace(
            "        loss = step(net, optimizer, batch)",
            "            loss = step(net, optimizer, batch)")
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == {
            "skipblock_0"}

    def test_multi_line_insertion_at_same_record_line(self):
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace(
            "        loss = step(net, optimizer, batch)",
            "        loss = step(net, optimizer, batch)\n"
            "        probe_a(loss)\n"
            "        probe_b(loss)")
        diff = diff_sources(RECORD_SOURCE, replay)
        assert len(diff.insertions) == 1
        point, lines = diff.insertions[0]
        assert len(lines) == 2
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == {
            "skipblock_0"}

    def test_mixed_indent_insertion_at_loop_boundary_probes(self):
        """Several lines inserted at the boundary: one body-indented line
        among them is enough to mark the block probed."""
        blocks = blocks_for(RECORD_SOURCE)
        replay = RECORD_SOURCE.replace(
            "        loss = step(net, optimizer, batch)",
            "        loss = step(net, optimizer, batch)\n"
            "        probe(loss)\n"
            "    after_inner(net)")
        assert detect_probed_blocks(RECORD_SOURCE, replay, blocks) == {
            "skipblock_0"}
