"""Unit tests for the checkpoint-aware replay scheduler."""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.config import FlorConfig
from repro.exceptions import ReplayError
from repro.replay.partition import WorkSegment
from repro.replay.scheduler import (InitPlan, InProcessChunkQueue,
                                    IterationCosts, ReplayScheduler,
                                    SqliteChunkQueue, aligned_checkpoints,
                                    candidate_starts, load_iteration_costs,
                                    plan_chunks, plan_static_segments)
from repro.storage.backends import CheckpointRecord
from repro.storage.checkpoint_store import CheckpointStore


def make_store(tmp_path, checkpoints: dict[str, list[int]],
               loop_blocks: list[str] | None = None,
               iteration_stats: dict | None = None) -> CheckpointStore:
    """A store whose manifest claims the given checkpoints exist."""
    store = CheckpointStore(tmp_path / "run", backend="memory")
    for block_id, indices in checkpoints.items():
        for index in indices:
            store.backend.index(CheckpointRecord(
                block_id=block_id, execution_index=index,
                path=tmp_path / "x", raw_nbytes=10, stored_nbytes=5,
                digest="d", serialize_seconds=0.0, write_seconds=0.0,
                created_at=0.0))
    if loop_blocks is not None:
        store.set_metadata("loop_blocks", loop_blocks)
    if iteration_stats is not None:
        store.put_metadata("iteration_stats", iteration_stats)
    return store


def covered(segments: list[WorkSegment]) -> list[int]:
    indices: list[int] = []
    for segment in segments:
        indices.extend(segment.indices())
    return indices


class TestAlignment:
    def test_aligned_is_intersection_across_loop_blocks(self, tmp_path):
        store = make_store(tmp_path, {"a": [0, 1, 3, 5], "b": [1, 2, 3]},
                           loop_blocks=["a", "b"])
        assert aligned_checkpoints(store, 6) == [1, 3]

    def test_blocks_outside_the_loop_do_not_constrain(self, tmp_path):
        store = make_store(tmp_path, {"a": [0, 2], "setup": [0]},
                           loop_blocks=["a"])
        assert aligned_checkpoints(store, 4) == [0, 2]

    def test_composite_and_out_of_range_indices_ignored(self, tmp_path):
        store = make_store(
            tmp_path, {"a": [0, 2, 9, 1_000_001]}, loop_blocks=["a"])
        assert aligned_checkpoints(store, 4) == [0, 2]

    def test_falls_back_to_stored_blocks_without_metadata(self, tmp_path):
        store = make_store(tmp_path, {"a": [0, 2]})
        assert aligned_checkpoints(store, 4) == [0, 2]

    def test_no_checkpoints_means_no_alignment(self, tmp_path):
        store = make_store(tmp_path, {}, loop_blocks=[])
        assert aligned_checkpoints(store, 10) == []

    def test_candidate_starts(self):
        assert candidate_starts(6, [1, 3]) == [0, 2, 4]
        assert candidate_starts(6, [5]) == [0]  # 5+1 == total: not a start
        assert candidate_starts(6, []) == [0]


class TestIterationCosts:
    def test_loads_recorded_stats(self, tmp_path):
        store = make_store(tmp_path, {}, iteration_stats={
            "per_iteration_compute_seconds": {"0": 2.0, "1": 4.0},
            "mean_compute_seconds": 3.0,
            "mean_materialize_seconds": 0.5,
            "estimated_restore_seconds": 0.7,
        })
        costs = load_iteration_costs(store)
        assert costs.compute(0) == 2.0
        assert costs.compute(7) == 3.0  # unmeasured -> mean
        assert costs.restore_seconds == 0.7

    def test_defaults_without_stats(self, tmp_path):
        store = make_store(tmp_path, {})
        costs = load_iteration_costs(store)
        assert costs.compute(0) > 0
        assert costs.replay_cost(0, restorable=True) > 0

    def test_replay_cost_prefers_restore_when_memoized(self):
        costs = IterationCosts(per_iteration={}, mean_compute_seconds=1.0,
                               restore_seconds=0.2)
        assert costs.replay_cost(0, restorable=True) == pytest.approx(0.2)
        assert costs.replay_cost(0, restorable=False) == pytest.approx(1.0)
        # Probed blocks re-execute even when memoized.
        assert costs.replay_cost(0, restorable=True,
                                 probed=True) == pytest.approx(1.0)


class TestStaticPlanning:
    UNIT = IterationCosts(per_iteration={}, mean_compute_seconds=1.0,
                          restore_seconds=0.1)

    def test_boundaries_land_on_aligned_starts(self):
        aligned = [2, 5, 8]
        segments = plan_static_segments(12, 3, aligned, self.UNIT)
        starts = {0, 3, 6, 9}
        assert covered(segments) == list(range(12))
        for segment in segments[1:]:
            if len(segment):
                assert segment.start in starts

    def test_full_alignment_degrades_to_balanced_split(self):
        segments = plan_static_segments(4, 2, [0, 1, 2, 3], self.UNIT)
        assert covered(segments) == [0, 1, 2, 3]
        assert all(len(segment) >= 1 for segment in segments)
        # The startup-free leading worker shoulders at least an even share.
        assert len(segments[0]) >= len(segments[1])

    def test_cost_skew_moves_the_boundary(self):
        # A probed replay re-executes everything; the first half is cheap,
        # the second expensive, so the cost-balanced cut lands past the
        # count-balanced midpoint of 6.
        aligned = list(range(12))
        costs = IterationCosts(
            per_iteration={i: (0.1 if i < 6 else 1.0) for i in range(12)},
            mean_compute_seconds=0.5, restore_seconds=0.01)
        segments = plan_static_segments(12, 2, aligned, costs, probed=True)
        assert segments[0].start == 0
        assert segments[0].stop > 6
        assert covered(segments) == list(range(12))

    def test_sparser_checkpoints_than_workers_leaves_workers_idle(self):
        segments = plan_static_segments(10, 4, [4], self.UNIT)
        assert covered(segments) == list(range(10))
        assert sum(1 for segment in segments if len(segment) == 0) >= 2

    def test_no_checkpoints_falls_back_to_uniform(self):
        segments = plan_static_segments(10, 3, [], self.UNIT)
        assert [len(segment) for segment in segments] == [4, 3, 3]

    def test_degenerate_totals(self):
        assert plan_static_segments(0, 3, [], self.UNIT) == [
            WorkSegment(0, 0)] * 3
        assert plan_static_segments(5, 1, [1], self.UNIT) == [
            WorkSegment(0, 5)]

    def test_more_workers_than_iterations(self):
        segments = plan_static_segments(3, 5, [0, 1, 2], self.UNIT)
        assert covered(segments) == [0, 1, 2]
        assert sum(1 for segment in segments if len(segment) == 0) >= 2


class TestChunkPlanning:
    def test_chunks_cover_and_align(self):
        chunks = plan_chunks(12, 2, [1, 3, 5, 7, 9])
        assert covered(chunks) == list(range(12))
        starts = {0, 2, 4, 6, 8, 10}
        assert all(chunk.start in starts for chunk in chunks)
        assert all(len(chunk) >= 2 for chunk in chunks[:-1])

    def test_sparse_checkpoints_force_larger_chunks(self):
        chunks = plan_chunks(10, 2, [6])
        assert chunks == [WorkSegment(0, 7), WorkSegment(7, 10)]

    def test_degenerate(self):
        assert plan_chunks(0, 2, []) == []
        assert plan_chunks(5, 2, []) == [WorkSegment(0, 5)]
        with pytest.raises(ReplayError):
            plan_chunks(5, 0, [1])


class TestChunkQueues:
    CHUNKS = [WorkSegment(0, 2), WorkSegment(2, 4), WorkSegment(4, 6)]

    def test_in_process_queue_drains_in_order(self):
        queue = InProcessChunkQueue(self.CHUNKS)
        claimed = [queue.claim(0), queue.claim(0), queue.claim(0)]
        assert claimed == self.CHUNKS
        assert queue.claim(0) is None

    def test_in_process_queue_prefers_contiguous(self):
        queue = InProcessChunkQueue(self.CHUNKS)
        assert queue.claim(0, preferred_start=2) == WorkSegment(2, 4)
        assert queue.claim(0) == WorkSegment(0, 2)

    def test_sqlite_queue_claims_each_chunk_once(self, tmp_path):
        path = tmp_path / "queue.sqlite"
        first = SqliteChunkQueue(path, self.CHUNKS)
        second = SqliteChunkQueue(path, self.CHUNKS)  # idempotent re-init
        claimed = [first.claim(0), second.claim(1), first.claim(0),
                   second.claim(1)]
        assert [c for c in claimed if c is not None] == self.CHUNKS
        assert first.claim(0) is None
        assert second.claims() == {0: 0, 1: 1, 2: 0}
        first.close()
        second.close()

    def test_sqlite_queue_prefers_contiguous_chunk(self, tmp_path):
        queue = SqliteChunkQueue(tmp_path / "queue.sqlite", self.CHUNKS)
        assert queue.claim(0) == WorkSegment(0, 2)
        assert queue.claim(0, preferred_start=2) == WorkSegment(2, 4)
        queue.close()

    def test_sqlite_queue_surfaces_non_lock_errors_and_stays_usable(
            self, tmp_path):
        import sqlite3
        queue = SqliteChunkQueue(tmp_path / "queue.sqlite", self.CHUNKS)
        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            queue._execute_transaction(
                lambda conn: conn.execute("SELECT * FROM missing"))
        # The failure rolled back cleanly: the next claim still works.
        assert queue.claim(0) == WorkSegment(0, 2)
        queue.close()

    def test_sqlite_queue_concurrent_claims_are_disjoint(self, tmp_path):
        chunks = [WorkSegment(i, i + 1) for i in range(24)]
        path = tmp_path / "queue.sqlite"
        SqliteChunkQueue(path, chunks).close()
        claimed: list[list[WorkSegment]] = [[] for _ in range(4)]

        def worker(pid: int) -> None:
            queue = SqliteChunkQueue(path, chunks)
            while True:
                chunk = queue.claim(pid)
                if chunk is None:
                    break
                claimed[pid].append(chunk)
                time.sleep(0.001)
            queue.close()

        threads = [threading.Thread(target=worker, args=(pid,))
                   for pid in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        merged = sorted((chunk.start for claims in claimed
                         for chunk in claims))
        assert merged == list(range(24))


class TestInitPlans:
    def make_scheduler(self, tmp_path, checkpoints, total=8, strict=False,
                       mode="static"):
        store = make_store(tmp_path, {"train": checkpoints},
                           loop_blocks=["train"])
        return ReplayScheduler(store, total, 2, mode=mode, strict=strict)

    def test_weak_with_exact_boundary_restores_only(self, tmp_path):
        scheduler = self.make_scheduler(tmp_path, [0, 1, 2, 3])
        plan = scheduler.init_plan(4, None, strong=False)
        assert plan == InitPlan(3, range(4, 4))
        assert plan.indices() == [3]

    def test_weak_with_gap_recomputes_forward(self, tmp_path):
        # Checkpoints at 0 and 1 only; a segment starting at 4 must restore
        # 1 and recompute 2..3 — not silently run from iteration 1's state.
        scheduler = self.make_scheduler(tmp_path, [0, 1])
        plan = scheduler.init_plan(4, None, strong=False)
        assert plan == InitPlan(1, range(2, 4))
        assert plan.indices() == [1, 2, 3]

    def test_weak_without_any_checkpoint_recomputes_from_scratch(
            self, tmp_path):
        scheduler = self.make_scheduler(tmp_path, [])
        with pytest.warns(UserWarning, match="no usable checkpoint"):
            plan = scheduler.init_plan(4, None, strong=False)
        assert plan == InitPlan(None, range(0, 4))

    def test_weak_without_any_checkpoint_raises_when_strict(self, tmp_path):
        scheduler = self.make_scheduler(tmp_path, [], strict=True)
        with pytest.raises(ReplayError, match="no usable checkpoint"):
            scheduler.init_plan(4, None, strong=False)

    def test_strong_recomputes_whole_prefix(self, tmp_path):
        scheduler = self.make_scheduler(tmp_path, [0, 1, 2])
        assert scheduler.init_plan(4, None,
                                   strong=True) == InitPlan(None, range(0, 4))

    def test_contiguous_resume_needs_no_init(self, tmp_path):
        scheduler = self.make_scheduler(tmp_path, [0, 1, 2, 3])
        assert len(scheduler.init_plan(4, 4, strong=False)) == 0

    def test_resume_past_checkpoints_recomputes_from_current_state(
            self, tmp_path):
        # State is at iteration 3 (chunk [0,3) done); the best checkpoint is
        # at 1 — recomputing 3..4 forward beats rewinding to 1.
        scheduler = self.make_scheduler(tmp_path, [0, 1])
        plan = scheduler.init_plan(5, 3, strong=False)
        assert plan == InitPlan(None, range(3, 5))

    def test_segment_start_zero_needs_no_init(self, tmp_path):
        scheduler = self.make_scheduler(tmp_path, [0, 1])
        assert len(scheduler.init_plan(0, None, strong=False)) == 0
        assert len(scheduler.init_plan(0, None, strong=True)) == 0


class TestSchedulerFacade:
    def test_uniform_mode_matches_paper_split(self, tmp_path):
        store = make_store(tmp_path, {"train": [0, 2]},
                           loop_blocks=["train"])
        scheduler = ReplayScheduler(store, 8, 2, mode="uniform")
        assert list(scheduler.worker_segments(0)) == [WorkSegment(0, 4)]
        assert list(scheduler.worker_segments(1)) == [WorkSegment(4, 8)]

    def test_static_mode_aligns_boundaries(self, tmp_path):
        store = make_store(tmp_path, {"train": [0, 1, 2, 4, 5, 6]},
                           loop_blocks=["train"])
        scheduler = ReplayScheduler(store, 8, 2, mode="static")
        (first,) = scheduler.worker_segments(0)
        (second,) = scheduler.worker_segments(1)
        assert first.stop == second.start
        assert second.start - 1 in {0, 1, 2, 4, 5, 6}
        assert len(first) + len(second) == 8

    def test_dynamic_single_worker_drains_every_chunk(self, tmp_path):
        store = make_store(tmp_path, {"train": list(range(8))},
                           loop_blocks=["train"])
        scheduler = ReplayScheduler(store, 8, 1, mode="dynamic", chunk_size=3)
        segments = list(scheduler.worker_segments(0))
        assert len(segments) > 1
        assert covered(segments) == list(range(8))

    def test_dynamic_multi_worker_without_queue_falls_back_static(
            self, tmp_path):
        store = make_store(tmp_path, {"train": list(range(8))},
                           loop_blocks=["train"])
        scheduler = ReplayScheduler(store, 8, 2, mode="dynamic")
        both = (list(scheduler.worker_segments(0))
                + list(scheduler.worker_segments(1)))
        assert sorted(covered(both)) == list(range(8))

    def test_dynamic_workers_share_a_queue(self, tmp_path):
        store = make_store(tmp_path, {"train": list(range(12))},
                           loop_blocks=["train"])
        queue_path = tmp_path / "queue.sqlite"
        schedulers = [
            ReplayScheduler(store, 12, 2, mode="dynamic", chunk_size=2,
                            queue_path=queue_path)
            for _ in range(2)]
        claimed = [list(schedulers[0].worker_segments(0)),
                   list(schedulers[1].worker_segments(1))]
        assert sorted(covered(claimed[0] + claimed[1])) == list(range(12))
        # Worker 0 drained the whole queue first, so worker 1 got nothing —
        # or they interleaved; either way nothing was claimed twice.
        assert len(covered(claimed[0])) + len(covered(claimed[1])) == 12

    def test_invalid_configuration_rejected(self, tmp_path):
        store = make_store(tmp_path, {})
        with pytest.raises(ReplayError):
            ReplayScheduler(store, 8, 2, mode="surprise")
        with pytest.raises(ReplayError):
            ReplayScheduler(store, -1, 2)
        with pytest.raises(ReplayError):
            ReplayScheduler(store, 8, 0)
        scheduler = ReplayScheduler(store, 8, 2)
        with pytest.raises(ReplayError):
            list(scheduler.worker_segments(5))

    def test_config_knob_validation(self, tmp_path):
        with pytest.raises(repro.ConfigError):
            FlorConfig(home=tmp_path, replay_scheduler="nope")
        with pytest.raises(repro.ConfigError):
            FlorConfig(home=tmp_path, replay_chunk_size=0)
