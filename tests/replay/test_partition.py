"""Tests for iterator partitioning (hindsight parallelism, Section 5.4.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReplayError
from repro.replay.partition import partition_indices, segment_sizes


class TestPartitionIndices:
    def test_even_split(self):
        segments = [partition_indices(8, 4, pid) for pid in range(4)]
        assert [list(s.indices()) for s in segments] == [
            [0, 1], [2, 3], [4, 5], [6, 7]]

    def test_uneven_split_gives_extra_to_first_workers(self):
        sizes = segment_sizes(10, 4)
        assert sizes == [3, 3, 2, 2]

    def test_more_workers_than_items(self):
        sizes = segment_sizes(2, 5)
        assert sizes == [1, 1, 0, 0, 0]

    def test_single_worker_gets_everything(self):
        segment = partition_indices(7, 1, 0)
        assert list(segment.indices()) == list(range(7))

    def test_paper_load_balance_example(self):
        """200 epochs over 16 workers: the largest share is 13 epochs."""
        assert max(segment_sizes(200, 16)) == 13

    def test_contains(self):
        segment = partition_indices(10, 2, 1)
        assert 7 in segment
        assert 2 not in segment

    def test_invalid_arguments(self):
        with pytest.raises(ReplayError):
            partition_indices(-1, 2, 0)
        with pytest.raises(ReplayError):
            partition_indices(10, 0, 0)
        with pytest.raises(ReplayError):
            partition_indices(10, 2, 2)
        with pytest.raises(ReplayError):
            partition_indices(10, 2, -1)

    @given(st.integers(0, 500), st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_partition_property_disjoint_and_complete(self, total, workers):
        """Workers jointly cover every iteration exactly once, contiguously,
        and the load imbalance is at most one iteration."""
        segments = [partition_indices(total, workers, pid)
                    for pid in range(workers)]
        covered = [index for segment in segments for index in segment.indices()]
        assert covered == list(range(total))
        sizes = [len(segment) for segment in segments]
        assert max(sizes) - min(sizes) <= 1
