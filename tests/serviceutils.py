"""Shared helpers for the query-service test batteries.

Everything the concurrency, fault, and e2e tests need to set up a
realistic multi-tenant scene: seeded runs whose hindsight probes *must*
replay (stateful accumulators the record log never captured), a service
context manager that always drains on exit, and stub runners for
scheduler-level tests that should not pay for real subprocess replay.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import repro
from repro.replay.parallel import ReplayJobSpec, WorkerResult
from repro.service import QueryService

__all__ = ["record_run", "probe_for", "start_service", "serve_daemon",
           "stub_result", "SlowRunner", "wait_until"]


def record_run(config, iterations: int = 8, scale: float = 0.5,
               iter_seconds: float = 0.0) -> str:
    """Record one run with a hidden accumulator; returns its run id.

    ``state`` is never logged at record time, so any probe asking for it
    forces real checkpoint-restoring replay (not log/memo/analysis
    resolution).  ``iter_seconds`` adds per-iteration wall time *outside*
    the checkpointed block, so it is paid at record time AND re-paid by
    every replayed iteration — the knob that makes replay long enough for
    drain/fairness windows to be deterministic.
    """
    script = _script(iterations, scale, iter_seconds, probed=False)
    return repro.record_source(script, config=config).run_id


def probe_for(iterations: int = 8, scale: float = 0.5,
              iter_seconds: float = 0.0) -> str:
    """The hindsight probe source matching :func:`record_run`'s script."""
    return _script(iterations, scale, iter_seconds, probed=True)


def _script(iterations: int, scale: float, iter_seconds: float,
            probed: bool) -> str:
    # The inner for-block is what the instrumenter wraps in a SkipBlock;
    # its checkpointed ``state`` is what gives the planner aligned
    # restore points (and span splitting).  The sleep sits at epoch
    # level, OUTSIDE the block: replay restores block state from
    # checkpoints (skipping anything inside), but re-executes epoch-level
    # code, so the sleep slows both record and replay.
    lines = [
        "import time",
        "from repro import api as flor",
        "state = 0.0",
        f"for epoch in range({iterations}):",
        "    for _step in range(1):",
        f"        state = state + epoch * {scale}",
    ]
    if iter_seconds:
        lines.append(f"    time.sleep({iter_seconds})")
    lines.append('    flor.log("loss", 1.0 / (epoch + 1))')
    if probed:
        lines.append('    flor.log("state", state)')
    return "\n".join(lines) + "\n"


@contextmanager
def start_service(config, **kwargs):
    """A started :class:`QueryService` that always shuts down afterwards."""
    service = QueryService(config=config, **kwargs).start()
    try:
        yield service
    finally:
        service.shutdown(drain_seconds=10.0)


def serve_daemon(home, trace_out) -> subprocess.Popen:
    """Launch a real ``python -m repro.serve`` daemon on an ephemeral port.

    The caller scrapes the ``listening <addr>`` banner from stdout; the
    trace file is written on exit (``--telemetry --trace-out``), matching
    what the CI service smoke uploads as an artifact.
    """
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--home", str(home),
         "--port", "0", "--workers", "2", "--telemetry",
         "--trace-out", str(trace_out)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)


def stub_result(spec: ReplayJobSpec) -> WorkerResult:
    """A successful no-op replay result for scheduler unit tests."""
    return WorkerResult(pid=spec.pid, wall_seconds=0.0,
                        iterations=list(spec.sample_iterations),
                        log_records=[])


class SlowRunner:
    """A runner that delays each job, optionally delegating to another.

    Used to stretch job execution long enough for concurrency windows
    (dedup attachment, fairness interleaving) to be deterministic, and to
    record dispatch order.
    """

    def __init__(self, delay: float = 0.1, delegate=None):
        self.delay = delay
        self.delegate = delegate or stub_result
        self.calls: list[str] = []
        self._lock = threading.Lock()

    def __call__(self, spec: ReplayJobSpec) -> WorkerResult:
        with self._lock:
            self.calls.append(spec.run_id)
        time.sleep(self.delay)
        return self.delegate(spec)


def wait_until(predicate, timeout: float = 20.0,
               interval: float = 0.01) -> bool:
    """Poll ``predicate`` until it is truthy or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False
