"""Tests for the SkipBlock construct and the Session through the explicit API."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import api as flor
from repro import torchlike as tl
from repro.modes import InitStrategy, Mode, Phase
from repro.record.skipblock import UNDEFINED
from repro.session import Session, get_active_session


def train_with_explicit_api(session, epochs=4, lr=0.2):
    """A miniature training loop written against the explicit SkipBlock API."""
    rng = np.random.default_rng(0)
    X = rng.standard_normal((32, 4)).astype(np.float32)
    y = (X[:, 0] > 0).astype(np.int64)
    net = tl.Sequential(tl.Linear(4, 8, rng=rng), tl.ReLU(),
                        tl.Linear(8, 2, rng=rng))
    optimizer = tl.SGD(net.parameters(), lr=lr, momentum=0.9)
    criterion = tl.CrossEntropyLoss()
    losses = []
    for epoch in session.loop(range(epochs)):
        sb = session.skipblock("train")
        if sb.should_execute():
            for start in range(0, 32, 8):
                logits = net(tl.Tensor(X[start:start + 8]))
                loss = criterion(logits, y[start:start + 8])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        net, optimizer = sb.end(
            _namespace={"net": net, "optimizer": optimizer},
            net=net, optimizer=optimizer)
        with tl.no_grad():
            full_loss = criterion(net(tl.Tensor(X)), y).item()
        session.log("loss", full_loss)
        losses.append(full_loss)
    return losses


class TestRecordMode:
    def test_record_materializes_one_checkpoint_per_epoch(self, flor_config):
        session = Session("run-a", Mode.RECORD, config=flor_config)
        with session:
            losses = train_with_explicit_api(session)
        assert len(losses) == 4
        assert session.store.executions("train") == [0, 1, 2, 3]
        assert session.store.get_metadata("main_loop_total") == 4

    def test_record_logs_go_to_record_log(self, flor_config):
        session = Session("run-b", Mode.RECORD, config=flor_config)
        with session:
            train_with_explicit_api(session)
        records = session.record_log_records()
        assert [r.name for r in records] == ["loss"] * 4
        assert [r.iteration for r in records] == [0, 1, 2, 3]

    def test_skipblock_end_before_should_execute_raises(self, flor_config):
        session = Session("run-c", Mode.RECORD, config=flor_config)
        with session:
            sb = session.skipblock("train")
            with pytest.raises(repro.ReplayError):
                sb.end(x=1)

    def test_active_session_registry(self, flor_config):
        session = Session("run-d", Mode.RECORD, config=flor_config)
        assert get_active_session() is None
        with session:
            assert get_active_session() is session
            with pytest.raises(repro.RecordError):
                Session("run-e", Mode.RECORD, config=flor_config).activate()
        assert get_active_session() is None

    def test_execution_index_uses_main_loop_iteration(self, flor_config):
        session = Session("run-f", Mode.RECORD, config=flor_config)
        with session:
            for epoch in session.loop(range(3)):
                sb = session.skipblock("block")
                assert sb.execution_index == epoch
                sb.should_execute()
                sb.end(_namespace={}, value=epoch)

    def test_execution_index_outside_main_loop_counts_up(self, flor_config):
        session = Session("run-g", Mode.RECORD, config=flor_config)
        with session:
            indices = [session.skipblock("b").execution_index for _ in range(3)]
        assert indices == [0, 1, 2]

    def test_repeated_block_in_same_iteration_gets_composite_index(self,
                                                                   flor_config):
        session = Session("run-h", Mode.RECORD, config=flor_config)
        with session:
            for _ in session.loop(range(1)):
                first = session.skipblock("b").execution_index
                second = session.skipblock("b").execution_index
        assert first == 0
        # Composite indices live above 1_000_000 even in iteration 0, so a
        # repeat can never alias a later iteration's plain index.
        assert second == 1_000_001


class TestReplayMode:
    def record_run(self, config, run_id="replay-source"):
        session = Session(run_id, Mode.RECORD, config=config)
        with session:
            losses = train_with_explicit_api(session)
        return run_id, losses

    def test_replay_skips_blocks_and_restores_state(self, flor_config):
        run_id, record_losses = self.record_run(flor_config)
        replay = Session(run_id, Mode.REPLAY, config=flor_config)
        with replay:
            replay_losses = train_with_explicit_api(replay, lr=99.0)
        # The learning rate differs wildly, but the loops were skipped and the
        # state restored from checkpoints, so the logged losses match exactly.
        assert replay_losses == pytest.approx(record_losses, rel=1e-6)

    def test_probed_block_is_reexecuted(self, flor_config):
        run_id, record_losses = self.record_run(flor_config, "replay-probed")
        replay = Session(run_id, Mode.REPLAY, config=flor_config,
                         probed_blocks={"train"})
        with replay:
            replay_losses = train_with_explicit_api(replay)
        assert replay_losses == pytest.approx(record_losses, rel=1e-4)

    def test_partitioned_replay_covers_assigned_segment_only(self, flor_config):
        # The uniform scheduler pins the exact segment shape this asserts;
        # the cost-balanced default may legitimately cut elsewhere.
        run_id, _ = self.record_run(flor_config, "replay-partitioned")
        config = flor_config.with_overrides(replay_scheduler="uniform")
        replay = Session(run_id, Mode.REPLAY, config=config,
                         pid=1, num_workers=2)
        with replay:
            train_with_explicit_api(replay)
        assert replay.iterations_run == [2, 3]
        # Only the worker's own iterations were logged.
        assert [r.iteration for r in replay.logs] == [2, 3]

    def test_weak_init_uses_nearest_checkpoint(self, flor_config):
        run_id, _ = self.record_run(flor_config, "replay-weak")
        config = flor_config.with_overrides(replay_scheduler="uniform")
        replay = Session(run_id, Mode.REPLAY, config=config,
                         pid=1, num_workers=2,
                         init_strategy=InitStrategy.WEAK)
        with replay:
            losses = train_with_explicit_api(replay)
        assert len(losses) == 3  # one init iteration + two work iterations

    def test_phase_transitions_during_replay(self, flor_config):
        run_id, _ = self.record_run(flor_config, "replay-phases")
        config = flor_config.with_overrides(replay_scheduler="uniform")
        replay = Session(run_id, Mode.REPLAY, config=config,
                         pid=1, num_workers=2)
        phases = []
        with replay:
            for _ in replay.loop(range(4)):
                phases.append(replay.phase)
        assert phases == [Phase.REPLAY_INIT, Phase.REPLAY_INIT,
                          Phase.REPLAY_EXEC, Phase.REPLAY_EXEC]

    def test_legacy_composite_index_scheme_respected_on_replay(
            self, flor_config):
        # A run recorded under the legacy composite-index formula replays
        # with the same formula (read from store metadata), so its stored
        # checkpoint indices still line up.
        record = Session("legacy-idx", Mode.RECORD, config=flor_config)
        record._index_scheme = 1
        with record:
            for _ in record.loop(range(2)):
                for _repeat in range(2):
                    sb = record.skipblock("b")
                    sb.should_execute()
                    sb.end(_namespace={}, value=1)

        replay = Session("legacy-idx", Mode.REPLAY, config=flor_config)
        assert replay._index_scheme == 1
        with replay:
            observed = []
            for _ in replay.loop(range(2)):
                for _repeat in range(2):
                    sb = replay.skipblock("b")
                    observed.append(sb.execution_index)
                    sb.should_execute()
                    sb.end(_namespace={}, value=1)
        assert observed == [0, 1, 1, 1_000_001]  # the legacy formula

    def test_invalid_worker_configuration(self, flor_config):
        with pytest.raises(repro.ReplayError):
            Session("x", Mode.REPLAY, config=flor_config, pid=3, num_workers=2)
        with pytest.raises(repro.ReplayError):
            Session("x", Mode.REPLAY, config=flor_config, num_workers=0)


class TestEndFromNamespace:
    def test_missing_names_come_back_as_undefined_on_record(self, flor_config):
        session = Session("ns-run", Mode.RECORD, config=flor_config)
        with session:
            sb = session.skipblock("b")
            sb.should_execute()
            values = sb.end_from_namespace(["known", "unknown"], {"known": 5})
        assert values["known"] == 5
        assert values["unknown"] is UNDEFINED

    def test_loop_scoped_value_restored_from_checkpoint_on_skip(self, flor_config):
        record = Session("ns-record", Mode.RECORD, config=flor_config)
        with record:
            for _ in record.loop(range(1)):
                sb = record.skipblock("b")
                sb.should_execute()
                sb.end_from_namespace(["loss"], {"loss": 0.75})

        replay = Session("ns-record", Mode.REPLAY, config=flor_config)
        with replay:
            for _ in replay.loop(range(1)):
                sb = replay.skipblock("b")
                executed = sb.should_execute()
                values = sb.end_from_namespace(["loss"], {})
        assert not executed
        assert values["loss"] == 0.75


class TestPassthroughApi:
    def test_api_without_session_is_nonintrusive(self):
        assert flor.log("loss", 1.5) == 1.5
        assert list(flor.loop(range(3))) == [0, 1, 2]
        sb = flor.skipblock("anything")
        assert sb.should_execute()
        assert sb.end(x=1, y=2) == (1, 2)
        assert sb.end_from_namespace(["x", "z"], {"x": 1}) == {
            "x": 1, "z": flor.UNDEFINED}
