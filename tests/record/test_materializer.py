"""Tests for the background materialization strategies (Section 5.1)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import RecordError
from repro.record.materializer import (MATERIALIZER_NAMES, create_materializer)
from repro.storage.checkpoint_store import CheckpointStore
from repro.storage.serializer import snapshot_value


def make_snapshots(value: float = 1.0, size: int = 1024):
    return [snapshot_value("weights", np.full(size, value, dtype=np.float32))]


ALL_STRATEGIES = sorted(MATERIALIZER_NAMES)
POSIX_ONLY = {"fork"}


def strategies_for_this_platform():
    names = list(ALL_STRATEGIES)
    if not hasattr(os, "fork"):
        names = [name for name in names if name not in POSIX_ONLY]
    return names


class TestStrategiesWriteDurableCheckpoints:
    @pytest.mark.parametrize("strategy", strategies_for_this_platform())
    def test_submit_flush_then_read_back(self, tmp_path, strategy):
        store = CheckpointStore(tmp_path / strategy, compress=False)
        materializer = create_materializer(strategy, store)
        try:
            ticket = materializer.submit("train", 0, make_snapshots(7.0))
            materializer.flush()
        finally:
            materializer.close()
        assert ticket.main_thread_seconds >= 0
        assert ticket.payload_nbytes > 0
        snapshots = store.get("train", 0)
        np.testing.assert_allclose(snapshots[0].payload, np.full(1024, 7.0))

    @pytest.mark.parametrize("strategy", strategies_for_this_platform())
    def test_multiple_checkpoints(self, tmp_path, strategy):
        store = CheckpointStore(tmp_path / strategy, compress=False)
        materializer = create_materializer(strategy, store)
        try:
            for index in range(4):
                materializer.submit("train", index, make_snapshots(float(index)))
            materializer.flush()
        finally:
            materializer.close()
        assert store.executions("train") == [0, 1, 2, 3]
        np.testing.assert_allclose(store.get("train", 3)[0].payload,
                                   np.full(1024, 3.0))

    def test_stats_accumulate(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", compress=False)
        materializer = create_materializer("sequential", store)
        materializer.submit("a", 0, make_snapshots())
        materializer.submit("a", 1, make_snapshots())
        materializer.close()
        assert materializer.stats.submitted == 2
        assert materializer.stats.total_main_thread_seconds > 0
        assert materializer.stats.total_payload_nbytes > 0

    def test_unknown_strategy_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        with pytest.raises(RecordError, match="unknown materializer"):
            create_materializer("carrier-pigeon", store)


class TestSequentialVsBackground:
    def test_sequential_completes_inline(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", compress=False)
        materializer = create_materializer("sequential", store)
        ticket = materializer.submit("train", 0, make_snapshots())
        assert ticket.completed_inline
        # Durable immediately, before any flush.
        assert store.contains("train", 0)
        materializer.close()

    def test_thread_strategy_defers_work(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", compress=False)
        materializer = create_materializer("thread", store)
        ticket = materializer.submit("train", 0, make_snapshots(size=200_000))
        assert not ticket.completed_inline
        materializer.close()
        assert store.contains("train", 0)

    def test_thread_blocks_main_thread_less_than_sequential(self, tmp_path):
        """The point of Figure 5: background strategies keep the training
        thread (much) less busy than the sequential baseline on a large
        payload.  Timing comparisons are noisy, so the payload is large and
        the assertion is a loose factor."""
        payload = make_snapshots(size=2_000_000)

        store_a = CheckpointStore(tmp_path / "sequential", compress=False)
        sequential = create_materializer("sequential", store_a)
        sequential_ticket = sequential.submit("train", 0, payload)
        sequential.close()

        store_b = CheckpointStore(tmp_path / "thread", compress=False)
        threaded = create_materializer("thread", store_b)
        thread_ticket = threaded.submit("train", 0, payload)
        threaded.close()

        assert (thread_ticket.main_thread_seconds
                <= sequential_ticket.main_thread_seconds * 2)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires POSIX fork()")
class TestForkMaterializer:
    def test_batching_defers_fork_until_flush(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", compress=False)
        materializer = create_materializer("fork", store, batch_objects=1000)
        materializer.submit("train", 0, make_snapshots())
        # Below the batch threshold: nothing durable yet.
        assert not store.contains("train", 0)
        materializer.flush()
        assert store.contains("train", 0)
        materializer.close()

    def test_small_batch_threshold_forks_eagerly(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", compress=False)
        materializer = create_materializer("fork", store, batch_objects=1)
        materializer.submit("train", 0, make_snapshots())
        materializer.flush()
        assert store.contains("train", 0)
        materializer.close()

    def test_requires_posix(self, tmp_path, monkeypatch):
        from repro.record import materializer as module
        store = CheckpointStore(tmp_path / "run")
        monkeypatch.delattr(module.os, "fork")
        with pytest.raises(RecordError, match="POSIX"):
            module.ForkMaterializer(store)
