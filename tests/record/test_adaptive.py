"""Tests for the adaptive checkpointing controller (Joint Invariant, Eq. 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.record.adaptive import AdaptiveController


def run_epochs(controller: AdaptiveController, block: str, epochs: int,
               compute_seconds: float, payload_nbytes: int,
               materialize_seconds: float) -> int:
    """Drive the controller the way a SkipBlock does; return checkpoints made."""
    materialized = 0
    for _ in range(epochs):
        controller.observe_execution(block, compute_seconds)
        decision = controller.should_materialize(block, compute_seconds,
                                                 payload_nbytes)
        if decision.materialize:
            controller.observe_materialization(block, materialize_seconds,
                                               payload_nbytes)
            materialized += 1
    return materialized


class TestJointInvariant:
    def test_cheap_checkpoints_materialized_every_epoch(self):
        """Training workloads: materialization is negligible vs computation."""
        controller = AdaptiveController()
        controller._throughput = 1e9  # 1 GB/s
        count = run_epochs(controller, "train", epochs=50,
                           compute_seconds=10.0, payload_nbytes=10_000_000,
                           materialize_seconds=0.01)
        assert count == 50

    def test_expensive_checkpoints_materialized_sparsely(self):
        """Fine-tuning workloads: massive checkpoints, short epochs."""
        controller = AdaptiveController()
        controller._throughput = 1e8
        count = run_epochs(controller, "finetune", epochs=200,
                           compute_seconds=1.0, payload_nbytes=100_000_000,
                           materialize_seconds=1.0)
        assert 0 < count < 30

    def test_overhead_never_exceeds_tolerance(self):
        """The Record Overhead Invariant: k*M <= n*epsilon*C (within one ckpt)."""
        epsilon = 1.0 / 15.0
        controller = AdaptiveController(epsilon=epsilon)
        controller._throughput = 1e8
        compute, materialize = 1.0, 0.9
        count = run_epochs(controller, "b", epochs=300, compute_seconds=compute,
                           payload_nbytes=90_000_000,
                           materialize_seconds=materialize)
        overhead = count * materialize / (300 * compute)
        assert overhead <= epsilon + materialize / (300 * compute)

    def test_disabled_controller_always_materializes(self):
        controller = AdaptiveController(enabled=False)
        controller._throughput = 1.0  # absurdly slow; would never pass Eq. 4
        count = run_epochs(controller, "b", epochs=20, compute_seconds=0.001,
                           payload_nbytes=10_000_000, materialize_seconds=5.0)
        assert count == 20

    def test_first_execution_of_cheap_block_is_materialized(self):
        controller = AdaptiveController()
        controller.observe_execution("b", 10.0)
        decision = controller.should_materialize("b", 10.0, 1000)
        assert decision.materialize
        assert decision.ratio < decision.threshold

    def test_decision_reports_reason(self):
        controller = AdaptiveController()
        controller._throughput = 1e3
        controller.observe_execution("b", 0.001)
        decision = controller.should_materialize("b", 0.001, 10_000_000)
        assert not decision.materialize
        assert "expensive" in decision.reason

    @given(st.floats(0.01, 0.2), st.integers(10, 150),
           st.floats(0.01, 2.0), st.floats(0.001, 5.0))
    @settings(max_examples=40, deadline=None)
    def test_overhead_invariant_property(self, epsilon, epochs, compute,
                                         materialize):
        """For any workload shape, total overhead stays within one checkpoint
        of the tolerance (the k+1 test guarantees the bound holds *after*
        each materialization)."""
        controller = AdaptiveController(epsilon=epsilon)
        payload = 1_000_000
        controller._throughput = payload / materialize
        count = run_epochs(controller, "b", epochs=epochs,
                           compute_seconds=compute, payload_nbytes=payload,
                           materialize_seconds=materialize)
        overhead = count * materialize
        budget = epochs * compute * epsilon
        assert overhead <= budget + materialize + 1e-9


class TestThresholdAndEstimates:
    def test_joint_threshold_grows_with_executions(self):
        controller = AdaptiveController()
        controller.observe_execution("b", 1.0)
        first = controller.joint_threshold("b")
        for _ in range(9):
            controller.observe_execution("b", 1.0)
        assert controller.joint_threshold("b") > first

    def test_joint_threshold_shrinks_with_checkpoints(self):
        controller = AdaptiveController()
        for _ in range(10):
            controller.observe_execution("b", 1.0)
        before = controller.joint_threshold("b")
        controller.observe_materialization("b", 0.1, 1000)
        assert controller.joint_threshold("b") < before

    def test_estimate_uses_observed_throughput(self):
        controller = AdaptiveController()
        initial = controller.estimate_materialize_seconds(10_000_000)
        # Observe a very slow materialization: the estimate must increase.
        controller.observe_materialization("b", seconds=10.0, nbytes=1_000_000)
        assert controller.estimate_materialize_seconds(10_000_000) > initial

    def test_estimate_zero_for_empty_payload(self):
        assert AdaptiveController().estimate_materialize_seconds(0) == 0.0

    def test_scaling_factor_refined_from_restores(self):
        controller = AdaptiveController(scaling_factor=1.0)
        controller.observe_restore("b", restore_seconds=2.0,
                                   materialize_seconds=1.0)
        assert controller.scaling_factor == pytest.approx(2.0)
        controller.observe_restore("b", restore_seconds=1.0,
                                   materialize_seconds=1.0)
        assert controller.scaling_factor == pytest.approx(1.5)

    def test_overhead_fraction_accounting(self):
        controller = AdaptiveController()
        controller.observe_execution("b", 10.0)
        controller.observe_materialization("b", 1.0, 1000)
        assert controller.overhead_fraction("b") == pytest.approx(0.1)
        assert controller.overhead_fraction() == pytest.approx(0.1)
        assert controller.overhead_fraction("missing") == 0.0

    def test_summary_contains_counters(self):
        controller = AdaptiveController()
        controller.observe_execution("b", 1.0)
        controller.observe_materialization("b", 0.5, 100)
        summary = controller.summary()
        assert summary["b"]["executions"] == 1
        assert summary["b"]["checkpoints"] == 1


class TestAsyncThroughputFeedback:
    """Async submits must not pollute the throughput model (enqueue time is
    not materialization time); only background completions refine it."""

    def test_inline_zero_nbytes_skips_throughput_blend(self):
        from repro.record.adaptive import (AdaptiveController,
                                           DEFAULT_THROUGHPUT_BYTES_PER_SECOND)
        controller = AdaptiveController()
        # An async submit: microseconds of enqueue time, nbytes withheld.
        controller.observe_materialization("train", 2e-5, 0)
        assert controller._throughput == DEFAULT_THROUGHPUT_BYTES_PER_SECOND
        assert controller.block("train").checkpoints == 1

    def test_background_completion_refines_throughput(self):
        from repro.record.adaptive import AdaptiveController
        controller = AdaptiveController()
        before = controller._throughput
        controller.observe_background_materialization("train", 0.1, 3_000_000)
        after = controller._throughput
        assert after != before
        # Blended toward the observed 30 MB/s, never toward enqueue rates.
        assert after < before
        assert controller.block("train").total_background_seconds == 0.1
        # k_i is counted at submit time, not again on completion.
        assert controller.block("train").checkpoints == 0

    def test_spool_materializer_feedback_keeps_estimates_sane(self, tmp_path):
        import time

        import numpy as np

        from repro.record.adaptive import AdaptiveController
        from repro.record.materializer import create_materializer
        from repro.storage.checkpoint_store import CheckpointStore
        from repro.storage.serializer import snapshot_value

        controller = AdaptiveController()
        store = CheckpointStore(tmp_path / "run")
        materializer = create_materializer(
            "spool", store,
            on_complete=controller.observe_background_materialization)
        payload = [snapshot_value("w", np.zeros(400_000, dtype=np.float32))]
        nbytes = payload[0].nbytes()
        for index in range(3):
            ticket = materializer.submit("train", index, payload)
            controller.observe_materialization(
                "train", ticket.main_thread_seconds,
                nbytes if ticket.completed_inline else 0)
        materializer.close()
        # The model saw only real background rates: a 1.6 MB checkpoint
        # must not look instantaneous (the polluted model estimated ~us).
        estimate = controller.estimate_materialize_seconds(nbytes)
        elapsed = materializer.spool.stats.spool_seconds / 3
        assert estimate > elapsed / 100
        assert controller.block("train").checkpoints == 3
        assert controller.block("train").total_background_seconds > 0


class TestCodecCostModel:
    def test_priors_rank_raw_fastest_on_fast_storage(self):
        controller = AdaptiveController()
        controller._write_bandwidth = 100e9  # storage is effectively free
        assert controller.choose_codec(100_000_000,
                                       candidates=("gzip", "raw")) == "raw"

    def test_slow_storage_rewards_compression(self):
        controller = AdaptiveController()
        controller._write_bandwidth = 1e6  # 1 MB/s: every byte hurts
        assert controller.choose_codec(100_000_000,
                                       candidates=("gzip", "raw")) == "gzip"

    def test_observations_override_priors(self):
        controller = AdaptiveController()
        controller._write_bandwidth = 1e6
        # Measured: gzip achieves no compression here (random bytes), so
        # the write stage stops subsidizing its compress cost and raw —
        # with its enormous throughput — wins.
        for _ in range(40):
            controller.observe_codec("gzip", 1_000_000, 0.025, 999_000)
        assert controller.codec_model("gzip").ratio < 1.1
        assert controller.choose_codec(1_000_000,
                                       candidates=("gzip", "raw")) == "raw"

    def test_observe_codec_updates_throughput_ewma(self):
        controller = AdaptiveController()
        before = controller.codec_model("gzip").throughput
        for _ in range(30):
            controller.observe_codec("gzip", 10_000_000, 0.05, 5_000_000)
        after = controller.codec_model("gzip").throughput
        assert after != before
        assert after == pytest.approx(200e6, rel=0.3)

    def test_zero_nbytes_payload_picks_first_candidate(self):
        controller = AdaptiveController()
        assert controller.choose_codec(0) == "gzip"

    def test_unknown_codec_gets_generic_prior(self):
        controller = AdaptiveController()
        model = controller.codec_model("snappy")
        assert model.throughput > 0 and model.ratio > 0

    def test_codec_summary_reports_observed_models(self):
        controller = AdaptiveController()
        controller.observe_codec("zlib", 1000, 0.001, 400)
        summary = controller.codec_summary()
        assert summary["zlib"]["observations"] == 1
        assert summary["zlib"]["ratio"] > 0
