"""Tests for the log manager and log-file format."""

from __future__ import annotations

import numpy as np

from repro.record.logger import LogManager, LogRecord, merge_logs, read_log
from repro.torchlike import Tensor


class TestLogManager:
    def test_log_and_values(self, tmp_path):
        manager = LogManager(tmp_path / "record.log")
        manager.log("loss", 0.5, iteration=0)
        manager.log("loss", 0.25, iteration=1)
        manager.log("accuracy", 0.9, iteration=1)
        assert manager.values("loss") == [0.5, 0.25]
        assert manager.names() == ["loss", "accuracy"]
        assert len(manager) == 3

    def test_records_carry_sequence_numbers(self, tmp_path):
        manager = LogManager(tmp_path / "record.log")
        manager.log("a", 1)
        manager.log("a", 2)
        sequences = [record.sequence for record in manager]
        assert sequences == [0, 1]

    def test_log_file_is_jsonl_and_readable(self, tmp_path):
        path = tmp_path / "record.log"
        manager = LogManager(path)
        manager.log("loss", 0.125, iteration=3)
        records = read_log(path)
        assert len(records) == 1
        assert records[0].name == "loss"
        assert records[0].value == 0.125
        assert records[0].iteration == 3

    def test_numpy_and_tensor_values_normalized(self, tmp_path):
        manager = LogManager(tmp_path / "record.log")
        manager.log("np_scalar", np.float32(1.5))
        manager.log("np_array", np.array([1.0, 2.0]))
        manager.log("tensor", Tensor(3.25))
        values = {record.name: record.value for record in manager}
        assert values["np_scalar"] == 1.5
        assert values["np_array"] == [1.0, 2.0]
        assert values["tensor"] == 3.25
        # File must still round-trip through JSON.
        assert len(read_log(tmp_path / "record.log")) == 3

    def test_arbitrary_objects_stored_as_repr(self, tmp_path):
        manager = LogManager(tmp_path / "record.log")
        manager.log("object", object())
        assert isinstance(manager.records[0].value, str)

    def test_in_memory_manager_without_path(self):
        manager = LogManager(None)
        manager.log("loss", 1.0)
        assert manager.values("loss") == [1.0]

    def test_existing_log_truncated_on_open(self, tmp_path):
        path = tmp_path / "record.log"
        path.write_text('{"name": "stale", "value": 1}\n')
        LogManager(path)
        assert read_log(path) == []

    def test_read_log_missing_file_returns_empty(self, tmp_path):
        assert read_log(tmp_path / "absent.log") == []


class TestMergeLogs:
    def test_merge_orders_by_iteration_then_sequence(self):
        worker0 = [LogRecord("loss", 0.1, iteration=0, sequence=0),
                   LogRecord("loss", 0.2, iteration=1, sequence=1)]
        worker1 = [LogRecord("loss", 0.3, iteration=2, sequence=0),
                   LogRecord("loss", 0.4, iteration=3, sequence=1)]
        merged = merge_logs([worker1, worker0])
        assert [record.value for record in merged] == [0.1, 0.2, 0.3, 0.4]

    def test_merge_places_none_iteration_first(self):
        records = [LogRecord("setup", 1, iteration=None, sequence=0),
                   LogRecord("loss", 0.5, iteration=0, sequence=1)]
        merged = merge_logs([records])
        assert merged[0].name == "setup"

    def test_record_json_roundtrip(self):
        record = LogRecord("loss", 0.5, iteration=2, sequence=7)
        assert LogRecord.from_json(record.to_json()) == record
