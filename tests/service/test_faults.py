"""Fault battery: clients and daemons dying at the worst possible time.

Two failure domains, each exercised with *real* OS processes:

* **client death** — a client SIGKILLed mid-stream must not leak
  anything in the daemon: its admission slot is released, the shared
  execution runs to completion (the memo write-back still lands), the
  dedup registry drains, and subsequent queries answer from the memo
  with zero new replay jobs;
* **daemon death** — a SIGTERMed ``python -m repro.serve`` daemon must
  drain gracefully: the in-flight query finishes and streams its full
  answer, new requests are refused with a typed ``SHUTTING_DOWN``, and
  the process exits 0 having printed ``drained=clean``.
"""

from __future__ import annotations

import json
import signal
import threading
import time

import pytest

import repro
from repro.exceptions import ServiceError
from faultutils import kill_process, start_client_process, wait_for_file
from serviceutils import (SlowRunner, probe_for, record_run,
                          serve_daemon, start_service, wait_until)

pytestmark = pytest.mark.service


def test_sigkilled_client_leaks_no_slots_or_locks(flor_config, tmp_path):
    """SIGKILL a client mid-stream; the daemon must stay fully usable."""
    record_run(flor_config, iterations=8)
    probe = probe_for(iterations=8)
    with start_service(flor_config, workers=1) as service:
        # Slow spans so the kill lands while later spans are still
        # queued/running — genuinely mid-stream, not post-completion.
        service.pool._runner = SlowRunner(delay=0.75,
                                          delegate=service.pool._runner)

        streaming = tmp_path / "streaming"
        victim = start_client_process(
            service.address, "victim",
            {"values": ["state"], "source": probe, "memoize": True},
            streaming_path=streaming)
        assert wait_for_file(streaming, timeout=60.0), (
            "client never received a first batch — cannot kill mid-stream")
        kill_process(victim)

        # The connection thread notices the dead socket and releases its
        # admission slot; the orphaned execution still runs to the end
        # (its memo write-back is the whole point of not cancelling it)
        # and then deregisters.
        assert wait_until(lambda: service._admitted == 0, timeout=30.0), (
            "admission slot leaked after client SIGKILL")
        assert wait_until(lambda: service.pool.pending() == 0,
                          timeout=60.0), (
            "replay jobs stuck after client SIGKILL")
        assert wait_until(lambda: not service._executions, timeout=30.0), (
            "dedup registry leaked the orphaned execution")
        jobs_after_kill = len(service.pool.ledger())
        assert jobs_after_kill >= 1

        # The daemon is fully usable: the same query now answers from the
        # memo the orphaned execution wrote back — zero new replay jobs,
        # so no pool slot and no memo lock was left behind.
        client = repro.connect(service.address, client_id="survivor")
        assert client.ping()["status"] == "ok"
        result = client.query(["state"], source=probe, memoize=True)
        assert len(result.rows) == 8
        assert result.stats.resolved_memo == 8
        assert result.stats.replay_job_count == 0
        assert len(service.pool.ledger()) == jobs_after_kill


def test_two_kills_in_a_row_still_leave_a_working_daemon(flor_config,
                                                         tmp_path):
    """Slot accounting survives repeated client deaths (no slow creep)."""
    record_run(flor_config, iterations=6)
    probe = probe_for(iterations=6)
    with start_service(flor_config, workers=1, queue_size=2) as service:
        service.pool._runner = SlowRunner(delay=0.6,
                                          delegate=service.pool._runner)
        for round_index in range(2):
            streaming = tmp_path / f"streaming-{round_index}"
            victim = start_client_process(
                service.address, f"victim-{round_index}",
                {"values": ["state"], "source": probe, "memoize": False,
                 "iterations": [round_index]},
                streaming_path=streaming)
            assert wait_for_file(streaming, timeout=60.0)
            kill_process(victim)
            assert wait_until(lambda: service._admitted == 0,
                              timeout=30.0), (
                f"admission slot leaked on kill round {round_index}")
        # With queue_size=2, two leaked slots would make this third
        # query impossible to admit.
        result = repro.connect(service.address, client_id="after").query(
            ["state"], iterations=[5], source=probe, memoize=False)
        assert result.stats.requested_cells == 1


def test_daemon_sigterm_drains_then_refuses_then_exits_clean(flor_config,
                                                             tmp_path):
    """SIGTERM mid-query: finish the in-flight work, refuse new work."""
    # Per-iteration sleep makes the replay long enough that the drain
    # window (SIGTERM .. in-flight completion) is seconds wide.
    record_run(flor_config, iterations=10, iter_seconds=0.25)
    probe = probe_for(iterations=10, iter_seconds=0.25)
    trace_out = tmp_path / "service-trace.json"
    daemon = serve_daemon(flor_config.home, trace_out)
    try:
        assert daemon.stdout is not None
        banner = daemon.stdout.readline().strip()
        assert banner.startswith("listening "), (
            f"daemon never announced its address: {banner!r} "
            f"(stderr: {daemon.stderr.read() if daemon.stderr else ''})")
        address = banner.split(" ", 1)[1]

        in_flight: dict[str, object] = {}
        errors: list[BaseException] = []

        def issue():
            try:
                client = repro.connect(address, client_id="in-flight")
                in_flight["result"] = client.query(
                    ["state"], source=probe, memoize=False)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        worker = threading.Thread(target=issue)
        worker.start()
        status_client = repro.connect(address, client_id="status")
        assert wait_until(
            lambda: status_client.ping()["admitted"] >= 1,
            timeout=60.0), "query was never admitted"

        daemon.send_signal(signal.SIGTERM)
        assert wait_until(
            lambda: status_client.ping()["status"] == "draining",
            timeout=30.0), "daemon never entered draining"

        # New work is refused with the typed shutdown error while the
        # admitted query keeps running.
        refused = repro.connect(address, client_id="refused", retries=0)
        with pytest.raises(ServiceError) as excinfo:
            refused.query(["state"], iterations=[0], source=probe,
                          memoize=False)
        assert excinfo.value.code == "SHUTTING_DOWN"

        # The in-flight query finishes with its complete answer.
        worker.join(timeout=120.0)
        assert not errors, errors
        result = in_flight["result"]
        assert result.stats.requested_cells == 10
        assert len(result.rows) == 10

        stdout, stderr = daemon.communicate(timeout=60.0)
        assert daemon.returncode == 0, (
            f"daemon exit {daemon.returncode}: {stderr}")
        assert "drained=clean" in stdout

        # The flight-recorder artifact the CI smoke uploads is real and
        # carries the service spans.
        trace = json.loads(trace_out.read_text(encoding="utf-8"))
        names = {span.get("name") for span in trace["spans"]}
        assert "service.request" in names
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=30.0)


def test_daemon_sigint_with_no_work_exits_immediately_clean(flor_config,
                                                            tmp_path):
    """An idle daemon's drain is instant: exit 0, drained=clean."""
    record_run(flor_config, iterations=4)
    daemon = serve_daemon(flor_config.home, tmp_path / "trace.json")
    try:
        assert daemon.stdout is not None
        banner = daemon.stdout.readline().strip()
        assert banner.startswith("listening ")
        address = banner.split(" ", 1)[1]
        assert repro.connect(address).ping()["status"] == "ok"
        started = time.monotonic()
        daemon.send_signal(signal.SIGINT)
        stdout, _stderr = daemon.communicate(timeout=30.0)
        assert daemon.returncode == 0
        assert "drained=clean" in stdout
        assert time.monotonic() - started < 15.0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.communicate(timeout=30.0)
