"""Unit battery for the fair replay-job scheduler (no subprocesses).

Everything here drives :class:`FairReplayPool` with an injected stub
runner, so the scheduling properties — weighted round-robin interleaving,
no-starvation, the ledger's accounting, shutdown semantics — are asserted
at thread speed, isolated from real replay.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import ServiceError
from repro.replay.parallel import ReplayJobSpec
from repro.service import FairReplayPool
from serviceutils import SlowRunner, stub_result

pytestmark = pytest.mark.service


def _spec(run_id: str, iteration: int = 0) -> ReplayJobSpec:
    return ReplayJobSpec(run_id=run_id, instrumented_source="",
                         probed_blocks=(),
                         sample_iterations=(iteration,))


@pytest.fixture()
def pool(flor_config):
    pools: list[FairReplayPool] = []

    def make(workers: int = 1, runner=None, **kwargs) -> FairReplayPool:
        built = FairReplayPool(flor_config, workers=workers,
                               runner=runner or stub_result, **kwargs)
        pools.append(built)
        return built

    yield make
    for built in pools:
        built.close(drain=False, timeout=5.0)


def test_single_job_runs_and_returns_result(pool):
    scheduler = pool(workers=1)
    ticket = scheduler.submit("alice", _spec("run-a", 3))
    result = FairReplayPool.wait(ticket, timeout=10.0)
    assert result.succeeded
    assert result.iterations == [3]
    ledger = scheduler.ledger()
    assert len(ledger) == 1
    assert ledger[0].client == "alice"
    assert ledger[0].run_id == "run-a"
    assert ledger[0].iterations == (3,)


def test_round_robin_interleaves_tenants(pool):
    """A tenant's burst must not run back-to-back while others wait.

    One worker, slow jobs: tenant A enqueues 4 jobs while the first is
    still running, then tenant B enqueues 1.  Strict FIFO would run B
    last; round-robin must dispatch B's job right after A's in-flight
    one finishes (position 2 in the ledger, never position 5).
    """
    runner = SlowRunner(delay=0.15)
    scheduler = pool(workers=1, runner=runner)
    tickets = [scheduler.submit("a", _spec("run-a", index))
               for index in range(4)]
    time.sleep(0.05)  # let the first A job start on the single worker
    b_ticket = scheduler.submit("b", _spec("run-b"))
    FairReplayPool.wait(b_ticket, timeout=10.0)
    for ticket in tickets:
        FairReplayPool.wait(ticket, timeout=10.0)
    order = [entry.client for entry in scheduler.ledger()]
    assert order.index("b") <= 1, (
        f"tenant b starved behind tenant a's burst: dispatch order "
        f"{order}")


def test_weighted_tenant_gets_consecutive_dispatches(pool):
    """A weight-2 tenant may run two jobs per rotation visit."""
    runner = SlowRunner(delay=0.05)
    scheduler = pool(workers=1, runner=runner, weights={"heavy": 2})
    first = scheduler.submit("heavy", _spec("run-h", 0))
    time.sleep(0.02)  # first heavy job occupies the worker
    tickets = [scheduler.submit("heavy", _spec("run-h", index))
               for index in range(1, 5)]
    tickets += [scheduler.submit("light", _spec("run-l"))]
    for ticket in [first, *tickets]:
        FairReplayPool.wait(ticket, timeout=10.0)
    order = [entry.client for entry in scheduler.ledger()]
    # After the in-flight job, the heavy tenant's visit dispatches two in
    # a row before light's turn.
    assert order[1:4].count("heavy") >= 2
    assert "light" in order


def test_all_jobs_complete_under_load(pool):
    scheduler = pool(workers=4)
    tickets = [scheduler.submit(f"tenant-{index % 5}",
                                _spec(f"run-{index % 3}", index))
               for index in range(60)]
    results = [FairReplayPool.wait(ticket, timeout=30.0)
               for ticket in tickets]
    assert all(result.succeeded for result in results)
    assert len(scheduler.ledger()) == 60
    assert scheduler.pending() == 0


def test_queue_wait_is_recorded(pool):
    runner = SlowRunner(delay=0.1)
    scheduler = pool(workers=1, runner=runner)
    first = scheduler.submit("a", _spec("run-a", 0))
    second = scheduler.submit("a", _spec("run-a", 1))
    FairReplayPool.wait(first, timeout=10.0)
    FairReplayPool.wait(second, timeout=10.0)
    entries = scheduler.ledger()
    # The second job waited behind the first's 0.1s execution.
    assert entries[1].queue_wait >= 0.05


def test_runner_failure_surfaces_to_waiter(pool):
    def exploding(_spec):
        raise RuntimeError("replay worker exploded")

    scheduler = pool(workers=1, runner=exploding)
    ticket = scheduler.submit("a", _spec("run-a"))
    with pytest.raises(RuntimeError, match="exploded"):
        FairReplayPool.wait(ticket, timeout=10.0)
    # The failure is ledgered too: accounting survives errors.
    assert len(scheduler.ledger()) == 1


def test_submit_after_close_is_refused(pool):
    scheduler = pool(workers=1)
    scheduler.close(drain=True, timeout=5.0)
    with pytest.raises(ServiceError) as excinfo:
        scheduler.submit("a", _spec("run-a"))
    assert excinfo.value.code == "SHUTTING_DOWN"


def test_close_without_drain_fails_pending_tickets(pool):
    release = threading.Event()

    def blocking(spec):
        release.wait(10.0)
        return stub_result(spec)

    scheduler = pool(workers=1, runner=blocking)
    running = scheduler.submit("a", _spec("run-a", 0))
    queued = scheduler.submit("a", _spec("run-a", 1))
    time.sleep(0.05)
    closer = threading.Thread(
        target=lambda: scheduler.close(drain=False, timeout=10.0))
    closer.start()
    # The queued (never-dispatched) ticket is failed, not leaked.
    with pytest.raises(ServiceError) as excinfo:
        FairReplayPool.wait(queued, timeout=10.0)
    assert excinfo.value.code == "SHUTTING_DOWN"
    release.set()
    assert FairReplayPool.wait(running, timeout=10.0).succeeded
    closer.join(timeout=10.0)
    assert not closer.is_alive()


def test_close_with_drain_finishes_queued_work(pool):
    runner = SlowRunner(delay=0.05)
    scheduler = pool(workers=1, runner=runner)
    tickets = [scheduler.submit("a", _spec("run-a", index))
               for index in range(3)]
    scheduler.close(drain=True, timeout=10.0)
    assert all(FairReplayPool.wait(ticket, timeout=1.0).succeeded
               for ticket in tickets)
