"""Concurrency battery: the service under simultaneous multi-tenant load.

Each test stands up a real socket-serving daemon (in-process, so its
ledger is inspectable) and hits it with concurrent clients — threads for
volume, forked OS processes where the test needs genuinely independent
clients.  Asserted properties:

* **dedup** — identical concurrent queries coalesce onto one execution:
  the replay-job ledger shows exactly one set of jobs, every client gets
  the full identical result;
* **fairness** — a tenant's small query is not starved while another
  tenant's large query occupies the pool: its latency stays bounded by a
  few span-times, not the large query's whole runtime;
* **admission control** — a full queue answers a typed ``SERVICE_BUSY``
  with a positive ``retry_after``, never a hang, and the client's
  retry/backoff eventually lands the request.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.exceptions import ServiceBusy
from repro.replay.parallel import WorkerResult
from faultutils import start_client_process, wait_for_file
from serviceutils import (SlowRunner, probe_for, record_run,
                          start_service, stub_result, wait_until)

pytestmark = pytest.mark.service


def test_identical_concurrent_queries_coalesce(flor_config, tmp_path):
    """8 threads, one digest: the ledger must show ONE set of replay jobs."""
    record_run(flor_config, iterations=8)
    probe = probe_for(iterations=8)
    with start_service(flor_config, workers=2) as service:
        # Slow the (real) runner so every thread attaches while the
        # execution is still in flight.
        real = service.pool._runner
        service.pool._runner = SlowRunner(delay=0.3, delegate=real)

        results: dict[str, object] = {}
        errors: list[BaseException] = []

        def issue(tag: str):
            try:
                client = repro.connect(service.address, client_id=tag)
                results[tag] = client.query(["state"], source=probe,
                                            memoize=False)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=issue, args=(f"tenant-{i}",))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors

        # ONE deduped execution: every ledgered job belongs to the single
        # publishing tenant, and every waiter's stats report exactly that
        # one set of jobs (8 identical queries did NOT run 8 executions).
        ledger = service.pool.ledger()
        assert len({entry.client for entry in ledger}) == 1, (
            f"multiple executions ran: "
            f"{[(e.client, e.iterations) for e in ledger]}")
        covered = sorted(iteration for entry in ledger
                         for iteration in entry.iterations)
        assert covered == list(range(8)), covered
        answers = {tag: tuple((row.iteration, row.name, str(row.value))
                              for row in result.rows)
                   for tag, result in results.items()}
        assert len(results) == 8
        assert len(set(answers.values())) == 1
        # Every waiter got real stats, not an empty shell.
        for result in results.values():
            assert result.stats.requested_cells == 8
            assert result.stats.replay_job_count == len(ledger)


def test_distinct_queries_do_not_coalesce(flor_config):
    """Different iterations → different digests → separate executions."""
    record_run(flor_config, iterations=6)
    probe = probe_for(iterations=6)
    with start_service(flor_config, workers=2) as service:
        client = repro.connect(service.address, client_id="solo")
        first = client.query(["state"], iterations=[1], source=probe,
                             memoize=False)
        second = client.query(["state"], iterations=[2], source=probe,
                              memoize=False)
        assert first.stats.resolved_replay == 1
        assert second.stats.resolved_replay == 1
        assert len(service.pool.ledger()) == 2


def test_small_query_latency_bounded_under_large_query(flor_config):
    """Fairness: small queries finish while the large one still runs.

    One worker, stub-slowed jobs: the large tenant's query fans into 6
    spans of ~0.2s each; small tenants issue 1-span queries after the
    large one starts.  Round-robin means each small query waits for at
    most the in-flight span plus its own — well under the large query's
    total runtime.  Wall-clock p95 of the small queries is asserted
    against that bound.
    """
    record_run(flor_config, iterations=12, iter_seconds=0.02)
    probe = probe_for(iterations=12, iter_seconds=0.02)
    delay = 0.2
    with start_service(flor_config, workers=1) as service:
        real = service.pool._runner
        service.pool._runner = SlowRunner(delay=delay, delegate=real)

        large_done = threading.Event()
        large_stats = {}

        def large():
            client = repro.connect(service.address, client_id="large")
            result = client.query(["state"], source=probe,
                                  workers=6, memoize=False)
            large_stats["jobs"] = result.stats.replay_job_count
            large_done.set()

        large_thread = threading.Thread(target=large)
        large_thread.start()
        assert wait_until(lambda: service.pool.pending() >= 2,
                          timeout=30.0), "large query never queued spans"

        latencies = []
        for index in range(3):
            client = repro.connect(service.address,
                                   client_id=f"small-{index}")
            started = time.monotonic()
            result = client.query(["state"], iterations=[index],
                                  source=probe, memoize=False)
            latencies.append(time.monotonic() - started)
            assert result.stats.resolved_replay == 1
        small_p95 = sorted(latencies)[-1]

        large_thread.join(timeout=120.0)
        assert large_done.is_set()
        assert large_stats["jobs"] >= 4
        # Each small query rides round-robin behind at most the in-flight
        # span plus its own execution (plus scheduling noise) — nowhere
        # near the large query's >= 4-span serial runtime.
        assert small_p95 < 4 * delay + 1.0, (
            f"small-query p95 {small_p95:.2f}s suggests starvation "
            f"behind the large query")


def test_queue_full_returns_service_busy_not_a_hang(flor_config):
    """Admission control: overflow is a typed, hinted, immediate error."""
    record_run(flor_config, iterations=4)
    probe = probe_for(iterations=4)
    release = threading.Event()

    with start_service(flor_config, workers=1, queue_size=1) as service:
        real_runner = service.pool._runner

        def gated(spec) -> WorkerResult:
            release.wait(30.0)
            return real_runner(spec)

        service.pool._runner = gated

        occupier_done = threading.Event()

        def occupy():
            client = repro.connect(service.address, client_id="occupier")
            client.query(["state"], source=probe, memoize=False)
            occupier_done.set()

        occupier = threading.Thread(target=occupy)
        occupier.start()
        assert wait_until(
            lambda: service._admitted >= 1, timeout=30.0)

        # retries=0: the rejection must surface as ServiceBusy instantly.
        rejected = repro.connect(service.address, client_id="rejected",
                                 retries=0)
        started = time.monotonic()
        with pytest.raises(ServiceBusy) as excinfo:
            rejected.query(["state"], iterations=[0], source=probe)
        elapsed = time.monotonic() - started
        assert elapsed < 5.0, "SERVICE_BUSY took too long — that's a hang"
        assert excinfo.value.code == "SERVICE_BUSY"
        assert excinfo.value.retry_after > 0

        # A client WITH retry budget eventually lands once the queue
        # frees up.
        landed = {}

        def retry_client():
            client = repro.connect(service.address, client_id="patient",
                                   retries=8, backoff=0.1)
            landed["result"] = client.query(["state"], iterations=[1],
                                            source=probe, memoize=False)

        patient = threading.Thread(target=retry_client)
        patient.start()
        time.sleep(0.2)
        release.set()
        occupier.join(timeout=60.0)
        patient.join(timeout=60.0)
        assert occupier_done.is_set()
        assert landed["result"].stats.resolved_replay == 1


def test_real_client_processes_dedup_and_agree(flor_config, tmp_path):
    """K forked OS-process clients: same answer, one execution."""
    record_run(flor_config, iterations=8)
    probe = probe_for(iterations=8)
    with start_service(flor_config, workers=2) as service:
        real = service.pool._runner
        service.pool._runner = SlowRunner(delay=0.3, delegate=real)

        processes = []
        done_paths = []
        for index in range(3):
            streaming = tmp_path / f"stream-{index}"
            done = tmp_path / f"done-{index}"
            done_paths.append(done)
            processes.append(start_client_process(
                service.address, f"proc-{index}",
                {"values": ["state"], "source": probe, "memoize": False},
                streaming_path=streaming, done_path=done))
        for process in processes:
            process.join(timeout=120.0)
            assert process.exitcode == 0
        summaries = {path.read_text(encoding="utf-8")
                     for path in done_paths}
        assert len(summaries) == 1, summaries
        assert len({entry.client
                    for entry in service.pool.ledger()}) == 1
