"""End-to-end acceptance for the multi-tenant query service.

The ISSUE's acceptance scene, verbatim: a 2-worker pool serving 8
concurrent clients — 2 submitting the *identical* large query and 6
submitting small distinct ones — must show

* **dedup**: exactly one large-query execution in the replay-job ledger
  (the second large tenant rides along and still gets the full answer);
* **fairness**: every small query finishes before the large one does;
* **HTAP isolation**: a record session running while the daemon serves
  queries stays within 10% of the no-service record wall — the record
  path never goes through the daemon.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from faultutils import start_client_process, wait_for_file
from serviceutils import (SlowRunner, probe_for, record_run,
                          serve_daemon, start_service, wait_until)

pytestmark = pytest.mark.service

ITERATIONS = 12
ITER_SECONDS = 0.02


def test_two_workers_eight_tenants_dedup_and_fairness(flor_config):
    record_run(flor_config, iterations=ITERATIONS,
               iter_seconds=ITER_SECONDS)
    probe = probe_for(iterations=ITERATIONS, iter_seconds=ITER_SECONDS)
    with start_service(flor_config, workers=2) as service:
        service.pool._runner = SlowRunner(delay=0.3,
                                          delegate=service.pool._runner)

        finished: dict[str, float] = {}
        results: dict[str, object] = {}
        errors: list[BaseException] = []
        record_lock = threading.Lock()

        def issue(tag: str, **query_kwargs):
            try:
                client = repro.connect(service.address, client_id=tag)
                result = client.query(["state"], source=probe,
                                      memoize=False, **query_kwargs)
                with record_lock:
                    finished[tag] = time.monotonic()
                    results[tag] = result
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        # The two identical large queries go first; the small ones are
        # released once the large execution occupies the pool, so
        # fairness (not luck of arrival order) is what gets them through.
        large_threads = [
            threading.Thread(target=issue, args=(f"large-{index}",),
                             kwargs={"workers": 8})
            for index in range(2)]
        for thread in large_threads:
            thread.start()
        assert wait_until(lambda: service.pool.pending() >= 1,
                          timeout=60.0), "large query never queued spans"

        small_threads = [
            threading.Thread(target=issue, args=(f"small-{index}",),
                             kwargs={"iterations": [index]})
            for index in range(6)]
        for thread in small_threads:
            thread.start()
        for thread in large_threads + small_threads:
            thread.join(timeout=120.0)
        assert not errors, errors
        assert len(results) == 8

        # Dedup: exactly ONE large execution ran.  Its ledger entries all
        # carry the single submitting tenant, and together they replay
        # each iteration exactly once; the other large tenant produced no
        # jobs of its own yet got the identical full answer.
        ledger = service.pool.ledger()
        large_entries = [entry for entry in ledger
                         if entry.client.startswith("large-")]
        assert len({entry.client for entry in large_entries}) == 1, (
            f"both large tenants executed: "
            f"{[(e.client, e.iterations) for e in large_entries]}")
        covered = sorted(iteration for entry in large_entries
                         for iteration in entry.iterations)
        assert covered == list(range(ITERATIONS)), covered
        large_answers = {
            tag: tuple((row.iteration, str(row.value))
                       for row in results[tag].rows)
            for tag in ("large-0", "large-1")}
        assert large_answers["large-0"] == large_answers["large-1"]
        assert len(results["large-0"].rows) == ITERATIONS

        # Each small tenant ran its own single-span job...
        small_entries = [entry for entry in ledger
                         if entry.client.startswith("small-")]
        assert len({entry.client for entry in small_entries}) == 6
        for index in range(6):
            assert len(results[f"small-{index}"].rows) == 1

        # ...and fairness let every one of them finish before the large
        # query, despite the large query owning most of the queued spans.
        slowest_small = max(finished[f"small-{index}"]
                            for index in range(6))
        first_large = min(finished["large-0"], finished["large-1"])
        assert slowest_small < first_large, (
            f"small queries starved: slowest small at "
            f"{slowest_small:.2f}, first large at {first_large:.2f}")


def test_record_wall_within_ten_percent_of_no_service_baseline(
        flor_config, tmp_path):
    """Recording is HTAP-isolated: a busy daemon adds no record overhead."""
    # Two baseline record sessions (the first also seeds the run the
    # service clients will query); keep the better one as the reference.
    started = time.monotonic()
    record_run(flor_config, iterations=20, iter_seconds=0.03)
    first = time.monotonic() - started
    started = time.monotonic()
    record_run(flor_config, iterations=20, iter_seconds=0.03)
    second = time.monotonic() - started
    baseline = min(first, second)

    probe = probe_for(iterations=20, iter_seconds=0.03)
    daemon = serve_daemon(flor_config.home, tmp_path / "trace.json")
    try:
        assert daemon.stdout is not None
        banner = daemon.stdout.readline().strip()
        assert banner.startswith("listening ")
        address = banner.split(" ", 1)[1]

        # A real client process keeps the daemon's replay pool busy
        # (GIL-isolated from the recording below) through the window.
        streaming = tmp_path / "streaming"
        busy = start_client_process(
            address, "busy",
            {"values": ["state"], "source": probe, "memoize": False},
            streaming_path=streaming, done_path=tmp_path / "done")
        assert wait_for_file(streaming, timeout=120.0)

        started = time.monotonic()
        record_run(flor_config, iterations=20, iter_seconds=0.03)
        with_service = time.monotonic() - started

        busy.join(timeout=120.0)
        assert busy.exitcode == 0
    finally:
        daemon.terminate()
        daemon.communicate(timeout=60.0)

    # 10% plus a small absolute term so scheduler noise on a loaded CI
    # box cannot flake a passing implementation.
    assert with_service <= baseline * 1.10 + 0.25, (
        f"record session slowed by the service: baseline {baseline:.2f}s "
        f"vs {with_service:.2f}s with the daemon serving")
