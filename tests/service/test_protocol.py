"""Property battery for the service wire codec and the dedup digest.

Two contracts are load-bearing enough for property-based testing:

* the **wire codec** — every JSON-expressible request/response must
  round-trip through the length-prefixed framing byte-identically in
  meaning, including the slice encoding the query ``iterations``
  parameter needs (JSON has no slice);
* the **dedup-key digest** — the service coalesces concurrent queries
  that share a digest, so the digest must be *exactly* as coarse as plan
  equality: equal for any reordering of names/runs (sets, not
  sequences), different the moment any normalized-plan component
  (name set, run set, per-run iterations, per-run probe-source digest)
  differs.  Too-coarse digests serve one tenant another tenant's answer;
  too-fine ones silently disable dedup.
"""

from __future__ import annotations

import socket
import threading
from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.query.api import PreparedQuery
from repro.query.dataframe import QueryRow
from repro.service.protocol import (decode_iterations, decode_rows,
                                    encode_iterations, encode_rows,
                                    read_frame, write_frame)

pytestmark = pytest.mark.service

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
json_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40))

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4)),
    max_leaves=20)

frames = st.dictionaries(st.text(min_size=1, max_size=16), json_values,
                         max_size=6)

iteration_args = st.one_of(
    st.none(),
    st.integers(min_value=0, max_value=10_000),
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=20),
    st.builds(slice,
              st.one_of(st.none(),
                        st.integers(min_value=-100, max_value=100)),
              st.one_of(st.none(),
                        st.integers(min_value=-100, max_value=100)),
              st.one_of(st.none(),
                        st.integers(min_value=1, max_value=10))))

rows = st.lists(
    st.builds(QueryRow,
              run_id=st.text(min_size=1, max_size=12),
              iteration=st.integers(min_value=0, max_value=10_000),
              name=st.text(min_size=1, max_size=12),
              value=json_values,
              source=st.sampled_from(["logged", "memo", "analysis",
                                      "replay"])),
    max_size=10)

#: Abstract "normalized plan" for digest tests: {run_id: (iterations,
#: source digest)} plus a name set.
plan_specs = st.tuples(
    st.frozensets(st.text(min_size=1, max_size=8), min_size=1,
                  max_size=4),
    st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.tuples(st.frozensets(st.integers(min_value=0, max_value=50),
                                min_size=1, max_size=8),
                  st.sampled_from(["digest-a", "digest-b", "digest-c"])),
        min_size=1, max_size=4))


def _prepared(names, runs, order=None) -> PreparedQuery:
    """A minimal PreparedQuery carrying only what dedup_digest reads."""
    run_ids = order if order is not None else sorted(runs)
    run_plans = [SimpleNamespace(run_id=run_id,
                                 wanted_iterations=tuple(runs[run_id][0]))
                 for run_id in run_ids]
    memos = {run_id: SimpleNamespace(digest=runs[run_id][1])
             for run_id in runs}
    return PreparedQuery(config=None, names=tuple(names), entries=[],
                         plan=SimpleNamespace(runs=run_plans),
                         memos=memos)


# --------------------------------------------------------------------------- #
# Framing round-trip
# --------------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(payload=frames)
def test_frame_round_trips_over_a_real_socket(payload):
    left, right = socket.socketpair()
    try:
        # A thread writes so large frames cannot deadlock on the
        # socketpair buffer.
        writer = threading.Thread(target=write_frame,
                                  args=(left, payload))
        writer.start()
        received = read_frame(right)
        writer.join(timeout=10.0)
        assert received == payload
    finally:
        left.close()
        right.close()


@settings(max_examples=60, deadline=None)
@given(payloads=st.lists(frames, min_size=1, max_size=5))
def test_back_to_back_frames_preserve_boundaries(payloads):
    left, right = socket.socketpair()
    try:
        def write_all():
            for payload in payloads:
                write_frame(left, payload)
            left.close()

        writer = threading.Thread(target=write_all)
        writer.start()
        received = []
        while True:
            frame = read_frame(right)
            if frame is None:
                break
            received.append(frame)
        writer.join(timeout=10.0)
        assert received == payloads
    finally:
        right.close()


@settings(max_examples=100, deadline=None)
@given(iterations=iteration_args)
def test_iterations_codec_round_trips(iterations):
    decoded = decode_iterations(encode_iterations(iterations))
    if isinstance(iterations, slice):
        assert decoded == iterations
    elif isinstance(iterations, list):
        assert decoded == iterations
    else:
        assert decoded == iterations


@settings(max_examples=100, deadline=None)
@given(batch=rows)
def test_row_codec_round_trips(batch):
    assert decode_rows(encode_rows(batch)) == batch


# --------------------------------------------------------------------------- #
# Dedup-digest properties
# --------------------------------------------------------------------------- #
@settings(max_examples=100, deadline=None)
@given(spec=plan_specs, seed=st.randoms(use_true_random=False))
def test_digest_ignores_name_and_run_order(spec, seed):
    """Reordering names or runs must not change the dedup key."""
    names, runs = spec
    shuffled_names = list(names)
    seed.shuffle(shuffled_names)
    shuffled_runs = list(runs)
    seed.shuffle(shuffled_runs)
    base = _prepared(sorted(names), runs).dedup_digest()
    shuffled = _prepared(shuffled_names, runs,
                         order=shuffled_runs).dedup_digest()
    assert base == shuffled


@settings(max_examples=100, deadline=None)
@given(spec=plan_specs)
def test_digest_changes_when_any_plan_component_changes(spec):
    """Two requests dedup iff their normalized plans are equal."""
    names, runs = spec
    base = _prepared(names, runs).dedup_digest()

    # Different name set.
    assert _prepared(set(names) | {"@extra@"}, runs).dedup_digest() != base

    # Different run set.
    grown = dict(runs)
    grown["@extra-run@"] = (frozenset({0}), "digest-a")
    assert _prepared(names, grown).dedup_digest() != base

    # Different iterations on one run.
    any_run = next(iter(runs))
    changed_iters = dict(runs)
    iters, digest = changed_iters[any_run]
    changed_iters[any_run] = (iters | {99_999}, digest)
    assert _prepared(names, changed_iters).dedup_digest() != base

    # Different probe-source digest on one run.
    changed_digest = dict(runs)
    changed_digest[any_run] = (iters, "digest-other")
    assert _prepared(names, changed_digest).dedup_digest() != base


@settings(max_examples=100, deadline=None)
@given(spec=plan_specs)
def test_digest_is_deterministic(spec):
    names, runs = spec
    assert (_prepared(names, runs).dedup_digest()
            == _prepared(names, runs).dedup_digest())
