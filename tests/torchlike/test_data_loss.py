"""Tests for datasets, data loading, losses and state serialization helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import torchlike as tl
from repro.exceptions import SerializationError


class TestTensorDataset:
    def test_indexing_returns_field_tuple(self):
        ds = tl.TensorDataset(np.arange(10), np.arange(10) * 2)
        x, y = ds[3]
        assert x == 3 and y == 6
        assert len(ds) == 10

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            tl.TensorDataset(np.arange(5), np.arange(6))

    def test_empty_arguments_raise(self):
        with pytest.raises(ValueError):
            tl.TensorDataset()

    def test_accepts_tensors(self):
        ds = tl.TensorDataset(tl.Tensor(np.ones((4, 2))), np.zeros(4))
        assert ds[0][0].shape == (2,)


class TestDataLoader:
    def test_batch_shapes_and_count(self):
        ds = tl.TensorDataset(np.zeros((10, 3)), np.zeros(10))
        loader = tl.DataLoader(ds, batch_size=4)
        batches = list(loader)
        assert len(batches) == 3
        assert batches[0][0].shape == (4, 3)
        assert batches[-1][0].shape == (2, 3)

    def test_drop_last(self):
        ds = tl.TensorDataset(np.zeros((10, 3)), np.zeros(10))
        loader = tl.DataLoader(ds, batch_size=4, drop_last=True)
        assert len(list(loader)) == 2
        assert len(loader) == 2

    def test_len_without_drop_last(self):
        ds = tl.TensorDataset(np.zeros((10, 3)), np.zeros(10))
        assert len(tl.DataLoader(ds, batch_size=4)) == 3

    def test_shuffle_is_deterministic_given_seed_and_epoch(self):
        ds = tl.TensorDataset(np.arange(20), np.arange(20))
        loader_a = tl.DataLoader(ds, batch_size=5, shuffle=True, seed=7)
        loader_b = tl.DataLoader(ds, batch_size=5, shuffle=True, seed=7)
        order_a = np.concatenate([x for x, _ in loader_a])
        order_b = np.concatenate([x for x, _ in loader_b])
        np.testing.assert_array_equal(order_a, order_b)

    def test_set_epoch_changes_order(self):
        ds = tl.TensorDataset(np.arange(20), np.arange(20))
        loader = tl.DataLoader(ds, batch_size=5, shuffle=True, seed=7)
        first = np.concatenate([x for x, _ in loader])
        loader.set_epoch(1)
        second = np.concatenate([x for x, _ in loader])
        assert not np.array_equal(first, second)
        assert sorted(first) == sorted(second)

    def test_invalid_batch_size(self):
        ds = tl.TensorDataset(np.arange(4))
        with pytest.raises(ValueError):
            tl.DataLoader(ds, batch_size=0)

    @given(st.integers(1, 40), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_every_sample_appears_exactly_once(self, n, batch_size):
        ds = tl.TensorDataset(np.arange(n), np.arange(n))
        loader = tl.DataLoader(ds, batch_size=batch_size, shuffle=True, seed=0)
        seen = np.concatenate([x for x, _ in loader])
        assert sorted(seen.tolist()) == list(range(n))


class TestRandomSplit:
    def test_split_sizes_and_disjointness(self):
        ds = tl.TensorDataset(np.arange(30), np.arange(30))
        train, test = tl.random_split(ds, [20, 10], seed=1)
        assert len(train) == 20 and len(test) == 10
        train_values = {train[i][0] for i in range(len(train))}
        test_values = {test[i][0] for i in range(len(test))}
        assert train_values.isdisjoint(test_values)
        assert len(train_values | test_values) == 30

    def test_bad_lengths_raise(self):
        ds = tl.TensorDataset(np.arange(10))
        with pytest.raises(ValueError):
            tl.random_split(ds, [3, 3])


class TestLosses:
    def test_cross_entropy_uniform_logits(self):
        logits = tl.Tensor(np.zeros((4, 3), dtype=np.float32))
        loss = tl.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3), rel=1e-5)

    def test_cross_entropy_confident_correct_is_small(self):
        logits = np.full((2, 3), -10.0, dtype=np.float32)
        logits[0, 1] = 10.0
        logits[1, 2] = 10.0
        loss = tl.cross_entropy(tl.Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-4

    def test_cross_entropy_3d_sequence_logits(self):
        logits = tl.Tensor(np.zeros((2, 5, 4), dtype=np.float32))
        loss = tl.cross_entropy(logits, np.zeros((2, 5), dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(4), rel=1e-5)

    def test_cross_entropy_gradient_shape(self):
        logits = tl.Tensor(np.random.default_rng(0).standard_normal(
            (4, 3)).astype(np.float32), requires_grad=True)
        tl.cross_entropy(logits, np.array([0, 1, 2, 0])).backward()
        assert logits.grad.shape == (4, 3)
        # Gradient rows sum to ~0 (softmax minus one-hot).
        np.testing.assert_allclose(logits.grad.sum(axis=1), np.zeros(4), atol=1e-6)

    def test_nll_loss_matches_cross_entropy(self):
        rng = np.random.default_rng(0)
        logits = tl.Tensor(rng.standard_normal((5, 4)).astype(np.float32))
        targets = np.array([0, 1, 2, 3, 0])
        ce = tl.cross_entropy(logits, targets).item()
        nll = tl.nll_loss(logits.log_softmax(), targets).item()
        assert ce == pytest.approx(nll, rel=1e-5)

    def test_mse_and_l1(self):
        prediction = tl.Tensor(np.array([1.0, 2.0], dtype=np.float32))
        target = np.array([0.0, 4.0], dtype=np.float32)
        assert tl.mse_loss(prediction, target).item() == pytest.approx(2.5)
        assert tl.l1_loss(prediction, target).item() == pytest.approx(1.5)

    def test_loss_modules_wrap_functions(self):
        logits = tl.Tensor(np.zeros((2, 2), dtype=np.float32))
        targets = np.array([0, 1])
        assert tl.CrossEntropyLoss()(logits, targets).item() == pytest.approx(
            tl.cross_entropy(logits, targets).item())
        assert tl.MSELoss()(logits, np.zeros((2, 2))).item() == pytest.approx(0.0)
        assert tl.L1Loss()(logits, np.zeros((2, 2))).item() == pytest.approx(0.0)
        assert tl.NLLLoss()(logits.log_softmax(), targets).item() > 0


class TestSerializationHelpers:
    def test_save_and_load_roundtrip(self, tmp_path):
        payload = {"weights": np.arange(4, dtype=np.float32)}
        nbytes = tl.save(payload, tmp_path / "model.pkl")
        assert nbytes > 0
        restored = tl.load(tmp_path / "model.pkl")
        np.testing.assert_allclose(restored["weights"], payload["weights"])

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            tl.load(tmp_path / "missing.pkl")

    def test_state_nbytes_counts_arrays(self):
        state = {"a": np.zeros(10, dtype=np.float32),
                 "nested": {"b": np.zeros(5, dtype=np.float32)},
                 "scalar": 3}
        assert tl.state_nbytes(state) >= 10 * 4 + 5 * 4

    def test_snapshot_and_restore_training_state(self):
        rng = np.random.default_rng(0)
        model = tl.Linear(3, 2, rng=rng)
        optimizer = tl.SGD(model.parameters(), lr=0.5, momentum=0.9)
        scheduler = tl.StepLR(optimizer, step_size=1, gamma=0.1)
        snapshot = tl.snapshot_training_state(model, optimizer, scheduler,
                                              extra={"epoch": 3})

        # Mutate everything, then restore.
        model.weight.data[...] = 0.0
        optimizer.lr = 123.0
        scheduler.last_epoch = 99
        extra = tl.restore_training_state(snapshot, model, optimizer, scheduler)
        assert extra == {"epoch": 3}
        assert np.abs(model.weight.data).sum() > 0
        assert optimizer.lr == pytest.approx(0.5)
        assert scheduler.last_epoch == 0
