"""Unit and property-based tests for the autograd tensor engine."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import torchlike as tl
from repro.torchlike.tensor import Tensor, is_grad_enabled, no_grad


def numerical_gradient(func, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = func(x.copy().reshape(x.shape))
        flat[index] = original - eps
        lower = func(x.copy().reshape(x.shape))
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


class TestTensorBasics:
    def test_construction_casts_to_float32(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float32
        assert t.shape == (3,)

    def test_integer_data_preserved(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int64))
        assert t.dtype == np.int64

    def test_item_and_float(self):
        t = Tensor(2.5)
        assert t.item() == pytest.approx(2.5)
        assert float(t) == pytest.approx(2.5)
        assert int(Tensor(3.0)) == 3

    def test_detach_shares_data_but_drops_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_clone_copies_data(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        c = t.clone()
        c.data[0] = 99.0
        assert t.data[0] == pytest.approx(1.0)

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))

    def test_pickle_drops_autograd_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).sum()
        restored = pickle.loads(pickle.dumps(b))
        assert restored._backward is None
        assert restored._parents == ()
        np.testing.assert_allclose(restored.data, b.data)

    def test_backward_on_non_scalar_requires_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_without_requires_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestNoGrad:
    def test_no_grad_suspends_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 3.0
        assert not b.requires_grad
        assert is_grad_enabled()

    def test_no_grad_nesting_restores_state(self):
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()


class TestArithmeticGradients:
    def test_add_and_mul_gradients(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        b = Tensor([4.0, 5.0, 6.0], requires_grad=True)
        ((a + b) * a).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + b.data, rtol=1e-5)
        np.testing.assert_allclose(b.grad, a.data, rtol=1e-5)

    def test_division_gradient(self):
        a = Tensor([2.0, 4.0], requires_grad=True)
        b = Tensor([1.0, 2.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.data, rtol=1e-5)
        np.testing.assert_allclose(b.grad, -a.data / b.data ** 2, rtol=1e-5)

    def test_pow_gradient(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a ** 3).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * a.data ** 2, rtol=1e-5)

    def test_broadcast_gradient_sums_over_broadcast_axes(self):
        a = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((4,), dtype=np.float32), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, np.full(4, 3.0), rtol=1e-5)

    def test_scalar_broadcasting(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (3.0 * a + 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0, 3.0])

    def test_rsub_and_rdiv(self):
        a = Tensor([2.0, 4.0])
        np.testing.assert_allclose((10.0 - a).data, [8.0, 6.0])
        np.testing.assert_allclose((8.0 / a).data, [4.0, 2.0])

    def test_gradient_accumulates_across_backward_calls(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])
        a.zero_grad()
        assert a.grad is None


class TestMatmulGradients:
    def test_matmul_2d(self):
        a = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3), requires_grad=True)
        b = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 4)) @ b.data.T, rtol=1e-5)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((2, 4)), rtol=1e-5)

    def test_matmul_matches_numerical_gradient(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((3, 4)).astype(np.float32)
        w = rng.standard_normal((4, 2)).astype(np.float32)

        def forward(values):
            return float((values @ w).sum())

        a = Tensor(x, requires_grad=True)
        (a @ Tensor(w)).sum().backward()
        numeric = numerical_gradient(forward, x.astype(np.float64))
        np.testing.assert_allclose(a.grad, numeric, rtol=1e-2, atol=1e-2)

    def test_batched_matmul(self):
        a = Tensor(np.ones((2, 3, 4), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((2, 4, 5), dtype=np.float32), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)


class TestUnaryAndReduction:
    @pytest.mark.parametrize("method, derivative", [
        ("exp", lambda x: np.exp(x)),
        ("tanh", lambda x: 1 - np.tanh(x) ** 2),
        ("sigmoid", lambda x: (1 / (1 + np.exp(-x))) * (1 - 1 / (1 + np.exp(-x)))),
        ("relu", lambda x: (x > 0).astype(np.float32)),
        ("abs", lambda x: np.sign(x)),
    ])
    def test_unary_gradients(self, method, derivative):
        x = np.array([-1.5, -0.2, 0.3, 2.0], dtype=np.float32)
        t = Tensor(x, requires_grad=True)
        getattr(t, method)().sum().backward()
        np.testing.assert_allclose(t.grad, derivative(x), rtol=1e-4, atol=1e-6)

    def test_log_and_sqrt_gradients(self):
        x = np.array([0.5, 1.0, 4.0], dtype=np.float32)
        t = Tensor(x, requires_grad=True)
        t.log().sum().backward()
        np.testing.assert_allclose(t.grad, 1 / x, rtol=1e-5)
        t2 = Tensor(x, requires_grad=True)
        t2.sqrt().sum().backward()
        np.testing.assert_allclose(t2.grad, 0.5 / np.sqrt(x), rtol=1e-5)

    def test_clip_gradient_masks_out_of_range(self):
        t = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_sum_axis_and_keepdims(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 3)))

    def test_mean_gradient(self):
        t = Tensor(np.ones((4,), dtype=np.float32), requires_grad=True)
        t.mean().backward()
        np.testing.assert_allclose(t.grad, np.full(4, 0.25))

    def test_max_gradient_flows_to_argmax(self):
        t = Tensor([1.0, 5.0, 3.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_min_matches_numpy(self):
        t = Tensor([[1.0, -2.0], [0.5, 7.0]])
        assert t.min().item() == pytest.approx(-2.0)

    def test_var_matches_numpy(self):
        x = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        assert Tensor(x).var().item() == pytest.approx(np.var(x), rel=1e-5)

    def test_norm(self):
        assert Tensor([3.0, 4.0]).norm().item() == pytest.approx(5.0)

    def test_argmax_argmin(self):
        t = Tensor([[1.0, 9.0], [4.0, 2.0]])
        np.testing.assert_array_equal(t.argmax(axis=1).data, [1, 0])
        np.testing.assert_array_equal(t.argmin(axis=1).data, [0, 1])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        t = Tensor(np.arange(6, dtype=np.float32), requires_grad=True)
        t.reshape(2, 3).sum().backward()
        assert t.grad.shape == (6,)

    def test_transpose_gradient(self):
        t = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        out = t.transpose()
        assert out.shape == (3, 2)
        out.sum().backward()
        assert t.grad.shape == (2, 3)

    def test_transpose_with_axes_and_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.transpose(0, 2, 1).shape == (2, 4, 3)
        assert t.swapaxes(0, 2).shape == (4, 3, 2)

    def test_getitem_gradient_scatter(self):
        t = Tensor(np.arange(5, dtype=np.float32), requires_grad=True)
        t[np.array([0, 2])].sum().backward()
        np.testing.assert_allclose(t.grad, [1, 0, 1, 0, 0])

    def test_flatten_and_unsqueeze_squeeze(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.flatten(start_dim=1).shape == (2, 12)
        assert t.unsqueeze(0).shape == (1, 2, 3, 4)
        assert Tensor(np.zeros((1, 3), dtype=np.float32)).squeeze(0).shape == (3,)

    def test_softmax_sums_to_one(self):
        t = Tensor(np.random.default_rng(0).standard_normal((4, 5)).astype(np.float32))
        np.testing.assert_allclose(t.softmax(axis=1).data.sum(axis=1),
                                   np.ones(4), rtol=1e-5)

    def test_log_softmax_is_log_of_softmax(self):
        t = Tensor(np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32))
        np.testing.assert_allclose(t.log_softmax().data,
                                   np.log(t.softmax().data), rtol=1e-4, atol=1e-5)


class TestFactoriesAndCombinators:
    def test_factories(self):
        assert tl.zeros(2, 3).shape == (2, 3)
        assert tl.ones(4).data.sum() == pytest.approx(4.0)
        assert tl.full((2, 2), 7.0).data[0, 0] == pytest.approx(7.0)
        assert tl.arange(5).shape == (5,)
        assert tl.randn(3, 2, rng=np.random.default_rng(0)).shape == (3, 2)
        assert tl.rand(3, rng=np.random.default_rng(0)).shape == (3,)

    def test_stack_and_cat_gradients(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        tl.stack([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        a.zero_grad(), b.zero_grad()
        tl.cat([a, b]).sum().backward()
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_comparison_operators_return_masks(self):
        t = Tensor([1.0, 2.0, 3.0])
        np.testing.assert_array_equal((t > 1.5).data, [False, True, True])
        np.testing.assert_array_equal((t <= 2.0).data, [True, True, False])
        np.testing.assert_array_equal((t == 2.0).data, [False, True, False])


class TestPropertyBased:
    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_sum_gradient_is_ones(self, values):
        t = Tensor(np.array(values, dtype=np.float32), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(len(values)), rtol=1e-6)

    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=12),
           st.floats(-2, 2), st.floats(-2, 2))
    @settings(max_examples=50, deadline=None)
    def test_linearity_of_gradients(self, values, alpha, beta):
        x = np.array(values, dtype=np.float32)
        a = Tensor(x, requires_grad=True)
        (alpha * a + beta * a).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(len(values), alpha + beta),
                                   rtol=1e-4, atol=1e-4)

    @given(st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_reshape_preserves_sum(self, rows, cols):
        data = np.arange(rows * cols, dtype=np.float32)
        t = Tensor(data)
        assert t.reshape(rows, cols).sum().item() == pytest.approx(data.sum())
