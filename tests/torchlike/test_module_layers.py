"""Tests for Module/Parameter discovery, state dicts, and the layer zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro import torchlike as tl


class SmallNet(tl.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = tl.Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = tl.Linear(8, 2, rng=np.random.default_rng(1))
        self.dropout = tl.Dropout(0.5, rng=np.random.default_rng(2))

    def forward(self, x):
        return self.fc2(self.dropout(self.fc1(x).relu()))


class TestModuleProtocol:
    def test_named_parameters_discovers_nested(self):
        net = SmallNet()
        names = dict(net.named_parameters())
        assert set(names) == {"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}

    def test_num_parameters(self):
        net = SmallNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_propagates(self):
        net = SmallNet()
        net.eval()
        assert not net.dropout.training
        net.train()
        assert net.dropout.training

    def test_zero_grad_clears_gradients(self):
        net = SmallNet()
        out = net(tl.Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net = SmallNet()
        other = SmallNet()
        other.load_state_dict(net.state_dict())
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            np.testing.assert_allclose(a.data, b.data)

    def test_state_dict_is_a_copy(self):
        net = SmallNet()
        state = net.state_dict()
        state["fc1.weight"][...] = 0.0
        assert np.abs(net.fc1.weight.data).sum() > 0

    def test_load_state_dict_shape_mismatch_raises(self):
        net = SmallNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((3, 3), dtype=np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            net.load_state_dict(state)

    def test_load_state_dict_strict_flags_missing_keys(self):
        net = SmallNet()
        state = net.state_dict()
        del state["fc2.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)
        net.load_state_dict(state, strict=False)  # tolerated when not strict

    def test_buffers_appear_in_state_dict(self):
        bn = tl.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_named_modules_enumerates_tree(self):
        net = SmallNet()
        names = [name for name, _ in net.named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            tl.Module()(1)


class TestLayers:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_linear_shapes(self):
        layer = tl.Linear(6, 3, rng=self.rng)
        out = layer(tl.Tensor(np.ones((5, 6), dtype=np.float32)))
        assert out.shape == (5, 3)

    def test_linear_without_bias(self):
        layer = tl.Linear(4, 2, bias=False, rng=self.rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_conv_pool_stack_shapes(self):
        stack = tl.Sequential(
            tl.Conv2d(3, 8, 3, padding=1, rng=self.rng), tl.ReLU(),
            tl.MaxPool2d(2), tl.Conv2d(8, 4, 3, padding=1, rng=self.rng),
            tl.AvgPool2d(2), tl.Flatten())
        out = stack(tl.Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (2, 4 * 2 * 2)

    def test_global_avg_pool(self):
        out = tl.GlobalAvgPool2d()(tl.Tensor(np.ones((2, 5, 4, 4),
                                                     dtype=np.float32)))
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.data, np.ones((2, 5)))

    def test_batchnorm_layer_updates_buffers_only_in_training(self):
        bn = tl.BatchNorm2d(2)
        x = tl.Tensor(np.random.default_rng(0).normal(
            3.0, 1.0, size=(4, 2, 3, 3)).astype(np.float32))
        bn.train()
        bn(x)
        mean_after_train = bn.running_mean.copy()
        bn.eval()
        bn(x)
        np.testing.assert_allclose(bn.running_mean, mean_after_train)

    def test_layernorm_layer(self):
        ln = tl.LayerNorm(8)
        out = ln(tl.Tensor(np.random.default_rng(0).standard_normal(
            (3, 8)).astype(np.float32)))
        assert out.shape == (3, 8)

    def test_dropout_layer_respects_eval(self):
        layer = tl.Dropout(0.9, rng=self.rng)
        layer.eval()
        x = tl.Tensor(np.ones((10,), dtype=np.float32))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_embedding_layer(self):
        emb = tl.Embedding(10, 4, rng=self.rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_sequential_indexing_and_len(self):
        seq = tl.Sequential(tl.ReLU(), tl.Tanh(), tl.Sigmoid())
        assert len(seq) == 3
        assert isinstance(seq[1], tl.Tanh)
        assert len(list(iter(seq))) == 3

    def test_identity_and_activation_layers(self):
        x = tl.Tensor(np.array([-1.0, 2.0], dtype=np.float32))
        assert np.allclose(tl.Identity()(x).data, x.data)
        assert np.allclose(tl.ReLU()(x).data, [0.0, 2.0])
        assert np.allclose(tl.Tanh()(x).data, np.tanh(x.data))
        assert tl.GELU()(x).shape == (2,)
        assert tl.Sigmoid()(x).shape == (2,)

    def test_residual_block_identity_shortcut_shape(self):
        block = tl.ResidualBlock(4, 4, rng=self.rng)
        out = block(tl.Tensor(np.zeros((2, 4, 6, 6), dtype=np.float32)))
        assert out.shape == (2, 4, 6, 6)

    def test_residual_block_projection_shortcut(self):
        block = tl.ResidualBlock(4, 8, stride=2, rng=self.rng)
        out = block(tl.Tensor(np.zeros((2, 4, 6, 6), dtype=np.float32)))
        assert out.shape == (2, 8, 3, 3)

    def test_fire_module_doubles_channels(self):
        fire = tl.FireModule(4, 2, 4, rng=self.rng)
        out = fire(tl.Tensor(np.zeros((1, 4, 5, 5), dtype=np.float32)))
        assert out.shape == (1, 8, 5, 5)

    def test_lstm_cell_state_evolution(self):
        cell = tl.LSTMCell(4, 6, rng=self.rng)
        x = tl.Tensor(np.ones((3, 4), dtype=np.float32))
        h1, c1 = cell(x)
        h2, c2 = cell(x, (h1, c1))
        assert h1.shape == (3, 6) and c2.shape == (3, 6)
        assert not np.allclose(h1.data, h2.data)

    def test_multihead_attention_shape_and_divisibility_check(self):
        attention = tl.MultiHeadSelfAttention(8, 2, rng=self.rng)
        out = attention(tl.Tensor(np.zeros((2, 5, 8), dtype=np.float32)))
        assert out.shape == (2, 5, 8)
        with pytest.raises(ValueError):
            tl.MultiHeadSelfAttention(7, 2, rng=self.rng)

    def test_transformer_encoder_layer_backward(self):
        layer = tl.TransformerEncoderLayer(8, 2, 16, rng=self.rng)
        x = tl.Tensor(np.random.default_rng(0).standard_normal(
            (2, 4, 8)).astype(np.float32), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert any(p.grad is not None for p in layer.parameters())
