"""Tests for functional neural-network operations (conv, pooling, attention...)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.torchlike import functional as F
from repro.torchlike.tensor import Tensor


def naive_conv2d(x, w, b, stride, padding):
    """Reference convolution (direct loops) to validate the im2col version."""
    batch, _, height, width = x.shape
    out_channels, in_channels, kernel, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kernel) // stride + 1
    out_w = (x.shape[3] - kernel) // stride + 1
    out = np.zeros((batch, out_channels, out_h, out_w), dtype=np.float32)
    for n in range(batch):
        for oc in range(out_channels):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[n, :, i * stride:i * stride + kernel,
                              j * stride:j * stride + kernel]
                    out[n, oc, i, j] = (patch * w[oc]).sum()
            if b is not None:
                out[n, oc] += b[oc]
    return out


class TestLinearAndActivations:
    def test_linear_matches_manual(self):
        x = Tensor(np.ones((2, 3), dtype=np.float32))
        w = Tensor(np.full((4, 3), 2.0, dtype=np.float32))
        b = Tensor(np.arange(4, dtype=np.float32))
        out = F.linear(x, w, b)
        expected = np.tile(6.0 + np.arange(4), (2, 1))
        np.testing.assert_allclose(out.data, expected, rtol=1e-6)

    def test_gelu_asymptotics(self):
        x = np.linspace(-6, 6, 50).astype(np.float32)
        out = F.gelu(Tensor(x)).data
        # Approaches the identity for large positive inputs, zero for large
        # negative inputs, and is exactly zero at the origin.
        np.testing.assert_allclose(out[-1], x[-1], rtol=1e-3)
        assert abs(out[0]) < 1e-3
        assert F.gelu(Tensor(np.array([0.0], dtype=np.float32))).data[0] == 0.0
        assert np.all(out <= np.maximum(x, 0) + 1e-3)

    def test_relu_sigmoid_tanh_wrappers(self):
        x = Tensor(np.array([-1.0, 0.0, 1.0], dtype=np.float32))
        np.testing.assert_allclose(F.relu(x).data, [0, 0, 1])
        np.testing.assert_allclose(F.tanh(x).data, np.tanh(x.data), rtol=1e-6)
        np.testing.assert_allclose(F.sigmoid(x).data,
                                   1 / (1 + np.exp(-x.data)), rtol=1e-6)

    def test_softmax_and_log_softmax(self):
        x = Tensor(np.array([[1.0, 2.0, 3.0]], dtype=np.float32))
        probabilities = F.softmax(x).data
        assert probabilities.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(probabilities), rtol=1e-5)


class TestDropoutEmbeddingOneHot:
    def test_dropout_disabled_in_eval(self):
        x = Tensor(np.ones((100,), dtype=np.float32))
        out = F.dropout(x, p=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_scales_surviving_activations(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10000,), dtype=np.float32))
        out = F.dropout(x, p=0.5, training=True, rng=rng).data
        surviving = out[out > 0]
        assert surviving[0] == pytest.approx(2.0)
        assert 0.4 < (out > 0).mean() < 0.6

    def test_dropout_p_one_zeroes_everything(self):
        x = Tensor(np.ones((8,), dtype=np.float32))
        np.testing.assert_allclose(F.dropout(x, p=1.0, training=True).data,
                                   np.zeros(8))

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2, 1]), num_classes=3).data
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])

    def test_embedding_lookup_and_gradient(self):
        weight = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3),
                        requires_grad=True)
        out = F.embedding(np.array([[1, 1], [3, 0]]), weight)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        # Row 1 was looked up twice, rows 0 and 3 once, row 2 never.
        np.testing.assert_allclose(weight.grad[:, 0], [1, 2, 0, 1])


class TestConvolutionAndPooling:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_conv2d_matches_naive(self, stride, padding):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b),
                       stride=stride, padding=padding)
        expected = naive_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, expected, rtol=1e-4, atol=1e-4)

    def test_conv2d_gradients_have_right_shapes_and_flow(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.standard_normal((2, 3, 6, 6)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(rng.standard_normal((5, 3, 3, 3)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(np.zeros(5, dtype=np.float32), requires_grad=True)
        F.conv2d(x, w, b, padding=1).sum().backward()
        assert x.grad.shape == x.shape
        assert w.grad.shape == w.shape
        assert b.grad.shape == b.shape
        assert np.abs(w.grad).sum() > 0

    def test_max_pool_values_and_gradient(self):
        x = Tensor(np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32),
                   requires_grad=True)
        out = F.max_pool2d(x, kernel=2)
        assert out.data.reshape(-1)[0] == pytest.approx(4.0)
        out.sum().backward()
        np.testing.assert_allclose(x.grad.reshape(-1), [0, 0, 0, 1])

    def test_avg_pool_values_and_gradient(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4),
                   requires_grad=True)
        out = F.avg_pool2d(x, kernel=2)
        assert out.shape == (1, 1, 2, 2)
        assert out.data[0, 0, 0, 0] == pytest.approx(np.mean([0, 1, 4, 5]))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 4, 4), 0.25))


class TestNormalization:
    def test_batch_norm_normalizes_training_batch(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(5.0, 3.0, size=(32, 4)).astype(np.float32))
        gamma = Tensor(np.ones(4, dtype=np.float32))
        beta = Tensor(np.zeros(4, dtype=np.float32))
        running_mean = np.zeros(4, dtype=np.float32)
        running_var = np.ones(4, dtype=np.float32)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var,
                           training=True)
        assert abs(out.data.mean()) < 1e-4
        assert out.data.std() == pytest.approx(1.0, abs=0.05)
        # Running statistics moved toward the batch statistics.
        assert running_mean.mean() > 0.0

    def test_batch_norm_eval_uses_running_statistics(self):
        x = Tensor(np.full((4, 2), 10.0, dtype=np.float32))
        gamma = Tensor(np.ones(2, dtype=np.float32))
        beta = Tensor(np.zeros(2, dtype=np.float32))
        running_mean = np.full(2, 10.0, dtype=np.float32)
        running_var = np.ones(2, dtype=np.float32)
        out = F.batch_norm(x, gamma, beta, running_mean, running_var,
                           training=False)
        np.testing.assert_allclose(out.data, np.zeros((4, 2)), atol=1e-3)

    def test_layer_norm_last_axis(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(2.0, 4.0, size=(5, 8)).astype(np.float32))
        gamma = Tensor(np.ones(8, dtype=np.float32))
        beta = Tensor(np.zeros(8, dtype=np.float32))
        out = F.layer_norm(x, gamma, beta).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(5), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(5), atol=0.05)


class TestAttention:
    def test_attention_output_shape(self):
        rng = np.random.default_rng(0)
        q = Tensor(rng.standard_normal((2, 5, 8)).astype(np.float32))
        out = F.scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 5, 8)

    def test_attention_with_uniform_keys_averages_values(self):
        q = Tensor(np.zeros((1, 3, 4), dtype=np.float32))
        k = Tensor(np.zeros((1, 3, 4), dtype=np.float32))
        v = Tensor(np.arange(12, dtype=np.float32).reshape(1, 3, 4))
        out = F.scaled_dot_product_attention(q, k, v).data
        expected = v.data.mean(axis=1, keepdims=True).repeat(3, axis=1)
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_attention_mask_blocks_positions(self):
        q = Tensor(np.zeros((1, 2, 4), dtype=np.float32))
        k = Tensor(np.zeros((1, 2, 4), dtype=np.float32))
        v = Tensor(np.array([[[1.0] * 4, [100.0] * 4]], dtype=np.float32))
        mask = np.array([[[0.0, -1e9], [0.0, -1e9]]], dtype=np.float32)
        out = F.scaled_dot_product_attention(q, k, v, mask=mask).data
        np.testing.assert_allclose(out, np.ones((1, 2, 4)), rtol=1e-4)
