"""Tests for optimizers and learning-rate schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import torchlike as tl
from repro.torchlike.module import Parameter


def quadratic_loss(param: Parameter) -> tl.Tensor:
    """Convex objective with minimum at 3.0 in every coordinate."""
    diff = param - 3.0
    return (diff * diff).sum()


def run_steps(optimizer: tl.Optimizer, param: Parameter, steps: int) -> float:
    for _ in range(steps):
        loss = quadratic_loss(param)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return float(quadratic_loss(param).item())


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        final = run_steps(tl.SGD([param], lr=0.1), param, 100)
        assert final < 1e-4
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-2)

    def test_momentum_accelerates(self):
        plain_param = Parameter(np.zeros(4, dtype=np.float32))
        momentum_param = Parameter(np.zeros(4, dtype=np.float32))
        plain = run_steps(tl.SGD([plain_param], lr=0.01), plain_param, 30)
        accelerated = run_steps(tl.SGD([momentum_param], lr=0.01, momentum=0.9),
                                momentum_param, 30)
        assert accelerated < plain

    def test_weight_decay_shrinks_solution(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        run_steps(tl.SGD([param], lr=0.1, weight_decay=0.5), param, 200)
        assert np.all(param.data < 3.0)
        assert np.all(param.data > 0.0)

    def test_skips_parameters_without_gradients(self):
        param = Parameter(np.ones(2, dtype=np.float32))
        opt = tl.SGD([param], lr=0.1)
        opt.step()  # no backward was run
        np.testing.assert_allclose(param.data, np.ones(2))

    def test_invalid_hyperparameters_raise(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        with pytest.raises(ValueError):
            tl.SGD([param], lr=-1.0)
        with pytest.raises(ValueError):
            tl.SGD([param], lr=0.1, momentum=-0.5)
        with pytest.raises(ValueError):
            tl.SGD([param], lr=0.1, weight_decay=-0.1)
        with pytest.raises(ValueError):
            tl.SGD([], lr=0.1)


class TestAdamFamily:
    def test_adam_converges(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        final = run_steps(tl.Adam([param], lr=0.2), param, 200)
        assert final < 1e-3

    def test_adamw_decoupled_decay_differs_from_adam_l2(self):
        adam_param = Parameter(np.full(2, 5.0, dtype=np.float32))
        adamw_param = Parameter(np.full(2, 5.0, dtype=np.float32))
        run_steps(tl.Adam([adam_param], lr=0.05, weight_decay=0.1), adam_param, 50)
        run_steps(tl.AdamW([adamw_param], lr=0.05, weight_decay=0.1), adamw_param, 50)
        assert not np.allclose(adam_param.data, adamw_param.data)

    def test_adam_state_tracks_steps(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        opt = tl.Adam([param], lr=0.1)
        run_steps(opt, param, 3)
        entry = opt.state[id(param)]
        assert entry["step"] == 3
        assert entry["exp_avg"].shape == (2,)


class TestOptimizerStateDict:
    def test_roundtrip_restores_momentum_and_params(self):
        param = Parameter(np.zeros(3, dtype=np.float32))
        opt = tl.SGD([param], lr=0.1, momentum=0.9)
        run_steps(opt, param, 5)
        snapshot = opt.state_dict()
        values_at_snapshot = param.data.copy()

        run_steps(opt, param, 5)
        assert not np.allclose(param.data, values_at_snapshot)

        opt.load_state_dict(snapshot)
        np.testing.assert_allclose(param.data, values_at_snapshot)
        assert opt._step_count == 5

    def test_load_without_param_restoration(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        opt = tl.Adam([param], lr=0.1)
        run_steps(opt, param, 2)
        snapshot = opt.state_dict()
        run_steps(opt, param, 2)
        kept_values = param.data.copy()
        opt.load_state_dict(snapshot, restore_params=False)
        np.testing.assert_allclose(param.data, kept_values)

    def test_managed_parameters(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        opt = tl.SGD([param], lr=0.1)
        assert opt.managed_parameters() == [param]


class TestGradientClipping:
    def test_clip_reduces_large_norm(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        param.grad = np.full(4, 10.0, dtype=np.float32)
        norm = tl.clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)

    def test_clip_leaves_small_gradients_alone(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        param.grad = np.array([0.1, 0.1], dtype=np.float32)
        tl.clip_grad_norm([param], max_norm=5.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1])


class TestSchedulers:
    def make(self):
        param = Parameter(np.zeros(1, dtype=np.float32))
        return tl.SGD([param], lr=1.0)

    def test_step_lr_halves_every_two_epochs(self):
        opt = self.make()
        sched = tl.StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == pytest.approx([1.0, 0.5, 0.5, 0.25, 0.25, 0.125])

    def test_multi_step_lr(self):
        opt = self.make()
        sched = tl.MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(round(opt.lr, 6))
        assert lrs == pytest.approx([1.0, 0.1, 0.1, 0.01, 0.01])

    def test_cosine_annealing_reaches_eta_min(self):
        opt = self.make()
        sched = tl.CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-6)

    def test_cosine_annealing_midpoint(self):
        opt = self.make()
        sched = tl.CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.5, abs=1e-6)

    def test_lambda_lr(self):
        opt = self.make()
        sched = tl.LambdaLR(opt, lambda epoch: 1.0 / (1 + epoch))
        sched.step()
        assert opt.lr == pytest.approx(0.5)
        sched.step()
        assert opt.lr == pytest.approx(1.0 / 3.0)

    def test_scheduler_state_dict_roundtrip(self):
        opt = self.make()
        sched = tl.StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        sched.step()
        snapshot = sched.state_dict()
        sched.step()
        sched.load_state_dict(snapshot)
        assert sched.last_epoch == 2
        assert opt.lr == pytest.approx(0.25)

    def test_managed_optimizer(self):
        opt = self.make()
        sched = tl.StepLR(opt, step_size=1)
        assert sched.managed_optimizer() is opt

    def test_invalid_scheduler_parameters(self):
        opt = self.make()
        with pytest.raises(ValueError):
            tl.StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            tl.CosineAnnealingLR(opt, t_max=0)
