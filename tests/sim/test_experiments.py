"""Tests for the per-figure/table experiment harness."""

from __future__ import annotations

import pytest

from repro.sim import experiments as ex
from repro.workloads.registry import workload_names


ALL_WORKLOAD_EXPERIMENTS = [
    (ex.figure7_adaptive_overhead, "Workload"),
    (ex.figure10_parallel_replay_fraction, "Workload"),
    (ex.figure11_record_overhead, "Workload"),
    (ex.figure12_replay_latency, "Workload"),
    (ex.figure14_parallel_cost, "Workload"),
    (ex.table3_workloads, "Name"),
    (ex.table4_storage_costs, "Name"),
]


class TestExperimentHarness:
    @pytest.mark.parametrize("build_rows,name_column", ALL_WORKLOAD_EXPERIMENTS)
    def test_every_workload_experiment_covers_all_eight_workloads(
            self, build_rows, name_column):
        rows = build_rows()
        assert len(rows) == 8
        assert {row[name_column] for row in rows} == set(workload_names())

    def test_figure13_covers_four_machine_counts(self):
        rows = ex.figure13_scaleout()
        assert [row["Machines"] for row in rows] == [1, 2, 3, 4]
        assert all(row["Speedup"] <= row["Ideal speedup"] + 1e-9 for row in rows)

    def test_table3_matches_paper_columns(self):
        rows = ex.table3_workloads()
        rte = next(row for row in rows if row["Name"] == "RTE")
        assert rte["Model"] == "RoBERTa"
        assert rte["Train/Tune"] == "Fine-Tune"
        assert rte["Epochs"] == 200

    def test_table4_sorted_by_size_and_all_under_one_dollar(self):
        rows = ex.table4_storage_costs()
        sizes = [row["Checkpoint Size (GB)"] for row in rows]
        assert sizes == sorted(sizes)
        assert all(row["Storage Cost / Mo. ($)"] < 1.00 for row in rows)

    def test_figure7_no_workload_exceeds_tolerance(self):
        rows = ex.figure7_adaptive_overhead()
        assert all(row["Overhead (adaptive)"] <= row["Tolerance"] + 1e-6
                   for row in rows)
        rte = next(row for row in rows if row["Workload"] == "RTE")
        assert rte["Overhead (adaptivity disabled)"] > 0.5

    def test_figure12_reports_speedup_factors(self):
        rows = ex.figure12_replay_latency()
        assert all(row["Outer-probe speedup"] >= 1.0 for row in rows)
        assert max(row["Outer-probe speedup"] for row in rows) > 100

    def test_figure5_microbenchmark_runs_live(self, tmp_path):
        rows = ex.figure5_materialization_microbenchmark(
            tmp_path, payload_mb=1, strategies=("sequential", "thread"))
        assert [row["Strategy"] for row in rows] == ["sequential", "thread"]
        assert all(row["Main-thread seconds"] >= 0 for row in rows)
        assert all(row["Total seconds"] >= row["Main-thread seconds"] - 1e-9
                   for row in rows)

    def test_format_table_renders_all_columns(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 200, "b": 0.25}]
        text = ex.format_table(rows)
        assert "a" in text.splitlines()[0]
        assert len(text.splitlines()) == 4

    def test_format_table_empty(self):
        assert ex.format_table([]) == "(no rows)"
