"""Tests for the paper-scale evaluation simulator (record, replay, cluster, cost)."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_EPSILON
from repro.exceptions import SimulationError
from repro.modes import InitStrategy
from repro.sim.cluster import Cluster, achievable_speedup, ideal_speedup
from repro.sim.cost_model import checkpoint_storage_cost, compare_replay_costs
from repro.sim.record_sim import simulate_record
from repro.sim.replay_sim import (simulate_inner_probe_replay,
                                  simulate_outer_probe_replay,
                                  simulate_parallel_replay_fraction,
                                  simulate_scaleout)
from repro.workloads.registry import WORKLOADS, workload_names


class TestCluster:
    def test_total_gpus_and_cost(self):
        cluster = Cluster(machines=3, instance_name="p3.8xlarge")
        assert cluster.total_gpus == 12
        assert cluster.hourly_usd == pytest.approx(3 * 12.24)

    def test_workers_capped_by_partitions(self):
        cluster = Cluster(machines=4)
        assert cluster.workers(max_useful=6) == 6
        assert cluster.workers() == 16

    def test_invalid_cluster(self):
        with pytest.raises(SimulationError):
            Cluster(machines=0)
        with pytest.raises(SimulationError):
            Cluster(machines=1, instance_name="tpu-v9000")

    def test_achievable_speedup_paper_example(self):
        """Figure 13: 200 epochs on 16 GPUs -> at most 200/13 = 15.38x."""
        assert achievable_speedup(200, 16) == pytest.approx(200 / 13)
        assert ideal_speedup(200, 16) == 16.0

    def test_achievable_never_exceeds_ideal(self):
        for partitions in (1, 7, 80, 200):
            for workers in (1, 3, 4, 16):
                assert (achievable_speedup(partitions, workers)
                        <= ideal_speedup(partitions, workers) + 1e-9)

    def test_invalid_speedup_arguments(self):
        with pytest.raises(SimulationError):
            achievable_speedup(0, 4)
        with pytest.raises(SimulationError):
            achievable_speedup(10, 0)
        with pytest.raises(SimulationError):
            ideal_speedup(0, 4)


class TestRecordSimulation:
    def test_adaptivity_disabled_reproduces_figure7_arrows(self):
        """Figure 7: adaptivity-disabled overhead is 91% for RTE, 28% for CoLA."""
        rte = simulate_record(WORKLOADS["RTE"], adaptive=False)
        cola = simulate_record(WORKLOADS["CoLA"], adaptive=False)
        assert rte.overhead_fraction == pytest.approx(0.91, rel=0.02)
        assert cola.overhead_fraction == pytest.approx(0.28, rel=0.02)

    def test_no_workload_exceeds_tolerance_with_adaptive_checkpointing(self):
        """Figure 7's headline: no workload exceeds the 6.67% tolerance."""
        for name in workload_names():
            simulation = simulate_record(WORKLOADS[name], adaptive=True)
            assert simulation.overhead_fraction <= DEFAULT_EPSILON + 1e-6

    def test_average_overhead_is_low(self):
        """Section 6.1: average record overhead across workloads is ~1.5-3%."""
        overheads = [simulate_record(WORKLOADS[name]).overhead_fraction
                     for name in workload_names()]
        assert sum(overheads) / len(overheads) < 0.04

    def test_fine_tuning_workloads_checkpoint_sparsely(self):
        rte = simulate_record(WORKLOADS["RTE"])
        cifr = simulate_record(WORKLOADS["Cifr"])
        assert rte.checkpoint_density < 0.2
        assert cifr.checkpoint_density == 1.0

    def test_background_materialization_reduces_overhead(self):
        """Section 5.1: backgrounding cuts overhead by roughly 4.76% -> 1.74%."""
        for name in ("Cifr", "RsNt", "Wiki"):
            with_bg = simulate_record(WORKLOADS[name], background=True)
            without_bg = simulate_record(WORKLOADS[name], background=False)
            assert with_bg.overhead_fraction < without_bg.overhead_fraction

    def test_record_time_is_vanilla_plus_overhead(self):
        simulation = simulate_record(WORKLOADS["Cifr"])
        assert simulation.record_seconds > simulation.vanilla_seconds
        assert simulation.stored_nbytes > 0
        assert simulation.checkpoint_epochs[0] == 0 or simulation.checkpoint_epochs


class TestReplaySimulation:
    def test_outer_probe_speedups_favor_long_workloads(self):
        """Figure 12 (top): longer experiments gain the most from partial replay."""
        rte = simulate_outer_probe_replay(WORKLOADS["RTE"])
        rsnt = simulate_outer_probe_replay(WORKLOADS["RsNt"])
        wiki = simulate_outer_probe_replay(WORKLOADS["Wiki"])
        assert rsnt.speedup > 100 > rte.speedup > 1
        assert wiki.speedup > rte.speedup

    def test_outer_probe_latency_order_of_minutes_for_dense_workloads(self):
        """Section 6.3: partial replay latencies are minutes even for
        many-hour training runs."""
        rsnt = simulate_outer_probe_replay(WORKLOADS["RsNt"])
        assert rsnt.replay_seconds < 15 * 60
        assert rsnt.vanilla_seconds > 10 * 3600

    def test_inner_probe_speedup_bounded_by_parallelism(self):
        simulation = simulate_inner_probe_replay(WORKLOADS["RsNt"], num_gpus=16)
        assert simulation.speedup <= 16
        assert simulation.speedup > 10

    def test_inner_probe_weak_init_slightly_faster_than_strong(self):
        strong = simulate_inner_probe_replay(WORKLOADS["RsNt"], num_gpus=16,
                                             init_strategy=InitStrategy.STRONG)
        weak = simulate_inner_probe_replay(WORKLOADS["RsNt"], num_gpus=16,
                                           init_strategy=InitStrategy.WEAK)
        assert weak.replay_seconds <= strong.replay_seconds

    def test_parallel_fraction_at_least_ideal(self):
        """Figure 10: no workload beats the 1/num_gpus ideal line."""
        for name in workload_names():
            fraction = simulate_parallel_replay_fraction(WORKLOADS[name],
                                                         num_gpus=4)
            assert fraction >= 0.25 - 1e-9

    def test_sparse_workloads_are_farther_from_ideal(self):
        """Figure 10's annotation: RTE/CoLA are limited by epoch-partitions."""
        rte = simulate_parallel_replay_fraction(WORKLOADS["RTE"], num_gpus=4)
        rsnt = simulate_parallel_replay_fraction(WORKLOADS["RsNt"], num_gpus=4)
        assert rte > rsnt

    def test_scaleout_speedup_monotone_and_near_ideal(self):
        """Figure 13: speedup grows with machines and tracks the ideal."""
        speedups = simulate_scaleout(WORKLOADS["RsNt"], machines=[1, 2, 3, 4])
        values = [speedups[m] for m in (1, 2, 3, 4)]
        assert values == sorted(values)
        assert values[-1] > 14  # near the 15.38x load-balance ceiling
        assert values[0] > 3.5

    def test_invalid_gpu_counts(self):
        with pytest.raises(SimulationError):
            simulate_outer_probe_replay(WORKLOADS["RTE"], num_gpus=0)
        with pytest.raises(SimulationError):
            simulate_inner_probe_replay(WORKLOADS["RTE"], num_gpus=0)


class TestCostModel:
    def test_marginal_cost_of_parallelism_is_small(self):
        """Figure 14: parallel replay costs about the same as serial replay."""
        for name in workload_names():
            comparison = compare_replay_costs(WORKLOADS[name])
            assert comparison.marginal_cost_usd < 3.00
            assert comparison.parallel_hours <= comparison.serial_hours

    def test_rsnt_saves_many_hours(self):
        """Section 6.4: up to ~16-hour reductions for a few dollars."""
        comparison = compare_replay_costs(WORKLOADS["RsNt"])
        assert comparison.time_saved_hours > 10

    def test_table4_costs_under_a_dollar(self):
        for name in workload_names():
            _nbytes, cost = checkpoint_storage_cost(WORKLOADS[name])
            assert cost < 1.00

    def test_unknown_instance_rejected(self):
        with pytest.raises(SimulationError):
            compare_replay_costs(WORKLOADS["RTE"], serial_instance="nope")
