"""Tests for probe purity analysis (PURE_LOGGED / PURE_STATE / MUTATING)."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.purity import (ProbeClass, SAFE_BUILTINS, analyze_probe,
                                   evaluate_pure_logged,
                                   extract_probe_statements,
                                   record_changeset_names)

RECORD = textwrap.dedent("""
    import repro as flor

    net = make_model()
    optimizer = make_optimizer(net)
    for epoch in flor.loop(range(4)):
        for batch in loader:
            preds = net(batch)
            loss = criterion(preds, batch)
            optimizer.step()
        flor.log("train_loss", loss)
""")


def probe_with(*extra_lines: str) -> str:
    """The record source with probe lines appended inside the epoch loop."""
    indent = "    "
    insert = "\n".join(indent + line for line in extra_lines)
    return RECORD.replace(
        '    flor.log("train_loss", loss)',
        '    flor.log("train_loss", loss)\n' + insert)


class TestExtraction:
    def test_identical_sources_have_no_probes(self):
        assert extract_probe_statements(RECORD, RECORD) == []

    def test_inserted_statement_is_extracted(self):
        probe = probe_with('flor.log("lr", optimizer.lr)')
        statements = extract_probe_statements(RECORD, probe)
        assert len(statements) == 1
        assert "lr" in __import__("ast").unparse(statements[0])

    def test_cosmetic_blank_line_is_not_a_probe(self):
        padded = RECORD.replace("        preds = net(batch)",
                                "\n        preds = net(batch)")
        assert extract_probe_statements(RECORD, padded) == []


class TestChangesetNames:
    def test_record_changeset_covers_loop_mutations(self):
        names = record_changeset_names(RECORD)
        assert {"loss", "preds", "optimizer", "epoch", "batch"} <= names

    def test_unparsable_record_yields_empty_set(self):
        assert record_changeset_names("def broken(:\n") == set()


class TestClassification:
    def test_pure_logged_probe(self):
        probe = probe_with('flor.log("loss_sq", train_loss * train_loss)')
        analysis = analyze_probe(RECORD, probe,
                                 logged_names={"train_loss"})
        assert analysis.classification is ProbeClass.PURE_LOGGED
        assert set(analysis.pure_logged()) == {"loss_sq"}
        assert len(analysis.report) == 0

    def test_pure_logged_may_call_safe_builtins(self):
        probe = probe_with('flor.log("loss_abs", abs(round(train_loss, 2)))')
        analysis = analyze_probe(RECORD, probe,
                                 logged_names={"train_loss"})
        assert analysis.classification is ProbeClass.PURE_LOGGED

    def test_probe_reading_live_state_is_pure_state(self):
        probe = probe_with('flor.log("grad_norm", net.grad_norm())')
        analysis = analyze_probe(RECORD, probe,
                                 logged_names={"train_loss"})
        assert analysis.classification is ProbeClass.PURE_STATE
        assert analysis.pure_logged() == {}
        assert len(analysis.report) == 0

    def test_method_call_on_changeset_object_is_a_read(self):
        # net.parameters() does not *write* net — probes like this must
        # stay replayable.
        probe = probe_with('flor.log("nparams", len(net.parameters()))')
        analysis = analyze_probe(RECORD, probe)
        assert analysis.classification is ProbeClass.PURE_STATE

    def test_rebinding_changeset_name_is_mutating(self):
        probe = probe_with("loss = loss * 0.5")
        analysis = analyze_probe(RECORD, probe, filename="probe.py")
        assert analysis.classification is ProbeClass.MUTATING
        assert len(analysis.mutating) == 1
        diagnostic = analysis.report.diagnostics[0]
        assert diagnostic.code == "RPL001"
        assert "loss" in diagnostic.message
        assert diagnostic.file == "probe.py"
        assert diagnostic.line > 0

    def test_attribute_store_on_changeset_base_is_mutating(self):
        probe = probe_with("optimizer.lr = 0.0")
        analysis = analyze_probe(RECORD, probe)
        assert analysis.classification is ProbeClass.MUTATING

    def test_del_of_changeset_name_is_mutating(self):
        probe = probe_with("del loss")
        analysis = analyze_probe(RECORD, probe)
        assert analysis.classification is ProbeClass.MUTATING

    def test_write_to_fresh_name_is_not_mutating(self):
        probe = probe_with("probe_tmp = 1",
                           'flor.log("probe_tmp_val", probe_tmp)')
        analysis = analyze_probe(RECORD, probe)
        assert analysis.classification is ProbeClass.PURE_STATE

    def test_empty_probe_set_is_vacuously_pure_logged(self):
        analysis = analyze_probe(RECORD, RECORD)
        assert analysis.classification is ProbeClass.PURE_LOGGED

    def test_unparsable_probe_source_reports_rpl100(self):
        analysis = analyze_probe(RECORD, "def broken(:\n")
        assert analysis.report.codes() == ["RPL100"]
        assert analysis.report.has_errors


class TestEvaluation:
    def test_evaluate_pure_logged_probe(self):
        probe = probe_with('flor.log("loss_sq", train_loss * train_loss)')
        analysis = analyze_probe(RECORD, probe,
                                 logged_names={"train_loss"})
        statement = analysis.pure_logged()["loss_sq"]
        assert evaluate_pure_logged(statement, {"train_loss": 3.0}) == 9.0

    def test_evaluation_has_no_unsafe_builtins(self):
        probe = probe_with('flor.log("leak", train_loss)')
        analysis = analyze_probe(RECORD, probe,
                                 logged_names={"train_loss"})
        statement = analysis.pure_logged()["leak"]
        statement.value_ast = __import__("ast").parse(
            "open('/etc/hostname')", mode="eval").body
        with pytest.raises(NameError):
            evaluate_pure_logged(statement, {"train_loss": 1.0})

    def test_safe_builtins_are_pure(self):
        assert "open" not in SAFE_BUILTINS
        assert "eval" not in SAFE_BUILTINS
        assert "__import__" not in SAFE_BUILTINS
        assert SAFE_BUILTINS["sum"]([1, 2, 3]) == 6
