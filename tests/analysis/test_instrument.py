"""Tests for AST instrumentation (SkipBlocks + Flor generator injection)."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.instrument import (BlockSpec, FLOR_MODULE_ALIAS,
                                       instrument_source)
from repro.exceptions import InstrumentationError

TRAINING_SCRIPT = textwrap.dedent("""
    loader = list(range(4))
    state = {"count": 0}
    history = []

    for epoch in range(3):
        for item in loader:
            state["count"] = state["count"] + item
        history.append(state["count"])
""")


class TestInstrumentation:
    def test_main_loop_iterator_wrapped_in_flor_generator(self):
        result = instrument_source(TRAINING_SCRIPT)
        assert f"{FLOR_MODULE_ALIAS}.loop(range(3))" in result.instrumented_source
        assert result.has_main_loop

    def test_nested_loop_wrapped_in_skipblock(self):
        result = instrument_source(TRAINING_SCRIPT)
        assert "skipblock_0" in result.instrumented_source
        assert "should_execute()" in result.instrumented_source
        assert "end_from_namespace" in result.instrumented_source

    def test_block_spec_line_range_refers_to_original_source(self):
        result = instrument_source(TRAINING_SCRIPT)
        spec = result.blocks["skipblock_0"]
        lines = TRAINING_SCRIPT.splitlines()
        assert "for item in loader:" in lines[spec.start_line - 1]
        assert spec.end_line >= spec.start_line

    def test_changeset_recorded_in_block_spec(self):
        result = instrument_source(TRAINING_SCRIPT)
        spec = result.blocks["skipblock_0"]
        assert "state" in spec.changeset

    def test_import_injected_once(self):
        result = instrument_source(TRAINING_SCRIPT)
        instrumented = result.instrumented_source
        assert instrumented.count(f"import api as {FLOR_MODULE_ALIAS}") == 1
        # Instrumenting the instrumented source must not add a second import.
        again = instrument_source(instrumented)
        assert again.instrumented_source.count(
            f"import api as {FLOR_MODULE_ALIAS}") == 1

    def test_instrumented_source_compiles(self):
        result = instrument_source(TRAINING_SCRIPT)
        compile(result.instrumented_source, "<instrumented>", "exec")

    def test_instrumented_script_runs_standalone(self):
        """Without an active session the instrumentation is a no-op wrapper."""
        result = instrument_source(TRAINING_SCRIPT)
        namespace: dict = {"__name__": "__main__"}
        exec(compile(result.instrumented_source, "<test>", "exec"), namespace)
        assert namespace["history"] == [6, 12, 18]

    def test_script_without_nested_loop_left_untouched(self):
        source = "total = 0\nfor x in range(5):\n    total += x\n"
        result = instrument_source(source)
        assert not result.has_main_loop
        assert result.instrumented_source == source
        assert result.blocks == {}

    def test_uninstrumentable_nested_loop_reported_and_left_intact(self):
        source = textwrap.dedent("""
            for epoch in range(2):
                for batch in range(3):
                    helper(batch)
                summarize()
        """)
        result = instrument_source(source)
        assert result.blocks == {}
        assert len(result.skipped_loops) == 1
        lineno, reason = result.skipped_loops[0]
        assert "rule 5" in reason

    def test_multiple_nested_loops_get_distinct_ids(self):
        source = textwrap.dedent("""
            counters = {"a": 0, "b": 0}
            for epoch in range(2):
                for x in range(3):
                    counters["a"] = counters["a"] + x
                for y in range(3):
                    counters["b"] = counters["b"] + y
        """)
        result = instrument_source(source)
        assert set(result.blocks) == {"skipblock_0", "skipblock_1"}

    def test_while_main_loop_is_rejected_for_generator_wrapping(self):
        source = textwrap.dedent("""
            epoch = 0
            while epoch < 3:
                for item in range(2):
                    consume.add(item)
                epoch = epoch + 1
        """)
        with pytest.raises(InstrumentationError, match="for-loop"):
            instrument_source(source)

    def test_syntax_error_raises_instrumentation_error(self):
        with pytest.raises(InstrumentationError):
            instrument_source("for epoch in range(3)\n    pass")

    def test_empty_changeset_block_generates_plain_end_call(self):
        source = textwrap.dedent("""
            for epoch in range(2):
                for _ in range(3):
                    pass
        """)
        result = instrument_source(source)
        assert "end_from_namespace([]" in result.instrumented_source


class TestBlockSpec:
    def test_contains_line(self):
        spec = BlockSpec("b", start_line=5, end_line=9, changeset=("x",),
                         loop_scoped=())
        assert spec.contains_line(5) and spec.contains_line(9)
        assert not spec.contains_line(4) and not spec.contains_line(10)

    def test_dict_roundtrip(self):
        spec = BlockSpec("b", 1, 3, ("net", "optimizer"), ("batch",))
        assert BlockSpec.from_dict(spec.to_dict()) == spec
