"""Tests for the Table 1 side-effect analysis rules."""

from __future__ import annotations

import ast

import pytest

from repro.analysis.changeset import Changeset, RuleApplication
from repro.analysis.rules import (apply_rules_to_statement, build_changeset,
                                  call_base_name, declared_escaping_names,
                                  target_names)


def first_statement(source: str) -> ast.stmt:
    return ast.parse(source).body[0]


def apply(source: str, existing: set[str] | None = None) -> RuleApplication | None:
    changeset = Changeset(names=set(existing or ()))
    return apply_rules_to_statement(first_statement(source), changeset)


class TestIndividualRules:
    def test_rule1_method_call_assignment(self):
        application = apply("preds = net.forward(batch)")
        assert application.rule == 1
        assert application.delta == frozenset({"net", "preds"})

    def test_rule1_chained_attribute_method(self):
        application = apply("value = model.layers.head(x)")
        assert application.rule == 1
        assert "model" in application.delta and "value" in application.delta

    def test_rule2_function_call_assignment(self):
        application = apply("loss = criterion(preds, labels)")
        assert application.rule == 2
        assert application.delta == frozenset({"loss"})

    def test_rule2_multiple_targets(self):
        application = apply("a, b = divmod(x, y)")
        assert application.rule == 2
        assert application.delta == frozenset({"a", "b"})

    def test_rule3_plain_assignment(self):
        application = apply("total = a + b")
        assert application.rule == 3
        assert application.delta == frozenset({"total"})

    def test_rule3_tuple_unpacking(self):
        application = apply("x, y = y, x")
        assert application.rule == 3
        assert application.delta == frozenset({"x", "y"})

    def test_rule3_starred_target(self):
        application = apply("head, *rest = items")
        assert application.delta == frozenset({"head", "rest"})

    def test_rule4_bare_method_call(self):
        application = apply("optimizer.step()")
        assert application.rule == 4
        assert application.delta == frozenset({"optimizer"})

    def test_rule4_nested_attribute_call(self):
        application = apply("model.encoder.layers.clear()")
        assert application.rule == 4
        assert application.delta == frozenset({"model"})

    def test_rule5_bare_function_call_blocks(self):
        application = apply("train_epoch(net, data)")
        assert application.rule == 5
        assert application.blocking
        assert "train_epoch" in application.reason

    def test_rule0_reassignment_of_modified_variable_blocks(self):
        application = apply("loss = recompute()", existing={"loss"})
        assert application.rule == 0
        assert application.blocking
        assert "loss" in application.reason

    def test_rule0_has_precedence_over_rule1(self):
        application = apply("preds = net.forward(x)", existing={"preds"})
        assert application.rule == 0
        assert application.blocking


class TestSpecialForms:
    def test_aug_assign_is_rule3_and_exempt_from_rule0(self):
        application = apply("total += loss.item()", existing={"total"})
        assert application.rule == 3
        assert not application.blocking
        assert application.delta == frozenset({"total"})

    def test_attribute_target_mutates_base(self):
        application = apply("config.lr = 0.1")
        assert application.delta == frozenset({"config"})

    def test_subscript_target_mutates_base(self):
        application = apply("history[epoch] = loss")
        assert application.delta == frozenset({"history"})

    def test_annotated_assignment_with_value(self):
        application = apply("count: int = 0")
        assert application.rule == 3
        assert application.delta == frozenset({"count"})

    def test_annotated_assignment_without_value_ignored(self):
        assert apply("count: int") is None

    def test_non_call_non_assignment_ignored(self):
        assert apply("x") is None
        assert apply("pass") is None
        assert apply("del x") is None

    def test_anonymous_callable_is_rule5(self):
        application = apply("callbacks[0](x)")
        assert application.rule == 5
        assert application.blocking


class TestHelpers:
    def test_target_names_tuple_and_attribute(self):
        bound, mutated = target_names(first_statement("a, b.c = 1, 2").targets[0])
        assert bound == {"a"}
        assert mutated == {"b"}

    def test_call_base_name_function_vs_method(self):
        call = first_statement("f(x)").value
        assert call_base_name(call) == ("f", False)
        call = first_statement("obj.m(x)").value
        assert call_base_name(call) == ("obj", True)


class TestBuildChangeset:
    def test_pytorch_style_training_loop(self):
        """The Figure 6 nested training loop: changeset before filtering."""
        source = (
            "for batch in trainloader:\n"
            "    optimizer.zero_grad()\n"
            "    preds = net(batch)\n"
            "    loss = criterion(preds, batch)\n"
            "    loss.backward()\n"
            "    optimizer.step()\n"
        )
        loop = first_statement(source)
        changeset = build_changeset(loop)
        assert not changeset.blocked
        assert {"batch", "preds", "loss", "optimizer"} <= changeset.names

    def test_loop_with_arbitrary_function_call_is_blocked(self):
        source = (
            "for epoch in range(10):\n"
            "    train(net)\n"
            "    validate(net)\n"
        )
        changeset = build_changeset(first_statement(source))
        assert changeset.blocked
        assert "rule 5" in changeset.blocking_reason

    def test_nested_compound_statements_are_analyzed(self):
        source = (
            "for batch in loader:\n"
            "    if use_amp:\n"
            "        scaler.update()\n"
            "    else:\n"
            "        optimizer.step()\n"
        )
        changeset = build_changeset(first_statement(source))
        assert {"scaler", "optimizer"} <= changeset.names

    def test_while_loop_supported(self):
        source = (
            "while not converged:\n"
            "    state = update(state)\n"
        )
        changeset = build_changeset(first_statement(source))
        # Each statement is interpreted once: rule 2 adds {state}, nothing blocks.
        assert not changeset.blocked
        assert changeset.names == {"state"}

    def test_while_loop_rule2_not_blocked(self):
        source = (
            "while not converged:\n"
            "    value = compute(value)\n"
            "    flag.set()\n"
        )
        changeset = build_changeset(first_statement(source))
        assert not changeset.blocked
        assert changeset.names == {"value", "flag"}

    def test_explain_mentions_rules(self):
        source = (
            "for batch in loader:\n"
            "    optimizer.step()\n"
        )
        changeset = build_changeset(first_statement(source))
        explanation = changeset.explain()
        assert "rule 4" in explanation
        assert "optimizer" in explanation

    def test_analysis_stops_at_blocking_statement(self):
        source = (
            "for epoch in range(2):\n"
            "    mystery()\n"
            "    optimizer.step()\n"
        )
        changeset = build_changeset(first_statement(source))
        assert changeset.blocked
        # The statement after the blocking call was never interpreted.
        assert "optimizer" not in changeset.names


class TestModernSyntax:
    """Table 1 over post-3.8 syntax: starred/chained/annotated targets,
    ``match`` statements, and ``async for`` bodies."""

    @pytest.mark.parametrize("source,expected_rule,expected_delta", [
        # starred targets in unpacking assignments
        ("first, *middle, last = values",
         3, {"first", "middle", "last"}),
        ("*rest, final = producer(x)",
         2, {"rest", "final"}),
        # chained assignments bind every target list
        ("a = b = stats.mean()",
         1, {"a", "b", "stats"}),
        ("x = y = z = 0",
         3, {"x", "y", "z"}),
        # annotated assignments with values
        ("lr: float = schedule(epoch)",
         2, {"lr"}),
        ("state.total: int = 3",
         3, {"state"}),
    ])
    def test_assignment_forms(self, source, expected_rule, expected_delta):
        application = apply(source)
        assert application.rule == expected_rule
        assert application.delta == frozenset(expected_delta)

    @pytest.mark.parametrize("source,expected_names", [
        # capture patterns bind names like assignments (Rule 3)
        ("match point:\n"
         "    case (x, y):\n"
         "        pass\n", {"x", "y"}),
        # class patterns with keyword captures
        ("match event:\n"
         "    case Click(button=b):\n"
         "        pass\n"
         "    case Scroll() as s:\n"
         "        pass\n", {"b", "s"}),
        # mapping rest and sequence star captures
        ("match config:\n"
         "    case {'lr': lr, **extras}:\n"
         "        pass\n"
         "    case [head, *tail]:\n"
         "        pass\n", {"lr", "extras", "head", "tail"}),
    ])
    def test_match_patterns_are_rule3(self, source, expected_names):
        application = apply(source)
        assert application.rule == 3
        assert application.delta == frozenset(expected_names)

    def test_match_pattern_rebinding_changeset_name_blocks(self):
        source = ("match result:\n"
                  "    case (loss, acc):\n"
                  "        pass\n")
        application = apply(source, existing={"loss"})
        assert application.rule == 0
        assert application.blocking
        assert "loss" in application.reason

    def test_match_case_bodies_are_analyzed(self):
        source = ("for item in stream:\n"
                  "    match item:\n"
                  "        case ('step',):\n"
                  "            optimizer.step()\n"
                  "        case _:\n"
                  "            skipped += 1\n")
        changeset = build_changeset(first_statement(source))
        assert not changeset.blocked
        assert {"optimizer", "skipped"} <= changeset.names

    def test_wildcard_only_match_contributes_nothing(self):
        application = apply("match x:\n    case _:\n        pass\n")
        assert application is None

    def test_async_for_body_is_analyzed(self):
        source = ("async def consume():\n"
                  "    async for batch in stream:\n"
                  "        total = accumulate(batch)\n")
        loop = first_statement(source).body[0]
        assert isinstance(loop, ast.AsyncFor)
        changeset = build_changeset(loop)
        assert not changeset.blocked
        assert {"batch", "total"} <= changeset.names

    def test_nested_async_for_target_joins_changeset(self):
        source = ("async def consume():\n"
                  "    async for chunk in stream:\n"
                  "        async for item in chunk:\n"
                  "            sink.write_row(item)\n")
        outer = first_statement(source).body[0]
        changeset = build_changeset(outer)
        assert {"chunk", "item", "sink"} <= changeset.names


class TestGlobalNonlocalEscalation:
    """Assignments to ``global``/``nonlocal``-declared names escape the
    loop's scope, so the matching rule escalates to blocking."""

    def test_global_assignment_in_loop_blocks(self):
        source = ("for step in range(10):\n"
                  "    global best_loss\n"
                  "    best_loss = evaluate(step)\n")
        changeset = build_changeset(first_statement(source))
        assert changeset.blocked
        assert "best_loss" in changeset.blocking_reason
        assert "escapes" in changeset.blocking_reason

    def test_nonlocal_augassign_in_loop_blocks(self):
        source = ("def outer():\n"
                  "    counter = 0\n"
                  "    def inner():\n"
                  "        for x in items:\n"
                  "            nonlocal counter\n"
                  "            counter += 1\n")
        loop = first_statement(source).body[1].body[0]
        changeset = build_changeset(loop)
        assert changeset.blocked
        assert "counter" in changeset.blocking_reason

    def test_global_declared_in_nested_compound_still_escalates(self):
        source = ("for epoch in range(2):\n"
                  "    if epoch:\n"
                  "        global tally\n"
                  "    tally = epoch\n")
        changeset = build_changeset(first_statement(source))
        assert changeset.blocked

    def test_global_in_nested_function_does_not_escalate(self):
        # The declaration belongs to the nested function's scope, not the
        # loop's; the loop itself never assigns the global.
        source = ("for epoch in range(2):\n"
                  "    def report():\n"
                  "        global total\n"
                  "        total = 1\n"
                  "    acc.update(epoch)\n")
        changeset = build_changeset(first_statement(source))
        assert not changeset.blocked
        assert "acc" in changeset.names

    def test_declared_escaping_names_helper(self):
        tree = ast.parse("global a, b\nnonlocal_free = 1\n")
        assert declared_escaping_names(tree.body) == frozenset({"a", "b"})

    def test_unassigned_global_declaration_is_harmless(self):
        # Declaring without assigning (read-only use) does not block.
        source = ("for step in range(3):\n"
                  "    global lr\n"
                  "    acc.update(lr)\n")
        changeset = build_changeset(first_statement(source))
        assert not changeset.blocked
