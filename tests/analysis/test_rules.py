"""Tests for the Table 1 side-effect analysis rules."""

from __future__ import annotations

import ast

import pytest

from repro.analysis.changeset import Changeset, RuleApplication
from repro.analysis.rules import (apply_rules_to_statement, build_changeset,
                                  call_base_name, target_names)


def first_statement(source: str) -> ast.stmt:
    return ast.parse(source).body[0]


def apply(source: str, existing: set[str] | None = None) -> RuleApplication | None:
    changeset = Changeset(names=set(existing or ()))
    return apply_rules_to_statement(first_statement(source), changeset)


class TestIndividualRules:
    def test_rule1_method_call_assignment(self):
        application = apply("preds = net.forward(batch)")
        assert application.rule == 1
        assert application.delta == frozenset({"net", "preds"})

    def test_rule1_chained_attribute_method(self):
        application = apply("value = model.layers.head(x)")
        assert application.rule == 1
        assert "model" in application.delta and "value" in application.delta

    def test_rule2_function_call_assignment(self):
        application = apply("loss = criterion(preds, labels)")
        assert application.rule == 2
        assert application.delta == frozenset({"loss"})

    def test_rule2_multiple_targets(self):
        application = apply("a, b = divmod(x, y)")
        assert application.rule == 2
        assert application.delta == frozenset({"a", "b"})

    def test_rule3_plain_assignment(self):
        application = apply("total = a + b")
        assert application.rule == 3
        assert application.delta == frozenset({"total"})

    def test_rule3_tuple_unpacking(self):
        application = apply("x, y = y, x")
        assert application.rule == 3
        assert application.delta == frozenset({"x", "y"})

    def test_rule3_starred_target(self):
        application = apply("head, *rest = items")
        assert application.delta == frozenset({"head", "rest"})

    def test_rule4_bare_method_call(self):
        application = apply("optimizer.step()")
        assert application.rule == 4
        assert application.delta == frozenset({"optimizer"})

    def test_rule4_nested_attribute_call(self):
        application = apply("model.encoder.layers.clear()")
        assert application.rule == 4
        assert application.delta == frozenset({"model"})

    def test_rule5_bare_function_call_blocks(self):
        application = apply("train_epoch(net, data)")
        assert application.rule == 5
        assert application.blocking
        assert "train_epoch" in application.reason

    def test_rule0_reassignment_of_modified_variable_blocks(self):
        application = apply("loss = recompute()", existing={"loss"})
        assert application.rule == 0
        assert application.blocking
        assert "loss" in application.reason

    def test_rule0_has_precedence_over_rule1(self):
        application = apply("preds = net.forward(x)", existing={"preds"})
        assert application.rule == 0
        assert application.blocking


class TestSpecialForms:
    def test_aug_assign_is_rule3_and_exempt_from_rule0(self):
        application = apply("total += loss.item()", existing={"total"})
        assert application.rule == 3
        assert not application.blocking
        assert application.delta == frozenset({"total"})

    def test_attribute_target_mutates_base(self):
        application = apply("config.lr = 0.1")
        assert application.delta == frozenset({"config"})

    def test_subscript_target_mutates_base(self):
        application = apply("history[epoch] = loss")
        assert application.delta == frozenset({"history"})

    def test_annotated_assignment_with_value(self):
        application = apply("count: int = 0")
        assert application.rule == 3
        assert application.delta == frozenset({"count"})

    def test_annotated_assignment_without_value_ignored(self):
        assert apply("count: int") is None

    def test_non_call_non_assignment_ignored(self):
        assert apply("x") is None
        assert apply("pass") is None
        assert apply("del x") is None

    def test_anonymous_callable_is_rule5(self):
        application = apply("callbacks[0](x)")
        assert application.rule == 5
        assert application.blocking


class TestHelpers:
    def test_target_names_tuple_and_attribute(self):
        bound, mutated = target_names(first_statement("a, b.c = 1, 2").targets[0])
        assert bound == {"a"}
        assert mutated == {"b"}

    def test_call_base_name_function_vs_method(self):
        call = first_statement("f(x)").value
        assert call_base_name(call) == ("f", False)
        call = first_statement("obj.m(x)").value
        assert call_base_name(call) == ("obj", True)


class TestBuildChangeset:
    def test_pytorch_style_training_loop(self):
        """The Figure 6 nested training loop: changeset before filtering."""
        source = (
            "for batch in trainloader:\n"
            "    optimizer.zero_grad()\n"
            "    preds = net(batch)\n"
            "    loss = criterion(preds, batch)\n"
            "    loss.backward()\n"
            "    optimizer.step()\n"
        )
        loop = first_statement(source)
        changeset = build_changeset(loop)
        assert not changeset.blocked
        assert {"batch", "preds", "loss", "optimizer"} <= changeset.names

    def test_loop_with_arbitrary_function_call_is_blocked(self):
        source = (
            "for epoch in range(10):\n"
            "    train(net)\n"
            "    validate(net)\n"
        )
        changeset = build_changeset(first_statement(source))
        assert changeset.blocked
        assert "rule 5" in changeset.blocking_reason

    def test_nested_compound_statements_are_analyzed(self):
        source = (
            "for batch in loader:\n"
            "    if use_amp:\n"
            "        scaler.update()\n"
            "    else:\n"
            "        optimizer.step()\n"
        )
        changeset = build_changeset(first_statement(source))
        assert {"scaler", "optimizer"} <= changeset.names

    def test_while_loop_supported(self):
        source = (
            "while not converged:\n"
            "    state = update(state)\n"
        )
        changeset = build_changeset(first_statement(source))
        # Each statement is interpreted once: rule 2 adds {state}, nothing blocks.
        assert not changeset.blocked
        assert changeset.names == {"state"}

    def test_while_loop_rule2_not_blocked(self):
        source = (
            "while not converged:\n"
            "    value = compute(value)\n"
            "    flag.set()\n"
        )
        changeset = build_changeset(first_statement(source))
        assert not changeset.blocked
        assert changeset.names == {"value", "flag"}

    def test_explain_mentions_rules(self):
        source = (
            "for batch in loader:\n"
            "    optimizer.step()\n"
        )
        changeset = build_changeset(first_statement(source))
        explanation = changeset.explain()
        assert "rule 4" in explanation
        assert "optimizer" in explanation

    def test_analysis_stops_at_blocking_statement(self):
        source = (
            "for epoch in range(2):\n"
            "    mystery()\n"
            "    optimizer.step()\n"
        )
        changeset = build_changeset(first_statement(source))
        assert changeset.blocked
        # The statement after the blocking call was never interpreted.
        assert "optimizer" not in changeset.names
