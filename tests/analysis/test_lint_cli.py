"""Tests for ``python -m repro.lint`` and the lint entry points."""

from __future__ import annotations

import json
import textwrap

import pytest

import repro
from repro.analysis.lint import lint_run, lint_source
from repro.exceptions import FlorError
from repro.lint import main

HAZARDOUS = textwrap.dedent("""
    import random
    import time

    for epoch in range(3):
        noise = random.random()
        stamp = time.time()
""")

CLEAN = textwrap.dedent("""
    import random
    random.seed(0)

    total = 0
    for epoch in range(3):
        total += epoch
""")


@pytest.fixture
def hazard_file(tmp_path):
    path = tmp_path / "hazard.py"
    path.write_text(HAZARDOUS, encoding="utf-8")
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(CLEAN, encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main([str(clean_file)]) == 0

    def test_error_finding_exits_one(self, hazard_file, capsys):
        assert main([str(hazard_file)]) == 1

    def test_fail_on_warning_raises_threshold(self, hazard_file, clean_file,
                                              capsys):
        # The clean file has no warnings either; the hazard file has both.
        assert main([str(clean_file), "--fail-on", "warning"]) == 0
        assert main([str(hazard_file), "--fail-on", "warning"]) == 1

    def test_missing_target_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.py"
        code = main([str(missing)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_empty_directory_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty)]) == 2


class TestOutputs:
    def test_human_rendering_names_code_and_line(self, hazard_file, capsys):
        main([str(hazard_file)])
        out = capsys.readouterr().out
        assert "RPL101" in out
        assert "random.random" in out
        assert f"{hazard_file}" in out

    def test_json_document_shape(self, hazard_file, capsys):
        main([str(hazard_file), "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        assert doc["summary"]["errors"] >= 1
        codes = {d["code"] for d in doc["diagnostics"]}
        assert {"RPL101", "RPL102"} <= codes

    def test_output_file_written(self, hazard_file, tmp_path, capsys):
        out_file = tmp_path / "diag.json"
        main([str(hazard_file), "--output", str(out_file)])
        doc = json.loads(out_file.read_text(encoding="utf-8"))
        assert doc["summary"]["errors"] >= 1

    def test_directory_target_lints_recursively(self, tmp_path, capsys):
        pkg = tmp_path / "pkg" / "sub"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(HAZARDOUS, encoding="utf-8")
        (tmp_path / "pkg" / "good.py").write_text(CLEAN, encoding="utf-8")
        assert main([str(tmp_path / "pkg")]) == 1


class TestRunLinting:
    def test_lint_run_reads_recorded_source(self, flor_config):
        with pytest.warns(repro.ReplaySafetyWarning):
            record = repro.record_source(HAZARDOUS, name="lint-me",
                                         config=flor_config)
        report = lint_run(record.run_id, config=flor_config)
        assert "RPL101" in report.codes()
        assert report.diagnostics[0].file.startswith(record.run_id)

    def test_lint_run_unknown_id_raises(self, flor_config):
        with pytest.raises(FlorError):
            lint_run("no-such-run", config=flor_config)

    def test_cli_run_id_target(self, flor_config, capsys):
        # The fixture installs flor_config as the active config, so the
        # CLI's catalog lookup resolves against the test home.
        with pytest.warns(repro.ReplaySafetyWarning):
            record = repro.record_source(HAZARDOUS, name="cli-run",
                                         config=flor_config)
        assert main([record.run_id]) == 1
        assert "RPL101" in capsys.readouterr().out


class TestLintSource:
    def test_rpl201_reports_non_instrumentable_loop(self):
        source = textwrap.dedent("""
            for epoch in range(2):
                for batch in loader:
                    optimizer.step()
                print(epoch)
        """)
        report = lint_source(source)
        assert "RPL201" in report.codes()
        rpl201 = [d for d in report if d.code == "RPL201"]
        assert all(d.severity == "info" for d in rpl201)
