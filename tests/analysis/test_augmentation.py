"""Tests for runtime changeset augmentation with library knowledge."""

from __future__ import annotations

import numpy as np
import pytest

from repro import torchlike as tl
from repro.analysis.augmentation import (augment_changeset,
                                         clear_augmentation_rules,
                                         default_rules,
                                         register_augmentation_rule)


@pytest.fixture(autouse=True)
def _reset_rules():
    """Keep the global augmentation registry clean across tests."""
    clear_augmentation_rules()
    yield
    clear_augmentation_rules()


def make_training_namespace():
    rng = np.random.default_rng(0)
    net = tl.Sequential(tl.Linear(4, 8, rng=rng), tl.ReLU(),
                        tl.Linear(8, 2, rng=rng))
    optimizer = tl.SGD(net.parameters(), lr=0.1)
    scheduler = tl.StepLR(optimizer, step_size=2)
    return {"net": net, "optimizer": optimizer, "scheduler": scheduler,
            "criterion": tl.CrossEntropyLoss(), "epochs": 10}


class TestBuiltInRules:
    def test_optimizer_pulls_in_model(self):
        """The paper's fact (a): the model may be updated via the optimizer."""
        namespace = make_training_namespace()
        augmented = augment_changeset({"optimizer"}, namespace)
        assert augmented == {"optimizer", "net"}

    def test_scheduler_pulls_in_optimizer_and_model(self):
        """Fact (b) chains with fact (a) to a fixed point."""
        namespace = make_training_namespace()
        augmented = augment_changeset({"scheduler"}, namespace)
        assert augmented == {"scheduler", "optimizer", "net"}

    def test_plain_names_unchanged(self):
        namespace = make_training_namespace()
        assert augment_changeset({"epochs"}, namespace) == {"epochs"}

    def test_missing_names_are_ignored(self):
        namespace = make_training_namespace()
        assert augment_changeset({"not_there"}, namespace) == {"not_there"}

    def test_criterion_module_without_optimizer_not_expanded(self):
        namespace = make_training_namespace()
        assert augment_changeset({"criterion"}, namespace) == {"criterion"}

    def test_does_not_pull_in_unrelated_model(self):
        namespace = make_training_namespace()
        other = tl.Linear(3, 3, rng=np.random.default_rng(1))
        namespace["other_net"] = other
        augmented = augment_changeset({"optimizer"}, namespace)
        assert "other_net" not in augmented

    def test_empty_changeset(self):
        assert augment_changeset(set(), make_training_namespace()) == set()


class TestRegistry:
    def test_register_custom_rule(self):
        calls = []

        @register_augmentation_rule
        def track_datasets(obj, namespace):
            calls.append(obj)
            if isinstance(obj, dict) and obj.get("kind") == "dataset":
                return {name for name, value in namespace.items()
                        if value is obj.get("paired")}
            return set()

        paired = object()
        namespace = {"dataset": {"kind": "dataset", "paired": paired},
                     "stats": paired}
        augmented = augment_changeset({"dataset"}, namespace)
        assert augmented == {"dataset", "stats"}
        assert calls  # the custom rule ran

    def test_clear_restores_defaults_only(self):
        register_augmentation_rule(lambda obj, ns: {"spurious"})
        clear_augmentation_rules()
        namespace = make_training_namespace()
        assert augment_changeset({"epochs"}, namespace) == {"epochs"}

    def test_default_rules_are_two_pytorch_facts(self):
        assert len(default_rules()) == 2
