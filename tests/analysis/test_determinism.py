"""Tests for the replay-determinism lint (RPL1xx rules)."""

from __future__ import annotations

import textwrap

from repro.analysis.determinism import lint_determinism
from repro.analysis.diagnostics import Severity
from repro.workloads import build_streaming_script, build_training_script


def lint(source: str):
    return lint_determinism(textwrap.dedent(source))


class TestPlantedHazards:
    def test_catches_exactly_the_planted_hazards(self):
        """Acceptance check: one unseeded RNG draw and one wall-clock read
        in the loop body are reported — and nothing else."""
        report = lint("""
            import random
            import time

            net = make_model()
            for epoch in range(5):
                noise = random.random()
                started = time.time()
                net.fit(noise)
        """)
        assert [d.code for d in report] == ["RPL101", "RPL102"]
        rng, clock = report
        assert rng.severity is Severity.ERROR
        assert "random.random" in rng.message
        assert rng.line == 7
        assert clock.severity is Severity.WARNING
        assert "time.time" in clock.message
        assert clock.line == 8

    def test_no_false_positives_on_clean_workloads(self):
        for script in (build_training_script("ImgN", epochs=2),
                       build_streaming_script("Wiki")):
            assert len(lint_determinism(script)) == 0

    def test_clean_seeded_script_passes(self):
        report = lint("""
            import random
            random.seed(42)
            for epoch in range(5):
                noise = random.random()
        """)
        assert len(report) == 0


class TestRngRules:
    def test_numpy_alias_is_canonicalized(self):
        report = lint("""
            import numpy as np
            x = np.random.rand(3)
        """)
        assert report.codes() == ["RPL101"]
        assert "numpy.random.rand" in report.diagnostics[0].message

    def test_seed_pacifies_only_its_family(self):
        report = lint("""
            import random
            import numpy as np
            np.random.seed(0)
            a = np.random.rand()
            b = random.random()
        """)
        assert [d.code for d in report] == ["RPL101"]
        assert "random.random" in report.diagnostics[0].message

    def test_explicit_generator_with_seed_is_fine(self):
        report = lint("""
            import numpy as np
            rng = np.random.default_rng(1234)
            x = rng.normal()
        """)
        assert len(report) == 0

    def test_unseeded_generator_constructor_flagged(self):
        report = lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert report.codes() == ["RPL101"]


class TestClockAndEnvironmentRules:
    def test_wall_clock_outside_loop_is_info(self):
        report = lint("""
            import time
            started = time.time()
        """)
        assert report.codes() == ["RPL102"]
        assert report.diagnostics[0].severity is Severity.INFO

    def test_time_sleep_is_not_a_clock_read(self):
        report = lint("""
            import time
            time.sleep(0.1)
        """)
        assert len(report) == 0

    def test_set_iteration_in_loop_flagged(self):
        report = lint("""
            for name in set(layers):
                freeze(name)
        """)
        assert "RPL103" in report.codes()

    def test_environ_iteration_flagged(self):
        report = lint("""
            import os
            for key in os.environ:
                print(key)
        """)
        assert "RPL103" in report.codes()

    def test_thread_spawn_in_loop_flagged(self):
        report = lint("""
            import threading
            for shard in shards:
                threading.Thread(target=load, args=(shard,)).start()
        """)
        assert "RPL104" in report.codes()

    def test_thread_spawn_outside_loop_not_flagged(self):
        report = lint("""
            import threading
            worker = threading.Thread(target=load)
        """)
        assert "RPL104" not in report.codes()

    def test_filesystem_write_flagged(self):
        report = lint("""
            with open("metrics.csv", "w") as fh:
                fh.write(line)
        """)
        assert "RPL105" in report.codes()

    def test_read_mode_open_not_flagged(self):
        report = lint("""
            with open("config.json") as fh:
                data = fh.read()
        """)
        assert "RPL105" not in report.codes()

    def test_network_call_flagged(self):
        report = lint("""
            import urllib.request
            data = urllib.request.urlopen(url).read()
        """)
        assert "RPL106" in report.codes()


class TestSuppressionAndErrors:
    def test_blanket_noqa_suppresses(self):
        report = lint("""
            import random
            x = random.random()  # noqa
        """)
        assert len(report) == 0

    def test_targeted_noqa_suppresses_only_listed_code(self):
        report = lint("""
            import random
            import time
            for i in range(3):
                x = random.random()  # noqa: RPL101
                t = time.time()  # noqa: RPL103
        """)
        assert [d.code for d in report] == ["RPL102"]

    def test_repro_noqa_synonym(self):
        report = lint("""
            import random
            x = random.random()  # repro: noqa
        """)
        assert len(report) == 0

    def test_syntax_error_becomes_rpl100(self):
        report = lint_determinism("def broken(:\n")
        assert [d.code for d in report] == ["RPL100"]
        assert report.has_errors

    def test_findings_sorted_by_position(self):
        report = lint("""
            import time
            import random
            b = time.time()
            a = random.random()
        """)
        assert [d.line for d in report] == sorted(d.line for d in report)
