"""Tests for scope analysis, loop discovery and whole-script analysis."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.loop_finder import analyze_loop, analyze_script, find_loops
from repro.analysis.scope import (bound_names, loop_scoped_names,
                                  names_bound_before, names_read_after,
                                  pattern_names)

FIGURE6_SCRIPT = textwrap.dedent("""
    import torchlike as tl

    trainloader = make_loader()
    net = make_model()
    optimizer = tl.SGD(net.parameters(), lr=0.1)
    criterion = tl.CrossEntropyLoss()

    def evaluate(model):
        return model.score()

    for epoch in range(200):
        for batch in trainloader:
            optimizer.zero_grad()
            preds = net(batch)
            avg_loss = criterion(preds, batch)
            avg_loss.backward()
            optimizer.step()
        print(evaluate(net))
""")


class TestScopeHelpers:
    def test_bound_names_collects_assignments_imports_defs(self):
        tree = ast.parse(FIGURE6_SCRIPT)
        names = bound_names(tree)
        assert {"tl", "trainloader", "net", "optimizer", "criterion",
                "evaluate", "epoch", "batch", "preds", "avg_loss"} <= names

    def test_bound_names_does_not_enter_nested_functions(self):
        source = "def f():\n    inner = 1\nouter = 2\n"
        names = bound_names(ast.parse(source))
        assert "outer" in names and "f" in names
        assert "inner" not in names

    def test_names_bound_before_stops_at_target(self):
        tree = ast.parse(FIGURE6_SCRIPT)
        main_loop = next(node for node in tree.body if isinstance(node, ast.For))
        before = names_bound_before(tree.body, main_loop)
        assert {"trainloader", "net", "optimizer", "criterion"} <= before
        assert "batch" not in before

    def test_loop_scoped_names_matches_figure6(self):
        tree = ast.parse(FIGURE6_SCRIPT)
        main_loop = next(node for node in tree.body if isinstance(node, ast.For))
        inner_loop = main_loop.body[0]
        before = names_bound_before(tree.body, inner_loop)
        scoped = loop_scoped_names(inner_loop, before)
        assert scoped == {"batch", "preds", "avg_loss"}

    def test_bound_names_counts_walrus_targets(self):
        source = ("while (chunk := reader.next()) is not None:\n"
                  "    sizes = [n for line in chunk if (n := len(line)) > 0]\n")
        names = bound_names(ast.parse(source))
        assert {"chunk", "sizes", "n"} <= names

    def test_walrus_inside_lambda_is_not_bound_here(self):
        source = "fn = lambda x: (tmp := x) + 1\n"
        names = bound_names(ast.parse(source))
        assert "fn" in names
        assert "tmp" not in names

    def test_del_unbinds_in_program_order(self):
        source = "scratch = allocate()\nuse(scratch)\ndel scratch\nkeep = 1\n"
        names = bound_names(ast.parse(source))
        assert "keep" in names
        assert "scratch" not in names

    def test_rebinding_after_del_counts_again(self):
        source = "x = 1\ndel x\nx = 2\n"
        assert "x" in bound_names(ast.parse(source))

    def test_del_of_attribute_keeps_base_bound(self):
        source = "obj = make()\ndel obj.cache\n"
        assert "obj" in bound_names(ast.parse(source))

    def test_names_bound_before_honors_del(self):
        # A name deleted ahead of the loop is not bound-before, so a loop
        # that rebinds it treats it as loop-scoped.
        source = textwrap.dedent("""
            warmup = prepare()
            del warmup
            for step in range(3):
                warmup = step * 2
                acc.update(warmup)
        """)
        tree = ast.parse(source)
        loop = next(node for node in tree.body if isinstance(node, ast.For))
        before = names_bound_before(tree.body, loop)
        assert "warmup" not in before
        assert "warmup" in loop_scoped_names(loop, before)

    def test_match_case_bindings_are_bound(self):
        source = textwrap.dedent("""
            match payload:
                case {'value': v, **rest}:
                    seen = v
                case [first, *others]:
                    seen = first
        """)
        names = bound_names(ast.parse(source))
        assert {"v", "rest", "first", "others", "seen"} <= names

    def test_pattern_names_helper(self):
        case = ast.parse(
            "match p:\n    case Point(x=px) as pt:\n        pass\n"
        ).body[0].cases[0]
        assert pattern_names(case.pattern) == {"px", "pt"}

    def test_names_read_after_detects_later_reads(self):
        source = textwrap.dedent("""
            items = load()
            for item in items:
                total = accumulate(total_init)
            print(total)
        """)
        tree = ast.parse(source)
        loop = next(node for node in tree.body if isinstance(node, ast.For))
        reads = names_read_after(loop, tree.body)
        assert "total" in reads
        assert "items" not in reads


class TestFindLoops:
    def test_depths_and_scopes(self):
        loops = find_loops(ast.parse(FIGURE6_SCRIPT))
        depths = sorted(depth for _, depth, _ in loops)
        assert depths == [0, 1]

    def test_loops_inside_functions_have_their_own_scope(self):
        source = textwrap.dedent("""
            def train():
                for epoch in range(3):
                    for batch in data:
                        step(batch)
        """)
        loops = find_loops(ast.parse(source))
        assert len(loops) == 2
        assert {depth for _, depth, _ in loops} == {0, 1}

    def test_loops_inside_try_and_with(self):
        source = textwrap.dedent("""
            with open("f") as handle:
                for line in handle:
                    process(line)
            try:
                for x in items:
                    consume(x)
            except ValueError:
                for y in items:
                    recover(y)
        """)
        loops = find_loops(ast.parse(source))
        assert len(loops) == 3


class TestAnalyzeScript:
    def test_main_loop_is_outermost_loop_containing_nested_loop(self):
        analysis = analyze_script(FIGURE6_SCRIPT)
        main = analysis.main_loop
        assert main is not None and main.is_main
        assert main.depth == 0

    def test_main_loop_is_not_instrumentable_due_to_print(self):
        """Figure 6: the main loop contains `print(evaluate(net))` — rule 5."""
        analysis = analyze_script(FIGURE6_SCRIPT)
        assert not analysis.main_loop.instrumentable
        assert "rule 5" in analysis.main_loop.blocking_reason

    def test_nested_training_loop_changeset_is_optimizer(self):
        """Figure 6's end state: after filtering, the changeset is {optimizer}."""
        analysis = analyze_script(FIGURE6_SCRIPT)
        nested = analysis.nested_loops()
        assert len(nested) == 1
        loop = nested[0]
        assert loop.instrumentable
        assert loop.changeset == {"optimizer"}
        assert loop.loop_scoped == {"batch", "preds", "avg_loss"}

    def test_script_without_nested_loops_has_no_main_loop(self):
        analysis = analyze_script("for x in range(3):\n    y = f(x)\n")
        assert analysis.main_loop is None
        assert analysis.nested_loops() == []

    def test_instrumentable_loops_excludes_blocked(self):
        source = textwrap.dedent("""
            for epoch in range(2):
                for batch in loader:
                    optimizer.step()
                for batch in loader:
                    helper(batch)
        """)
        analysis = analyze_script(source)
        assert len(analysis.nested_loops()) == 2
        assert len(analysis.instrumentable_loops()) == 1

    def test_loop_scoped_variable_read_after_loop_is_retained(self):
        source = textwrap.dedent("""
            loader = make()
            net = model()
            for epoch in range(2):
                for batch in loader:
                    loss = criterion(net(batch), batch)
                    loss.backward()
                report(loss)
        """)
        analysis = analyze_script(source)
        nested = analysis.nested_loops()[0]
        assert "loss" in nested.changeset

    def test_explain_includes_final_changeset(self):
        analysis = analyze_script(FIGURE6_SCRIPT)
        text = analysis.nested_loops()[0].explain()
        assert "optimizer" in text
        assert "loop-scoped" in text

    def test_analyze_loop_direct(self):
        tree = ast.parse("for i in range(3):\n    acc.update(i)\n")
        loop = tree.body[0]
        analysis = analyze_loop(loop, tree.body, depth=0, is_main=False)
        assert analysis.instrumentable
        assert analysis.changeset == {"acc"}
