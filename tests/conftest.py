"""Shared pytest fixtures.

Every test that records or replays gets an isolated Flor home under the
test's temporary directory, and the process-wide configuration is restored
afterwards so tests cannot leak state into each other.
"""

from __future__ import annotations

import signal
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.config import FlorConfig

# Make shared test helpers (tests/faultutils.py) importable from test
# modules in subdirectories (pytest only inserts each test file's own dir).
_TESTS_DIR = str(Path(__file__).parent)
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)


#: Default wall-clock budget for ``@pytest.mark.multiproc`` and
#: ``@pytest.mark.service`` tests.  A hung worker process (or a service
#: request that never answers) would otherwise stall the whole suite on
#: ``join()``; the alarm turns the hang into a normal test failure
#: (pytest-timeout is not a dependency, so the guard is hand-rolled on
#: SIGALRM).
MULTIPROC_TIMEOUT_SECONDS = 120


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = (item.get_closest_marker("multiproc")
              or item.get_closest_marker("service"))
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.kwargs.get("timeout", MULTIPROC_TIMEOUT_SECONDS))

    def _expired(signum, frame):
        raise TimeoutError(
            f"{marker.name} test exceeded its {seconds}s timeout "
            "(a worker subprocess or service request is likely hung)")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture()
def flor_config(tmp_path):
    """Install an isolated Flor configuration rooted in ``tmp_path``."""
    config = FlorConfig(home=tmp_path / "flor_home",
                        background_materialization="thread")
    repro.set_config(config)
    yield config
    repro.reset_config()


@pytest.fixture()
def sequential_config(tmp_path):
    """Configuration with synchronous materialization (deterministic timing)."""
    config = FlorConfig(home=tmp_path / "flor_home",
                        background_materialization="sequential")
    repro.set_config(config)
    yield config
    repro.reset_config()


@pytest.fixture()
def rng():
    """A seeded NumPy random generator for deterministic model init."""
    return np.random.default_rng(0)
