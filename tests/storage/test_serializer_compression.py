"""Tests for checkpoint serialization and compression."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import torchlike as tl
from repro.storage.compression import compress, compression_ratio, decompress
from repro.storage.serializer import (KIND_PICKLE, KIND_STATE_DICT,
                                      deserialize_checkpoint, restore_value,
                                      serialize_checkpoint, snapshot_value)


class TestSnapshotValue:
    def test_module_snapshotted_via_state_dict(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        snapshot = snapshot_value("net", net)
        assert snapshot.kind == KIND_STATE_DICT
        assert set(snapshot.payload) == {"weight", "bias"}

    def test_optimizer_snapshotted_via_state_dict(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        optimizer = tl.SGD(net.parameters(), lr=0.1, momentum=0.9)
        snapshot = snapshot_value("optimizer", optimizer)
        assert snapshot.kind == KIND_STATE_DICT
        assert "param_values" in snapshot.payload

    def test_plain_value_snapshotted_via_pickle(self):
        snapshot = snapshot_value("epoch", 7)
        assert snapshot.kind == KIND_PICKLE
        assert snapshot.payload == 7

    def test_snapshot_is_a_deep_copy(self):
        value = {"losses": [1.0, 2.0]}
        snapshot = snapshot_value("history", value)
        value["losses"].append(3.0)
        assert snapshot.payload == {"losses": [1.0, 2.0]}

    def test_nbytes_scales_with_payload(self):
        small = snapshot_value("a", np.zeros(10, dtype=np.float32))
        large = snapshot_value("b", np.zeros(10000, dtype=np.float32))
        assert large.nbytes() > small.nbytes()

    def test_nbytes_of_state_dict(self):
        net = tl.Linear(8, 8, rng=np.random.default_rng(0))
        snapshot = snapshot_value("net", net)
        assert snapshot.nbytes() >= 8 * 8 * 4


class TestRestoreValue:
    def test_state_dict_restored_in_place(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        snapshot = snapshot_value("net", net)
        net.weight.data[...] = 0.0
        restored = restore_value(snapshot, net)
        assert restored is net
        assert np.abs(net.weight.data).sum() > 0

    def test_state_dict_without_live_object_returns_copy(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        snapshot = snapshot_value("net", net)
        restored = restore_value(snapshot, None)
        assert isinstance(restored, dict)
        assert "weight" in restored

    def test_pickled_value_returned_as_copy(self):
        snapshot = snapshot_value("history", [1, 2, 3])
        restored = restore_value(snapshot)
        assert restored == [1, 2, 3]
        restored.append(4)
        assert snapshot.payload == [1, 2, 3]

    def test_optimizer_restore_resets_params(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        optimizer = tl.SGD(net.parameters(), lr=0.5)
        snapshot = snapshot_value("optimizer", optimizer)
        original = net.weight.data.copy()
        net.weight.data[...] = 42.0
        restore_value(snapshot, optimizer)
        np.testing.assert_allclose(net.weight.data, original)


class TestSerializeCheckpoint:
    def test_roundtrip(self):
        net = tl.Linear(4, 4, rng=np.random.default_rng(0))
        snapshots = [snapshot_value("net", net), snapshot_value("epoch", 3)]
        serialized = serialize_checkpoint(snapshots)
        assert serialized.nbytes == len(serialized.data)
        assert serialized.serialize_seconds >= 0
        restored = deserialize_checkpoint(serialized.data)
        assert [s.name for s in restored] == ["net", "epoch"]
        np.testing.assert_allclose(restored[0].payload["weight"],
                                   net.state_dict()["weight"])

    def test_corrupt_payload_raises(self):
        from repro.exceptions import SerializationError
        with pytest.raises(SerializationError):
            deserialize_checkpoint(b"not a pickle")

    def test_non_list_payload_rejected(self):
        import pickle

        from repro.exceptions import SerializationError
        with pytest.raises(SerializationError):
            deserialize_checkpoint(pickle.dumps({"oops": 1}))


class TestCompression:
    def test_roundtrip(self):
        data = b"flor " * 1000
        result = compress(data)
        assert result.compressed_nbytes < result.raw_nbytes
        assert decompress(result.data) == data

    def test_decompress_passthrough_for_raw_bytes(self):
        assert decompress(b"plain bytes") == b"plain bytes"

    def test_ratio_greater_than_one_for_redundant_data(self):
        assert compression_ratio(b"a" * 10000) > 10

    def test_ratio_close_to_one_for_random_data(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=10000, dtype=np.uint8).tobytes()
        assert compression_ratio(data) < 1.2

    @given(st.binary(min_size=0, max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        assert decompress(compress(data).data) == data
