"""Tests for checkpoint serialization and compression."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import torchlike as tl
from repro.exceptions import SerializationError, StorageError
from repro.storage.compression import (CODEC_NAMES, FRAME_MAGIC, codec_of,
                                       compress, compression_ratio,
                                       decompress, get_codec)
from repro.storage.serializer import (KIND_ARRAY, KIND_PICKLE,
                                      KIND_STATE_DICT, SERIALIZED_MAGIC,
                                      ValueSnapshot, deserialize_checkpoint,
                                      payload_segments, restore_value,
                                      serialize_checkpoint, snapshot_value)


class TestSnapshotValue:
    def test_module_snapshotted_via_state_dict(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        snapshot = snapshot_value("net", net)
        assert snapshot.kind == KIND_STATE_DICT
        assert set(snapshot.payload) == {"weight", "bias"}

    def test_optimizer_snapshotted_via_state_dict(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        optimizer = tl.SGD(net.parameters(), lr=0.1, momentum=0.9)
        snapshot = snapshot_value("optimizer", optimizer)
        assert snapshot.kind == KIND_STATE_DICT
        assert "param_values" in snapshot.payload

    def test_plain_value_snapshotted_via_pickle(self):
        snapshot = snapshot_value("epoch", 7)
        assert snapshot.kind == KIND_PICKLE
        assert snapshot.payload == 7

    def test_snapshot_is_a_deep_copy(self):
        value = {"losses": [1.0, 2.0]}
        snapshot = snapshot_value("history", value)
        value["losses"].append(3.0)
        assert snapshot.payload == {"losses": [1.0, 2.0]}

    def test_nbytes_scales_with_payload(self):
        small = snapshot_value("a", np.zeros(10, dtype=np.float32))
        large = snapshot_value("b", np.zeros(10000, dtype=np.float32))
        assert large.nbytes() > small.nbytes()

    def test_nbytes_of_state_dict(self):
        net = tl.Linear(8, 8, rng=np.random.default_rng(0))
        snapshot = snapshot_value("net", net)
        assert snapshot.nbytes() >= 8 * 8 * 4


class TestRestoreValue:
    def test_state_dict_restored_in_place(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        snapshot = snapshot_value("net", net)
        net.weight.data[...] = 0.0
        restored = restore_value(snapshot, net)
        assert restored is net
        assert np.abs(net.weight.data).sum() > 0

    def test_state_dict_without_live_object_returns_copy(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        snapshot = snapshot_value("net", net)
        restored = restore_value(snapshot, None)
        assert isinstance(restored, dict)
        assert "weight" in restored

    def test_pickled_value_returned_as_copy(self):
        snapshot = snapshot_value("history", [1, 2, 3])
        restored = restore_value(snapshot)
        assert restored == [1, 2, 3]
        restored.append(4)
        assert snapshot.payload == [1, 2, 3]

    def test_optimizer_restore_resets_params(self):
        net = tl.Linear(3, 2, rng=np.random.default_rng(0))
        optimizer = tl.SGD(net.parameters(), lr=0.5)
        snapshot = snapshot_value("optimizer", optimizer)
        original = net.weight.data.copy()
        net.weight.data[...] = 42.0
        restore_value(snapshot, optimizer)
        np.testing.assert_allclose(net.weight.data, original)


class TestSerializeCheckpoint:
    def test_roundtrip(self):
        net = tl.Linear(4, 4, rng=np.random.default_rng(0))
        snapshots = [snapshot_value("net", net), snapshot_value("epoch", 3)]
        serialized = serialize_checkpoint(snapshots)
        assert serialized.nbytes == len(serialized.data)
        assert serialized.serialize_seconds >= 0
        restored = deserialize_checkpoint(serialized.data)
        assert [s.name for s in restored] == ["net", "epoch"]
        np.testing.assert_allclose(restored[0].payload["weight"],
                                   net.state_dict()["weight"])

    def test_corrupt_payload_raises(self):
        from repro.exceptions import SerializationError
        with pytest.raises(SerializationError):
            deserialize_checkpoint(b"not a pickle")

    def test_non_list_payload_rejected(self):
        import pickle

        from repro.exceptions import SerializationError
        with pytest.raises(SerializationError):
            deserialize_checkpoint(pickle.dumps({"oops": 1}))


class TestCompression:
    def test_roundtrip(self):
        data = b"flor " * 1000
        result = compress(data)
        assert result.compressed_nbytes < result.raw_nbytes
        assert decompress(result.data) == data

    def test_decompress_passthrough_for_raw_bytes(self):
        assert decompress(b"plain bytes") == b"plain bytes"

    def test_ratio_greater_than_one_for_redundant_data(self):
        assert compression_ratio(b"a" * 10000) > 10

    def test_ratio_close_to_one_for_random_data(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=10000, dtype=np.uint8).tobytes()
        assert compression_ratio(data) < 1.2

    @given(st.binary(min_size=0, max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, data):
        assert decompress(compress(data).data) == data


class TestCodecRegistry:
    @pytest.mark.parametrize("codec", sorted(CODEC_NAMES))
    def test_every_codec_roundtrips(self, codec):
        data = b"flor " * 1000
        result = compress(data, codec=codec)
        assert result.codec == codec
        assert decompress(result.data) == data

    @pytest.mark.parametrize("codec", sorted(CODEC_NAMES))
    def test_frame_carries_the_codec_id(self, codec):
        stored = compress(b"payload", codec=codec).data
        assert stored[:4] == FRAME_MAGIC
        assert stored[4] == get_codec(codec).codec_id
        assert codec_of(stored) == codec

    def test_raw_codec_frames_without_transforming(self):
        data = b"\x1f\x8b pretend gzip magic inside content"
        result = compress(data, codec="raw")
        # Framing disambiguates: raw chunk bytes that *start with* the
        # gzip magic still decode as themselves, not as a gzip stream.
        assert result.data[5:] == data
        assert decompress(result.data) == data

    def test_unknown_codec_rejected(self):
        with pytest.raises(StorageError, match="codec"):
            compress(b"data", codec="zstd")

    def test_unknown_codec_id_in_frame_rejected(self):
        with pytest.raises(StorageError):
            decompress(FRAME_MAGIC + bytes([250]) + b"junk")

    def test_corrupt_framed_stream_raises_storage_error(self):
        stored = bytearray(compress(b"flor " * 200, codec="zlib").data)
        stored[10] ^= 0xFF
        with pytest.raises(StorageError):
            decompress(bytes(stored))

    def test_levels_change_output_not_value(self):
        data = (b"abcd" * 4096) + bytes(1000)
        fast = compress(data, codec="gzip", level=1)
        best = compress(data, codec="gzip", level=9)
        assert decompress(fast.data) == decompress(best.data) == data
        assert best.compressed_nbytes <= fast.compressed_nbytes

    def test_legacy_bare_gzip_still_decompresses(self):
        import gzip
        legacy = gzip.compress(b"recorded before framing", mtime=0)
        assert decompress(legacy) == b"recorded before framing"


class TestFramedSerialization:
    def test_frame_magic_and_segments(self):
        weights = np.random.default_rng(0).standard_normal(512)
        data = serialize_checkpoint([snapshot_value("w", weights)]).data
        assert data[:4] == SERIALIZED_MAGIC
        segments = payload_segments(data)
        # One head segment plus one out-of-band buffer per ndarray leaf.
        assert len(segments) == 2
        assert segments[1][1] == weights.nbytes
        # Segments tile the payload exactly.
        assert sum(length for _, length in segments) == len(data)

    def test_state_dict_leaves_become_buffers(self):
        net = tl.Linear(16, 16, rng=np.random.default_rng(0))
        data = serialize_checkpoint([snapshot_value("net", net)]).data
        segments = payload_segments(data)
        sizes = sorted(length for _, length in segments[1:])
        weight_nbytes = net.state_dict()["weight"].nbytes
        assert weight_nbytes in sizes  # the weight matrix travels raw

    def test_deserialized_arrays_equal_and_restorable(self):
        net = tl.Linear(4, 4, rng=np.random.default_rng(0))
        restored = deserialize_checkpoint(serialize_checkpoint(
            [snapshot_value("net", net)]).data)
        fresh = tl.Linear(4, 4, rng=np.random.default_rng(1))
        restore_value(restored[0], fresh)
        np.testing.assert_array_equal(fresh.weight.data, net.weight.data)

    def test_truncated_frame_raises(self):
        data = serialize_checkpoint(
            [snapshot_value("w", np.zeros(256))]).data
        with pytest.raises(SerializationError, match="corrupt framed"):
            deserialize_checkpoint(data[:len(data) - 7])

    def test_trailing_garbage_raises(self):
        data = serialize_checkpoint(
            [snapshot_value("w", np.zeros(256))]).data
        with pytest.raises(SerializationError, match="corrupt framed"):
            deserialize_checkpoint(data + b"extra")

    def test_legacy_plain_pickle_payload_still_deserializes(self):
        legacy = pickle.dumps([ValueSnapshot(name="epoch", kind=KIND_PICKLE,
                                             payload=3)])
        restored = deserialize_checkpoint(legacy)
        assert restored[0].payload == 3

    def test_empty_snapshot_list_roundtrips(self):
        data = serialize_checkpoint([]).data
        assert deserialize_checkpoint(data) == []


class TestSnapshotCaching:
    def test_pickle_kind_captures_at_snapshot_time(self):
        value = {"losses": [1.0]}
        snapshot = snapshot_value("history", value)
        value["losses"].append(2.0)  # mutate after capture
        assert snapshot.payload == {"losses": [1.0]}
        # fresh_payload hands out independent copies every call.
        first, second = snapshot.fresh_payload(), snapshot.fresh_payload()
        first["losses"].append(99.0)
        assert second == {"losses": [1.0]}

    def test_array_kind_copies_at_snapshot_time(self):
        live = np.zeros(8)
        snapshot = snapshot_value("arr", live)
        assert snapshot.kind == KIND_ARRAY
        live[:] = 7.0
        np.testing.assert_array_equal(snapshot.payload, np.zeros(8))

    def test_nbytes_cached_and_honest(self):
        weights = np.zeros(1000, dtype=np.float64)
        snapshot = snapshot_value("w", weights)
        assert snapshot.nbytes() == weights.nbytes
        assert snapshot.nbytes() is not None
        assert snapshot._nbytes == weights.nbytes  # computed once, cached

    def test_scalar_leaves_sized_honestly_not_flat_64(self):
        # The seed charged 64 bytes per non-array leaf; a state dict of
        # four scalars must now cost ~8 bytes each, not 256.
        snapshot = ValueSnapshot(name="s", kind=KIND_STATE_DICT,
                                 payload={"a": 1, "b": 2.0, "c": True,
                                          "d": None})
        assert snapshot.nbytes() == 32

    def test_unpicklable_value_fails_at_capture_time(self):
        with pytest.raises(SerializationError, match="cannot be checkpointed"):
            snapshot_value("bad", lambda x: x)

    def test_snapshot_pickles_without_materializing_payload(self):
        snapshot = snapshot_value("history", list(range(100)))
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.payload == list(range(100))
        assert clone.name == "history" and clone.kind == KIND_PICKLE
