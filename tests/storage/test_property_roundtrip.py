"""Property-style round-trips for the serializer + compression codecs.

Seeded generators walk the space of checkpointable values — every dtype
the torchlike substrate produces, scalars, strings, lists, and nested
state-dict-shaped mappings — and assert the two properties the storage
layer's new content-addressed plane leans on:

* **round-trip fidelity** — serialize → compress → decompress →
  deserialize is the identity on snapshot lists;
* **digest stability** — the stored bytes (and therefore the payload's
  content address) are a pure function of the value: stable across
  repeated serialization, across interpreter processes, and across the
  compression boundary.  Without this (e.g. the gzip header's default
  wall-clock mtime), identical checkpoints would hash differently and
  dedup would silently never fire.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.storage.compression import FRAME_MAGIC, compress, decompress
from repro.storage.serializer import (ValueSnapshot, deserialize_checkpoint,
                                      serialize_checkpoint, snapshot_value)
from repro.utils.hashing import digest_bytes

DTYPES = [np.float32, np.float64, np.int8, np.int32, np.int64, np.uint8,
          np.bool_, np.complex128]

SHAPES = [(), (1,), (7,), (3, 4), (2, 3, 5), (0,), (4, 0, 2)]


def random_array(rng: np.random.Generator) -> np.ndarray:
    dtype = DTYPES[rng.integers(len(DTYPES))]
    shape = SHAPES[rng.integers(len(SHAPES))]
    if dtype is np.bool_:
        return rng.integers(0, 2, size=shape).astype(np.bool_)
    if dtype is np.complex128:
        return (rng.standard_normal(shape)
                + 1j * rng.standard_normal(shape)).astype(dtype)
    if np.issubdtype(dtype, np.integer):
        info = np.iinfo(dtype)
        return rng.integers(info.min, info.max, size=shape,
                            dtype=np.int64).astype(dtype)
    return rng.standard_normal(shape).astype(dtype)


def random_value(rng: np.random.Generator, depth: int = 0):
    """A random checkpointable value, biased toward state-dict shapes."""
    roll = rng.integers(8 if depth < 2 else 6)
    if roll <= 2:
        return random_array(rng)
    if roll == 3:
        return float(rng.standard_normal())
    if roll == 4:
        return int(rng.integers(-10**12, 10**12))
    if roll == 5:
        return "".join(chr(int(c)) for c in
                       rng.integers(32, 0x2FA, size=rng.integers(0, 20)))
    if roll == 6:
        return [random_value(rng, depth + 1)
                for _ in range(rng.integers(0, 4))]
    # Nested dicts model torchlike state dicts (module -> param -> array).
    return {f"layer{i}.{key}": random_value(rng, depth + 1)
            for i, key in enumerate(
                ["weight", "bias", "running_mean"][:rng.integers(1, 4)])}


def random_snapshots(seed: int) -> list[ValueSnapshot]:
    rng = np.random.default_rng(seed)
    return [snapshot_value(f"value_{i}", random_value(rng))
            for i in range(int(rng.integers(1, 5)))]


def assert_equal_values(left, right) -> None:
    if isinstance(left, np.ndarray):
        assert isinstance(right, np.ndarray)
        assert left.dtype == right.dtype and left.shape == right.shape
        np.testing.assert_array_equal(left, right)
    elif isinstance(left, dict):
        assert set(left) == set(right)
        for key in left:
            assert_equal_values(left[key], right[key])
    elif isinstance(left, list):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert_equal_values(a, b)
    else:
        assert left == right


class TestRoundTripProperties:
    @pytest.mark.parametrize("seed", range(25))
    def test_serialize_compress_roundtrip_is_identity(self, seed):
        snapshots = random_snapshots(seed)
        serialized = serialize_checkpoint(snapshots)
        stored = compress(serialized.data).data
        restored = deserialize_checkpoint(decompress(stored))
        assert [s.name for s in restored] == [s.name for s in snapshots]
        assert [s.kind for s in restored] == [s.kind for s in snapshots]
        for original, roundtripped in zip(snapshots, restored):
            assert_equal_values(original.payload, roundtripped.payload)

    @pytest.mark.parametrize("seed", range(25))
    def test_stored_bytes_are_deterministic_in_process(self, seed):
        first = compress(serialize_checkpoint(random_snapshots(seed)).data)
        second = compress(serialize_checkpoint(random_snapshots(seed)).data)
        assert first.data == second.data
        assert digest_bytes(first.data) == digest_bytes(second.data)

    @pytest.mark.parametrize("seed", [0, 7])
    def test_different_seeds_rarely_collide(self, seed):
        a = compress(serialize_checkpoint(random_snapshots(seed)).data).data
        b = compress(serialize_checkpoint(
            random_snapshots(seed + 1000)).data).data
        assert digest_bytes(a) != digest_bytes(b)


_SUBPROCESS_DIGEST = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {tests!r})
from repro.storage.compression import compress
from repro.storage.serializer import serialize_checkpoint
from repro.utils.hashing import digest_bytes
from test_property_roundtrip import random_snapshots
for seed in {seeds!r}:
    data = compress(serialize_checkpoint(random_snapshots(seed)).data).data
    print(seed, digest_bytes(data))
"""


class TestDigestStabilityAcrossProcesses:
    SEEDS = [0, 3, 11, 42]

    def test_payload_digest_matches_in_fresh_interpreter(self):
        """The content address is a function of the value, not the process.

        A fresh interpreter (fresh hash randomization, fresh wall clock)
        must serialize + compress the same seeded snapshots to the same
        bytes — the property cross-run dedup stands on.
        """
        here = Path(__file__).resolve()
        script = _SUBPROCESS_DIGEST.format(
            src=str(here.parents[2] / "src"),
            tests=str(here.parent), seeds=self.SEEDS)
        output = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            timeout=120, check=True).stdout
        theirs = dict(line.split() for line in output.strip().splitlines())
        for seed in self.SEEDS:
            data = compress(
                serialize_checkpoint(random_snapshots(seed)).data).data
            assert theirs[str(seed)] == digest_bytes(data), (
                f"seed {seed}: digest differs across processes")

    def test_gzip_header_timestamp_is_pinned(self):
        """The gzip MTIME field must be zero, not now().

        Stored blobs are codec-framed (``FLC1`` magic + codec id byte);
        the gzip stream starts after that 5-byte header, and its bytes
        4-8 (MTIME) must be pinned so equal payloads compress to equal
        bytes regardless of wall clock.
        """
        stored = compress(b"payload " * 64).data
        assert stored[:4] == FRAME_MAGIC
        stream = stored[5:]
        assert stream[:2] == b"\x1f\x8b"
        assert stream[4:8] == b"\x00\x00\x00\x00"
