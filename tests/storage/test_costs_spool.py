"""Tests for the cloud cost model and the background spooler."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import SimulationError
from repro.storage.costs import (GiB, INSTANCE_PRICES, S3_PRICE_PER_GB_MONTH,
                                 compute_cost, gb, storage_cost_per_month)
from repro.storage.spool import BackgroundSpooler


class TestStorageCosts:
    def test_rsnt_monthly_cost_matches_table4(self):
        """Table 4: 39 GB of RsNt checkpoints cost ~$0.90 per month."""
        assert storage_cost_per_month(39 * GiB) == pytest.approx(0.897, abs=0.01)

    def test_imgn_monthly_cost_matches_table4(self):
        """Table 4: 51 MB of ImgN checkpoints cost ~$0.001 per month."""
        assert storage_cost_per_month(51 * 1024 ** 2) == pytest.approx(0.0011,
                                                                       abs=0.0005)

    def test_all_table4_workloads_under_a_dollar(self):
        """Section 6.2: every workload's checkpoints cost < $1.00/month."""
        from repro.workloads.registry import WORKLOADS
        for spec in WORKLOADS.values():
            assert storage_cost_per_month(spec.checkpoint_nbytes) < 1.00

    def test_130gb_costs_about_one_gpu_hour(self):
        """Section 6.2: storing 130 GB for a month ~ one single-GPU hour."""
        storage = storage_cost_per_month(130 * GiB)
        gpu_hour = compute_cost(1.0, instance="p3.2xlarge")
        assert storage == pytest.approx(gpu_hour, rel=0.05)

    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            storage_cost_per_month(-1)

    def test_gb_conversion(self):
        assert gb(GiB) == pytest.approx(1.0)


class TestComputeCosts:
    def test_p3_8xlarge_hourly_price(self):
        assert INSTANCE_PRICES["p3.8xlarge"].hourly_usd == pytest.approx(12.24)
        assert INSTANCE_PRICES["p3.8xlarge"].gpus == 4

    def test_linear_in_hours_and_count(self):
        single = compute_cost(2.0, "p3.2xlarge")
        assert compute_cost(4.0, "p3.2xlarge") == pytest.approx(2 * single)
        assert compute_cost(2.0, "p3.2xlarge", count=3) == pytest.approx(3 * single)

    def test_parallel_cost_roughly_equals_serial_cost(self):
        """Figure 14's core point: 4 GPUs for T/4 hours ~ 1 GPU for T hours."""
        serial = compute_cost(12.0, "p3.2xlarge")
        parallel = compute_cost(3.0, "p3.8xlarge")
        assert parallel == pytest.approx(serial, rel=0.01)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            compute_cost(-1.0)
        with pytest.raises(SimulationError):
            compute_cost(1.0, "m5.large")
        with pytest.raises(SimulationError):
            compute_cost(1.0, count=0)


class TestBackgroundSpooler:
    def test_spools_files_to_bucket(self, tmp_path):
        source_dir = tmp_path / "checkpoints"
        source_dir.mkdir()
        files = []
        for index in range(3):
            path = source_dir / f"ckpt_{index}.bin"
            path.write_bytes(b"x" * 1000)
            files.append(path)

        bucket = tmp_path / "bucket"
        with BackgroundSpooler(bucket) as spooler:
            for path in files:
                spooler.submit(path)
        stats = spooler.stats
        assert stats.objects == 3
        assert stats.bytes_transferred == 3000
        assert sorted(p.name for p in bucket.iterdir()) == [
            "ckpt_0.bin", "ckpt_1.bin", "ckpt_2.bin"]
        assert stats.monthly_cost_usd > 0

    def test_missing_file_recorded_as_error(self, tmp_path):
        spooler = BackgroundSpooler(tmp_path / "bucket").start()
        spooler.submit(tmp_path / "does-not-exist.bin")
        stats = spooler.close()
        assert stats.objects == 0
        assert len(stats.errors) == 1

    def test_close_without_start_is_safe(self, tmp_path):
        spooler = BackgroundSpooler(tmp_path / "bucket")
        assert spooler.close().objects == 0

    def test_start_twice_is_idempotent(self, tmp_path):
        spooler = BackgroundSpooler(tmp_path / "bucket")
        spooler.start()
        spooler.start()
        (tmp_path / "file.bin").write_bytes(b"abc")
        spooler.submit(tmp_path / "file.bin")
        # Give the background thread a moment, then close and verify.
        time.sleep(0.05)
        assert spooler.close().objects == 1
