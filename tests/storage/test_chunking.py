"""Delta checkpoints: chunk planning, recipe rows, GC safety, crash battery.

Four layers of coverage for the chunked (delta) storage plane:

* chunk planning — :func:`chunk_spans` edge cases: empty payloads,
  payloads smaller than one chunk, exact coverage, segment restarts,
  CDC determinism and locality (an edit disturbs only nearby chunks);
* store semantics — epoch N+1 of a mostly-frozen model stores only the
  changed chunks; the knobs (``chunk_nbytes``, mode, codec) can change
  between epochs of one run because reads follow the manifest row;
* failure reporting — a missing or corrupted chunk surfaces as a
  :class:`SerializationError` naming the exact chunk, never as silent
  wrong bytes;
* lifecycle + crashes — GC never collects a chunk any recipe still
  references, derived refcounts count recipe digests, and the
  :class:`faultutils.FaultInjector` battery covers crashes mid-recipe
  (between chunk blob writes) and mid-manifest-commit.
"""

from __future__ import annotations

import numpy as np
import pytest

from faultutils import (InjectedCrash, assert_crash_consistent,
                        assert_no_orphans, assert_refcounts_exact,
                        crash_calls)
from repro.exceptions import SerializationError, StorageError
from repro.storage.backends import InMemoryBackend
from repro.storage.checkpoint_store import (RECIPE_LOCATION_PREFIX,
                                            CheckpointStore)
from repro.storage.chunking import chunk_payload, chunk_spans
from repro.storage.objectstore import MemoryObjectStore
from repro.storage.serializer import (payload_segments, serialize_checkpoint,
                                      snapshot_value)
from repro.utils.hashing import digest_bytes

BACKENDS = ["local", "memory", "sharded"]

#: Small target so modest test payloads span many chunks.
CHUNK = 1024


@pytest.fixture(params=BACKENDS)
def backend_name(request):
    return request.param


@pytest.fixture()
def home(tmp_path):
    yield tmp_path
    for run in ("run", "run-a", "run-b"):
        InMemoryBackend.discard_dir(tmp_path / run)
    MemoryObjectStore.discard_dir(tmp_path)


def open_store(home, backend_name, run="run", **kwargs):
    kwargs.setdefault("chunking", "fixed")
    kwargs.setdefault("chunk_nbytes", CHUNK)
    return CheckpointStore(home / run, backend=backend_name, num_shards=3,
                           **kwargs)


def model_snapshots(head_value: float, *, backbone_seed: int = 0,
                    backbone_size: int = 8192, head_size: int = 256):
    """A fine-tune-shaped checkpoint: big frozen backbone, small live head."""
    rng = np.random.default_rng(backbone_seed)
    backbone = rng.standard_normal(backbone_size).astype(np.float32)
    head = np.full(head_size, head_value, dtype=np.float32)
    return [snapshot_value("backbone", backbone),
            snapshot_value("head", head),
            snapshot_value("epoch", head_value)]


# --------------------------------------------------------------------------- #
# Chunk planning
# --------------------------------------------------------------------------- #
class TestChunkSpans:
    def test_empty_payload_has_no_chunks(self):
        assert chunk_spans(b"", mode="fixed", chunk_nbytes=CHUNK) == []
        assert chunk_spans(b"", mode="cdc", chunk_nbytes=CHUNK) == []

    def test_payload_smaller_than_one_chunk_is_one_span(self):
        data = b"tiny"
        for mode in ("fixed", "cdc"):
            assert chunk_spans(data, mode=mode, chunk_nbytes=CHUNK) \
                == [(0, len(data))]

    @pytest.mark.parametrize("mode", ["fixed", "cdc"])
    @pytest.mark.parametrize("n", [1, CHUNK - 1, CHUNK, CHUNK + 1,
                                   5 * CHUNK + 17])
    def test_spans_cover_payload_exactly_in_order(self, mode, n):
        data = np.random.default_rng(n).bytes(n)
        spans = chunk_spans(data, mode=mode, chunk_nbytes=CHUNK)
        offset = 0
        for start, length in spans:
            assert start == offset and length > 0
            offset += length
        assert offset == n

    def test_off_mode_is_one_whole_span(self):
        data = bytes(10 * CHUNK)
        assert chunk_spans(data, mode="off", chunk_nbytes=CHUNK) \
            == [(0, len(data))]

    def test_unknown_mode_raises(self):
        with pytest.raises(StorageError, match="chunking mode"):
            chunk_spans(b"x", mode="rolling", chunk_nbytes=CHUNK)

    def test_fixed_restarts_at_segment_boundaries(self):
        # Two segments that are not multiples of the chunk size: boundaries
        # must restart at the segment edge, not run across it.
        data = bytes(3 * CHUNK + 100) + bytes(2 * CHUNK + 7)
        segments = [(0, 3 * CHUNK + 100), (3 * CHUNK + 100, 2 * CHUNK + 7)]
        spans = chunk_spans(data, mode="fixed", chunk_nbytes=CHUNK,
                            segments=segments)
        starts = [start for start, _ in spans]
        assert 3 * CHUNK + 100 in starts

    def test_tiny_segments_coalesce(self):
        # A run of sub-floor segments must merge instead of shattering the
        # payload into confetti-sized chunks.
        n = 64
        segments = [(i * 8, 8) for i in range(n)]
        data = bytes(n * 8)
        spans = chunk_spans(data, mode="fixed", chunk_nbytes=CHUNK,
                            segments=segments)
        # Merging stops once a group reaches the floor (chunk_nbytes // 4),
        # so every span except possibly the last is at least floor-sized —
        # never one blob per 8-byte segment.
        assert len(spans) < n // 4
        assert all(length >= CHUNK // 4 for _, length in spans[:-1])

    def test_non_contiguous_segments_raise(self):
        # Both segments are sub-floor, so a merge is attempted — and the
        # gap between them must be rejected, not silently spanned.
        with pytest.raises(StorageError, match="not contiguous"):
            chunk_spans(bytes(100), mode="fixed", chunk_nbytes=CHUNK,
                        segments=[(0, 8), (50, 50)])

    def test_cdc_is_deterministic(self):
        data = np.random.default_rng(7).bytes(40 * CHUNK)
        first = chunk_spans(data, mode="cdc", chunk_nbytes=CHUNK)
        second = chunk_spans(data, mode="cdc", chunk_nbytes=CHUNK)
        assert first == second
        assert len(first) > 1

    def test_cdc_respects_size_bounds(self):
        data = np.random.default_rng(11).bytes(64 * CHUNK)
        spans = chunk_spans(data, mode="cdc", chunk_nbytes=CHUNK)
        lengths = [length for _, length in spans]
        # Every chunk except the segment-final remainder obeys the bounds.
        assert all(length >= CHUNK // 4 for length in lengths[:-1])
        assert all(length <= CHUNK * 4 for length in lengths)

    def test_cdc_edit_disturbs_only_nearby_chunks(self):
        """The CDC property fixed chunking lacks: locality under insertion.

        Inserting bytes near the front shifts every fixed boundary after
        it (no chunk downstream dedups); content-defined boundaries
        resynchronize, so most chunk digests survive the edit.
        """
        rng = np.random.default_rng(3)
        original = rng.bytes(100 * CHUNK)
        edited = original[:5000] + b"\x00" * 37 + original[5000:]

        def digest_set(data):
            return {digest_bytes(view)
                    for view in chunk_payload(data, mode="cdc",
                                              chunk_nbytes=CHUNK)}

        before, after = digest_set(original), digest_set(edited)
        assert len(before & after) / len(before) > 0.8

        fixed_before = {digest_bytes(v) for v in chunk_payload(
            original, mode="fixed", chunk_nbytes=CHUNK)}
        fixed_after = {digest_bytes(v) for v in chunk_payload(
            edited, mode="fixed", chunk_nbytes=CHUNK)}
        # The contrast: fixed boundaries all shift after the insertion.
        assert len(fixed_before & fixed_after) / len(fixed_before) < 0.2

    def test_serializer_segments_align_tensor_chunks(self):
        """An unchanged tensor chunks identically when a neighbour grows."""
        rng = np.random.default_rng(0)
        big = rng.integers(0, 256, size=4 * CHUNK, dtype=np.uint8)
        a = serialize_checkpoint([snapshot_value("pad", b"x" * 10),
                                  snapshot_value("frozen", big)]).data
        b = serialize_checkpoint([snapshot_value("pad", b"y" * 500),
                                  snapshot_value("frozen", big)]).data

        def digests(data):
            return {digest_bytes(view) for view in chunk_payload(
                data, mode="fixed", chunk_nbytes=CHUNK,
                segments=payload_segments(data))}

        shared = digests(a) & digests(b)
        # The frozen tensor's interior chunks dedup despite the shifted
        # pickle head in front of it.
        assert len(shared) >= (4 * CHUNK) // CHUNK - 1


# --------------------------------------------------------------------------- #
# Store semantics: delta writes, knob changes, cross-layout reads
# --------------------------------------------------------------------------- #
class TestDeltaWrites:
    @pytest.mark.parametrize("mode", ["fixed", "cdc"])
    def test_epoch_deltas_store_only_changed_chunks(self, home, backend_name,
                                                    mode):
        store = open_store(home, backend_name, chunking=mode)
        objects = store.backend.object_store()
        first = store.put("train", 0, model_snapshots(0.0))
        first_growth = objects.stats().total_nbytes
        second = store.put("train", 1, model_snapshots(1.0))
        second_growth = objects.stats().total_nbytes - first_growth
        assert first.is_chunked() and second.is_chunked()
        assert str(second.path).startswith(RECIPE_LOCATION_PREFIX)
        # The frozen backbone dedups: epoch 1 physically stores well under
        # half of what epoch 0 did (only head + epoch-counter chunks are
        # new); the row's stored_nbytes still reports the full logical
        # footprint of the blobs its recipe references.
        assert second_growth < first_growth / 2
        assert second.stored_nbytes >= second_growth
        shared = set(first.recipe_digests()) & set(second.recipe_digests())
        assert shared

    def test_roundtrip_restores_values(self, home, backend_name):
        store = open_store(home, backend_name)
        store.put("train", 0, model_snapshots(3.0))
        restored = {s.name: s for s in store.get("train", 0)}
        np.testing.assert_array_equal(
            restored["head"].payload,
            np.full(256, 3.0, dtype=np.float32))
        assert restored["epoch"].payload == 3.0

    def test_chunk_size_knob_can_change_between_epochs(self, home,
                                                       backend_name):
        """Reads follow the manifest row, not the store's current knob."""
        store = open_store(home, backend_name, chunk_nbytes=CHUNK)
        store.put("train", 0, model_snapshots(0.0))
        store.close()
        store = open_store(home, backend_name, chunk_nbytes=4 * CHUNK)
        store.put("train", 1, model_snapshots(1.0))
        for index in (0, 1):
            restored = {s.name: s for s in store.get("train", index)}
            assert restored["epoch"].payload == float(index)

    def test_any_store_setting_replays_any_layout(self, home, backend_name):
        recorder = open_store(home, backend_name, chunking="fixed")
        recorder.put("train", 0, model_snapshots(0.0))
        recorder.close()
        legacy = open_store(home, backend_name, chunking="off")
        legacy.put("train", 1, model_snapshots(1.0))
        record = legacy.backend.lookup("train", 1)
        assert not record.is_chunked()
        legacy.close()
        # A chunking-off store reads the chunked row; a cdc store reads
        # both the chunked-fixed and the whole row.
        reader = open_store(home, backend_name, chunking="off")
        assert {s.name: s.payload for s in reader.get("train", 0)}[
            "epoch"] == 0.0
        reader.close()
        reader = open_store(home, backend_name, chunking="cdc")
        for index in (0, 1):
            assert {s.name: s.payload for s in reader.get("train", index)}[
                "epoch"] == float(index)

    def test_uncompressed_store_frames_chunks_raw(self, home, backend_name):
        """Chunk digests address raw bytes, so dedup crosses codec settings."""
        plain = open_store(home, backend_name, compress=False)
        first = plain.put("train", 0, model_snapshots(0.0))
        gzipped = open_store(home, backend_name, run="run-b", compress=True)
        second = gzipped.put("train", 0, model_snapshots(0.0))
        assert first.recipe_digests() == second.recipe_digests()
        # The uncompressed store wrote every blob; the gzip store found
        # them all already present and stored nothing new.
        assert second.stored_nbytes == first.stored_nbytes
        restored = {s.name: s for s in gzipped.get("train", 0)}
        assert restored["epoch"].payload == 0.0

    def test_empty_snapshot_list_roundtrips(self, home, backend_name):
        store = open_store(home, backend_name)
        record = store.put("train", 0, [])
        assert record.is_chunked()
        assert store.get("train", 0) == []


# --------------------------------------------------------------------------- #
# Failure reporting: missing and corrupted chunks
# --------------------------------------------------------------------------- #
class TestChunkFailures:
    def test_missing_chunk_names_the_chunk(self, home, backend_name):
        store = open_store(home, backend_name)
        record = store.put("train", 0, model_snapshots(0.0))
        victim = record.recipe_digests()[1]
        store.backend.object_store().delete([victim])
        with pytest.raises(SerializationError,
                           match=r"chunk 2/\d+ is missing"):
            store.get("train", 0)

    def test_corrupted_chunk_names_the_chunk(self, home):
        store = open_store(home, "local")
        record = store.put("train", 0, model_snapshots(0.0))
        victim = record.recipe_digests()[0]
        objects = store.backend.object_store()
        blob_path = objects.blob_path(victim)
        blob = bytearray(blob_path.read_bytes())
        blob[7] ^= 0xFF  # flip one bit inside the codec stream
        blob_path.write_bytes(bytes(blob))
        with pytest.raises(SerializationError,
                           match=r"chunk 1/\d+ .*(corrupt|failed to decode)"):
            store.get("train", 0)

    def test_swapped_chunk_content_fails_digest_check(self, home):
        """A decodable-but-wrong blob is caught by the per-chunk digest."""
        store = open_store(home, "local", compress=False)
        record = store.put("train", 0, model_snapshots(0.0))
        digests = record.recipe_digests()
        objects = store.backend.object_store()
        # Overwrite chunk 0's blob with chunk 1's (valid frame, wrong bytes).
        objects.blob_path(digests[0]).write_bytes(
            objects.blob_path(digests[1]).read_bytes())
        with pytest.raises(SerializationError, match=r"chunk 1/\d+ is corrupt"):
            store.get("train", 0)


# --------------------------------------------------------------------------- #
# Lifecycle: GC never collects a recipe-referenced chunk
# --------------------------------------------------------------------------- #
class TestRecipeLifecycle:
    def test_gc_keeps_chunks_any_recipe_references(self, home, backend_name):
        from repro.storage.lifecycle import RetentionPolicy, prune_store
        store = open_store(home, backend_name)
        for index in range(3):
            store.put("train", index, model_snapshots(float(index)))
        prune_store(store, RetentionPolicy(keep_last_n=1))
        report = store.gc(grace_seconds=0.0)
        assert report.swept_objects >= 1
        # The surviving row still reads perfectly after the sweep.
        restored = {s.name: s for s in store.get("train", 2)}
        assert restored["epoch"].payload == 2.0
        assert_no_orphans(home)

    def test_cross_run_shared_chunks_survive_one_runs_retirement(
            self, home, backend_name):
        from repro.storage.lifecycle import retire_run
        a = open_store(home, backend_name, run="run-a")
        b = open_store(home, backend_name, run="run-b")
        a.put("train", 0, model_snapshots(0.0))
        b.put("train", 0, model_snapshots(0.0))  # same chunks, second run
        retire_run(a)
        a.gc(grace_seconds=0.0)
        a.close()
        restored = {s.name: s for s in b.get("train", 0)}
        assert restored["epoch"].payload == 0.0

    def test_derived_refcounts_count_recipe_digests(self, home, backend_name):
        store = open_store(home, backend_name)
        store.put("train", 0, model_snapshots(0.0))
        store.put("train", 1, model_snapshots(1.0))
        store.flush()
        assert_refcounts_exact(home, [store])


# --------------------------------------------------------------------------- #
# Crash battery: mid-recipe-commit and mid-manifest-commit deaths
# --------------------------------------------------------------------------- #
class TestChunkCrashConsistency:
    @pytest.mark.parametrize("on_call", [1, 3])
    def test_crash_between_chunk_blob_writes(self, home, backend_name,
                                             on_call):
        """Dying mid-recipe strands blobs but never a dangling row."""
        store = open_store(home, backend_name)
        store.put("train", 0, model_snapshots(0.0))
        objects = store.backend.object_store()
        # A fresh backbone: every chunk of epoch 1 is new, so the recipe
        # needs many blob writes and the injected crash lands mid-recipe.
        with crash_calls(objects, "put", on_call=on_call):
            with pytest.raises(InjectedCrash):
                store.put("train", 1, model_snapshots(1.0, backbone_seed=1))
        store.close()
        reopened = open_store(home, backend_name)
        assert not reopened.contains("train", 1)
        assert_crash_consistent(reopened, home)

    def test_crash_after_blobs_before_manifest_commit(self, home,
                                                      backend_name):
        """The spool ordering: all blobs land, the row never commits."""
        store = open_store(home, backend_name)
        store.put("train", 0, model_snapshots(0.0))
        record = store.write_payload("train", 1,
                                     serialize_checkpoint(
                                         model_snapshots(1.0)))
        with crash_calls(store.backend, "index_many"):
            with pytest.raises(InjectedCrash):
                store.index_records([record])
        store.close()
        reopened = open_store(home, backend_name)
        assert not reopened.contains("train", 1)
        # The stranded epoch-1 chunks are unreferenced orphans; one sweep
        # reclaims them without touching epoch 0's referenced chunks.
        assert_crash_consistent(reopened, home)
        restored = {s.name: s for s in reopened.get("train", 0)}
        assert restored["epoch"].payload == 0.0

    def test_crash_mid_gc_sweep_with_recipes(self, home):
        store = open_store(home, "local")
        from repro.storage.lifecycle import RetentionPolicy, prune_store
        for index in range(3):
            store.put("train", index, model_snapshots(float(index)))
        prune_store(store, RetentionPolicy(keep_last_n=1))
        objects = store.backend.object_store()
        with crash_calls(objects, "_delete_blob", on_call=2):
            with pytest.raises(InjectedCrash):
                store.gc(grace_seconds=0.0)
        store.close()
        reopened = open_store(home, "local")
        assert_crash_consistent(reopened, home)
        restored = {s.name: s for s in reopened.get("train", 2)}
        assert restored["epoch"].payload == 2.0


class TestAutoCodec:
    """``codec="auto"`` resolves per payload through the wired chooser."""

    def test_chooser_picks_the_codec_and_observer_sees_samples(self, home):
        store = open_store(home, "local", codec="auto")
        chosen, observed = [], []

        def chooser(nbytes):
            chosen.append(nbytes)
            return "zlib"

        store.codec_chooser = chooser
        store.codec_observer = (
            lambda codec, raw, seconds, compressed:
                observed.append((codec, raw, compressed)))
        store.put("train", 0, model_snapshots(0.0))
        assert chosen and all(nbytes > 0 for nbytes in chosen)
        assert observed and all(codec == "zlib" for codec, _, _ in observed)
        restored = {s.name: s for s in store.get("train", 0)}
        assert restored["epoch"].payload == 0.0

    def test_without_a_chooser_auto_falls_back_to_gzip(self, home):
        store = open_store(home, "local", codec="auto")
        assert store.resolve_codec(4096) == "gzip"
