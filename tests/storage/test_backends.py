"""Backend conformance suite: every backend honours the same contract.

The same test body runs against the local, in-memory and sharded backends;
backend-specific behaviour (on-disk layout, shard routing, registry
reattachment) is covered separately below, and the sharded backend must
round-trip a replay identically to the local one.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.config import FlorConfig
from repro.exceptions import CheckpointNotFoundError, StorageError
from repro.storage.backends import (InMemoryBackend, LocalSQLiteBackend,
                                    ShardedSQLiteBackend, resolve_backend)
from repro.storage.checkpoint_store import CheckpointStore
from repro.storage.objectstore import MemoryObjectStore
from repro.storage.serializer import serialize_checkpoint, snapshot_value

BACKENDS = ["local", "memory", "sharded"]


def make_snapshots(value: float = 1.0, size: int = 64):
    return [snapshot_value("weights", np.full(size, value, dtype=np.float32)),
            snapshot_value("epoch", int(value))]


@pytest.fixture(params=BACKENDS)
def backend_name(request):
    return request.param


@pytest.fixture()
def store(tmp_path, backend_name):
    store = CheckpointStore(tmp_path / "run", backend=backend_name,
                            num_shards=3)
    yield store
    store.close()
    InMemoryBackend.discard_dir(tmp_path / "run")
    MemoryObjectStore.discard_dir(tmp_path)


class TestConformance:
    def test_backend_name_matches_request(self, store, backend_name):
        assert store.backend.name == backend_name

    def test_put_then_get(self, store):
        store.put("train", 0, make_snapshots(3.0))
        snapshots = store.get("train", 0)
        assert [s.name for s in snapshots] == ["weights", "epoch"]
        np.testing.assert_allclose(snapshots[0].payload, np.full(64, 3.0))

    def test_contains_and_missing_raises(self, store):
        assert not store.contains("train", 0)
        store.put("train", 0, make_snapshots())
        assert store.contains("train", 0)
        with pytest.raises(CheckpointNotFoundError):
            store.get("train", 99)

    def test_overwrite_same_execution_index(self, store):
        store.put("train", 0, make_snapshots(1.0))
        store.put("train", 0, make_snapshots(9.0))
        np.testing.assert_allclose(store.get("train", 0)[0].payload,
                                   np.full(64, 9.0))
        assert store.checkpoint_count() == 1

    def test_manifest_queries(self, store):
        for index in (4, 0, 2):
            store.put("train", index, make_snapshots(float(index)))
        store.put("eval", 1, make_snapshots())
        assert store.executions("train") == [0, 2, 4]
        assert store.executions("missing") == []
        # The scheduler-facing alias answers the same question.
        assert store.list_executions("train") == [0, 2, 4]
        assert store.list_executions("missing") == []
        assert store.latest_execution_at_or_before("train", 3) == 2
        assert store.latest_execution_at_or_before("train", 4) == 4
        assert store.latest_execution_at_or_before("missing", 4) is None
        assert store.blocks() == ["eval", "train"]
        records = store.records()
        assert [(r.block_id, r.execution_index) for r in records] == [
            ("eval", 1), ("train", 0), ("train", 2), ("train", 4)]
        assert all(record.digest for record in records)

    def test_totals(self, store):
        for index in range(3):
            store.put("train", index, make_snapshots(float(index)))
        assert store.checkpoint_count() == 3
        assert store.total_stored_nbytes() > 0
        assert store.total_raw_nbytes() > 0

    def test_batched_index_commit(self, store):
        serialized_records = [
            store.write_payload("train", index,
                                serialize_checkpoint(
                                    make_snapshots(float(index))))
            for index in range(5)]
        # Payloads written, nothing indexed yet.
        assert store.checkpoint_count() == 0
        store.index_records(serialized_records)
        assert store.checkpoint_count() == 5
        assert store.executions("train") == [0, 1, 2, 3, 4]

    def test_metadata_roundtrip(self, store):
        store.set_metadata("epochs", 10)
        store.set_metadata("blocks", {"b0": {"line": 3}})
        store.set_metadata("epochs", 20)
        assert store.get_metadata("epochs") == 20
        assert store.get_metadata("blocks")["b0"]["line"] == 3
        assert store.get_metadata("missing", "default") == "default"
        assert set(store.all_metadata()) == {"epochs", "blocks"}

    def test_metadata_keys_prefix_scan(self, store):
        store.set_metadata("memo:aaa", {"v": 1})
        store.set_metadata("memo:bbb", {"v": 2})
        store.set_metadata("run_id", "r")
        assert store.metadata_keys("memo:") == ["memo:aaa", "memo:bbb"]
        assert store.metadata_keys() == ["memo:aaa", "memo:bbb", "run_id"]
        assert store.metadata_keys("zzz") == []

    def test_metadata_keys_prefix_is_literal_not_sql_pattern(self, store):
        # SQL LIKE wildcards in keys or prefixes must match literally:
        # the SQLite backends answer with a range scan, not LIKE, and the
        # in-memory backend with str.startswith — same semantics all round.
        store.set_metadata("memo%x", 1)
        store.set_metadata("memo_y", 2)
        store.set_metadata("memoZZ", 3)
        assert store.metadata_keys("memo%") == ["memo%x"]
        assert store.metadata_keys("memo_") == ["memo_y"]
        assert store.metadata_keys("memo") == ["memo%x", "memoZZ", "memo_y"]

    def test_reopen_preserves_contents(self, store, tmp_path, backend_name):
        store.put("train", 0, make_snapshots(5.0))
        store.set_metadata("run_id", "abc")
        store.flush()
        reopened = CheckpointStore(tmp_path / "run", backend=backend_name,
                                   num_shards=3)
        assert reopened.get_metadata("run_id") == "abc"
        np.testing.assert_allclose(reopened.get("train", 0)[0].payload,
                                   np.full(64, 5.0))

    def test_weird_block_ids(self, store):
        store.put("weird/block id!", 0, make_snapshots())
        assert store.get("weird/block id!", 0)[0].name == "weights"

    def test_uncompressed(self, tmp_path, backend_name):
        store = CheckpointStore(tmp_path / "raw", backend=backend_name,
                                num_shards=3, compress=False)
        record = store.put("train", 0, make_snapshots())
        assert record.stored_nbytes == record.raw_nbytes
        assert store.get("train", 0)[0].name == "weights"
        InMemoryBackend.discard_dir(tmp_path / "raw")


class TestDedupConformance:
    """Content-addressed dedup semantics, uniform across every backend."""

    def test_identical_payloads_share_one_blob(self, store):
        for index in range(4):
            store.put("train", index, make_snapshots(7.0))  # same content
        objects = store.backend.object_store()
        assert objects is not None
        assert objects.stats().objects == 1
        # Logical accounting still charges every row full price.
        assert store.checkpoint_count() == 4
        one = store.describe("train", 0).stored_nbytes
        assert store.total_stored_nbytes() == 4 * one

    def test_identical_payloads_dedup_across_blocks(self, store):
        store.put("train", 0, make_snapshots(3.0))
        store.put("eval", 9, make_snapshots(3.0))
        assert store.backend.object_store().stats().objects == 1
        np.testing.assert_allclose(store.get("eval", 9)[0].payload,
                                   np.full(64, 3.0))

    def test_refcounts_derived_from_manifest(self, store):
        store.put("train", 0, make_snapshots(1.0))
        store.put("train", 1, make_snapshots(1.0))
        store.put("train", 2, make_snapshots(2.0))
        counts = store.backend.referenced_digests()
        assert sorted(counts.values()) == [1, 2]
        shared = store.describe("train", 0).payload_digest
        assert counts[shared] == 2

    def test_overwrite_moves_reference_to_new_digest(self, store):
        store.put("train", 0, make_snapshots(1.0))
        old = store.describe("train", 0).payload_digest
        store.put("train", 0, make_snapshots(2.0))
        new = store.describe("train", 0).payload_digest
        counts = store.backend.referenced_digests()
        assert counts == {new: 1}
        assert old not in counts  # refcount 0: sweepable, not yet swept
        assert store.backend.object_store().contains(old)

    def test_delete_many_drops_rows_and_refcounts(self, store):
        for index in range(3):
            store.put("train", index, make_snapshots(5.0))
        deleted = store.backend.delete_many([("train", 0), ("train", 2),
                                             ("train", 99)])
        assert sorted(r.execution_index for r in deleted) == [0, 2]
        assert store.executions("train") == [1]
        counts = store.backend.referenced_digests()
        assert list(counts.values()) == [1]

    def test_record_carries_payload_digest(self, store):
        record = store.put("train", 0, make_snapshots(4.0))
        assert record.payload_digest == record.digest
        assert store.describe("train", 0).payload_digest == record.digest

    def test_dedup_disabled_keeps_legacy_layout(self, tmp_path,
                                                backend_name):
        store = CheckpointStore(tmp_path / "plain", backend=backend_name,
                                num_shards=3, dedup=False)
        record = store.put("train", 0, make_snapshots(1.0))
        store.put("train", 1, make_snapshots(1.0))
        assert store.backend.object_store() is None
        assert record.payload_digest == ""
        assert store.backend.referenced_digests() == {}
        # Two identical payloads, two physical copies (the legacy deal).
        assert store.get("train", 0)[0].name == "weights"
        assert store.get("train", 1)[0].name == "weights"
        store.close()
        InMemoryBackend.discard_dir(tmp_path / "plain")

    def test_dedup_store_reads_legacy_run(self, tmp_path, backend_name):
        legacy = CheckpointStore(tmp_path / "run2", backend=backend_name,
                                 num_shards=3, dedup=False)
        legacy.put("train", 0, make_snapshots(8.0))
        legacy.flush()
        if backend_name == "memory":
            reopened = legacy  # memory reattaches to the same backend
        else:
            legacy.close()
            reopened = CheckpointStore(tmp_path / "run2",
                                       backend=backend_name, num_shards=3,
                                       dedup=True)
        np.testing.assert_allclose(reopened.get("train", 0)[0].payload,
                                   np.full(64, 8.0))
        InMemoryBackend.discard_dir(tmp_path / "run2")

    def test_cross_run_dedup_under_one_home(self, tmp_path, backend_name):
        store_a = CheckpointStore(tmp_path / "run-a", backend=backend_name,
                                  num_shards=3)
        store_b = CheckpointStore(tmp_path / "run-b", backend=backend_name,
                                  num_shards=3)
        store_a.put("train", 0, make_snapshots(6.0))
        store_b.put("train", 5, make_snapshots(6.0))
        objects_a = store_a.backend.object_store()
        objects_b = store_b.backend.object_store()
        assert objects_a is objects_b  # one shared store per home
        assert objects_a.stats().objects == 1
        for run in ("run-a", "run-b"):
            InMemoryBackend.discard_dir(tmp_path / run)
        MemoryObjectStore.discard_dir(tmp_path)


class TestLocalBackend:
    def test_single_connection_reused(self, tmp_path):
        backend = LocalSQLiteBackend(tmp_path / "run")
        first = backend._connection()
        backend.blocks()
        assert backend._connection() is first
        backend.close()
        # Reopens lazily after close.
        assert backend.checkpoint_count() == 0

    def test_wal_mode(self, tmp_path):
        backend = LocalSQLiteBackend(tmp_path / "run")
        mode = backend._connection().execute(
            "PRAGMA journal_mode").fetchone()[0]
        assert mode.lower() == "wal"


class TestMemoryBackend:
    def test_no_disk_payloads(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", backend="memory")
        record = store.put("train", 0, make_snapshots())
        assert str(record.path).startswith("mem:")
        assert not (tmp_path / "run" / "manifest.sqlite").exists()
        assert not (tmp_path / "run" / "checkpoints").exists()
        InMemoryBackend.discard_dir(tmp_path / "run")

    def test_registry_reattach_without_backend_name(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", backend="memory")
        store.put("train", 0, make_snapshots(2.0))
        # A caller that does not know the run was in-memory still finds it.
        reopened = CheckpointStore(tmp_path / "run")
        assert reopened.backend is store.backend
        InMemoryBackend.discard_dir(tmp_path / "run")

    def test_missing_payload_raises_storage_error(self, tmp_path):
        backend = InMemoryBackend()
        with pytest.raises(StorageError):
            backend.read_payload("mem:never/0")

    def test_existing_local_run_wins_over_memory_request(self, tmp_path):
        # Record-time layout on disk must be honoured even when the
        # reopening caller is configured for a different backend.
        local = CheckpointStore(tmp_path / "run")
        local.put("train", 0, make_snapshots(6.0))
        local.flush()
        reopened = CheckpointStore(tmp_path / "run", backend="memory")
        assert reopened.backend.name == "local"
        np.testing.assert_allclose(reopened.get("train", 0)[0].payload,
                                   np.full(64, 6.0))


class TestShardedBackend:
    def test_layout_and_shard_manifest(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", backend="sharded",
                                num_shards=3)
        for index in range(4):
            store.put(f"block-{index}", 0, make_snapshots())
        manifest = json.loads(
            (tmp_path / "run" / "shards.json").read_text("utf-8"))
        assert manifest["num_shards"] == 3
        shard_dirs = sorted(p.name for p in
                            (tmp_path / "run" / "shards").iterdir())
        assert shard_dirs == ["shard-00", "shard-01", "shard-02"]

    def test_stable_partitioning(self, tmp_path):
        backend = ShardedSQLiteBackend(tmp_path / "run", num_shards=5)
        assignments = {bid: backend.shard_for(bid)
                       for bid in ("train", "eval", "epoch-7")}
        reopened = ShardedSQLiteBackend(tmp_path / "run", num_shards=5)
        for bid, shard in assignments.items():
            assert reopened.shard_for(bid) == shard
            assert 0 <= shard < 5

    def test_blocks_spread_across_shards(self, tmp_path):
        backend = ShardedSQLiteBackend(tmp_path / "run", num_shards=4)
        used = {backend.shard_for(f"block-{i}") for i in range(32)}
        assert len(used) > 1

    def test_persisted_shard_count_wins_on_reopen(self, tmp_path):
        CheckpointStore(tmp_path / "run", backend="sharded", num_shards=3)
        reopened = CheckpointStore(tmp_path / "run", backend="sharded",
                                   num_shards=8)
        assert reopened.backend.num_shards == 3

    def test_reopen_autodetects_sharded_layout(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", backend="sharded",
                                num_shards=3)
        store.put("train", 0, make_snapshots(4.0))
        # A default (local) store on the same dir must find the shards.
        reopened = CheckpointStore(tmp_path / "run")
        assert reopened.backend.name == "sharded"
        np.testing.assert_allclose(reopened.get("train", 0)[0].payload,
                                   np.full(64, 4.0))

    def test_corrupt_shard_manifest_raises(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        (run / "shards.json").write_text("{not json", "utf-8")
        with pytest.raises(StorageError, match="corrupt shard manifest"):
            ShardedSQLiteBackend(run)


class TestResolveBackend:
    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="unknown storage backend"):
            resolve_backend(tmp_path / "run", "s3-glacier")

    def test_explicit_instance_wins(self, tmp_path):
        backend = InMemoryBackend()
        assert resolve_backend(tmp_path / "run", backend) is backend


class TestShardedReplayRoundtrip:
    """Acceptance: a sharded run replays identically to a local run."""

    TRAIN_SCRIPT = """
import numpy as np
from repro import api as flor

weights = np.zeros(8)
for epoch in range(4):
    for step in range(3):
        weights = weights + (epoch + 1)
    flor.log("checksum", float(weights.sum()))
"""

    @pytest.mark.parametrize("backend_name", ["local", "sharded"])
    def test_record_replay_identical(self, tmp_path, backend_name):
        from repro.record.recorder import record_source
        from repro.replay.replayer import replay_script

        config = FlorConfig(home=tmp_path / "home",
                            storage_backend=backend_name, storage_shards=3,
                            adaptive_checkpointing=False)
        repro.set_config(config)
        try:
            recorded = record_source(self.TRAIN_SCRIPT,
                                     name=f"roundtrip-{backend_name}",
                                     config=config)
            assert recorded.storage_backend == backend_name
            record_values = [r.value for r in recorded.log_records
                             if r.name == "checksum"]
            replayed = replay_script(recorded.run_id, config=config)
            assert replayed.succeeded
            assert replayed.values("checksum") == record_values
            assert replayed.consistency is not None
            assert replayed.consistency.consistent
            # Parallel replay: forked workers each reopen the (possibly
            # sharded) store; merged logs must match the record exactly.
            parallel = replay_script(recorded.run_id, num_workers=2,
                                     config=config)
            assert parallel.succeeded
            assert parallel.values("checksum") == record_values
        finally:
            repro.reset_config()


# --------------------------------------------------------------------------- #
# Concurrent writers (the shared-home record-time contract)
# --------------------------------------------------------------------------- #
WRITER_ROWS = 6


def _record_writer_run(home, backend_name: str, index: int) -> None:
    """One writer: its own run manifest, the home's shared object store.

    Payload values repeat across writers (``j % 3``) so concurrent puts
    race on the *same* digests — the dedup-refresh path, not just fresh
    blob creation.
    """
    store = CheckpointStore(home / f"writer-{index}", backend=backend_name,
                            num_shards=3)
    try:
        for j in range(WRITER_ROWS):
            store.put("train", j, make_snapshots(float(j % 3), size=256))
    finally:
        store.close()


def _assert_writers_landed(home, backend_name: str, count: int) -> None:
    from faultutils import (assert_manifest_closed, assert_no_orphans,
                            assert_refcounts_exact)
    stores = [CheckpointStore(home / f"writer-{i}", backend=backend_name,
                              num_shards=3)
              for i in range(count)]
    try:
        for i, store in enumerate(stores):
            assert store.checkpoint_count() == WRITER_ROWS, \
                f"writer {i} lost manifest rows"
            assert store.executions("train") == list(range(WRITER_ROWS))
            assert_manifest_closed(store)
        assert_no_orphans(home)
        assert_refcounts_exact(home, stores)
    finally:
        for store in stores:
            store.close()


def _discard_memory_state(home, count: int) -> None:
    for i in range(count):
        InMemoryBackend.discard_dir(home / f"writer-{i}")
    MemoryObjectStore.discard_dir(home)


class TestConcurrentWriters:
    """K writers, one home: no lost manifests, no orphans, exact refcounts."""

    WRITERS = 4

    def test_threaded_writers_share_one_home(self, tmp_path, backend_name):
        import threading
        home = tmp_path / "home"
        errors = []

        def run(index):
            try:
                _record_writer_run(home, backend_name, index)
            except Exception as exc:  # surfaced in the main thread
                errors.append((index, exc))

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(self.WRITERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        try:
            _assert_writers_landed(home, backend_name, self.WRITERS)
        finally:
            _discard_memory_state(home, self.WRITERS)

    @pytest.mark.multiproc
    @pytest.mark.parametrize("process_backend", ["local", "sharded"])
    def test_process_writers_share_one_home(self, tmp_path, process_backend):
        """Real OS processes — the race the memory backend cannot host."""
        import multiprocessing as mp
        home = tmp_path / "home"
        ctx = mp.get_context("fork")
        processes = [
            ctx.Process(target=_record_writer_run,
                        args=(home, process_backend, i), daemon=True)
            for i in range(self.WRITERS)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60)
            assert process.exitcode == 0
        _assert_writers_landed(home, process_backend, self.WRITERS)

    def test_writers_race_a_garbage_collector(self, tmp_path, backend_name):
        """GC sweeping mid-record must not eat a writer's in-flight blobs:
        the grace period covers the payload-before-manifest window."""
        import threading
        from repro.storage.lifecycle import collect_garbage
        home = tmp_path / "home"
        stop = threading.Event()
        errors = []

        def run(index):
            try:
                _record_writer_run(home, backend_name, index)
            except Exception as exc:
                errors.append((index, exc))

        def sweep():
            while not stop.is_set():
                collect_garbage(home, grace_seconds=60.0)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(self.WRITERS)]
        collector = threading.Thread(target=sweep)
        collector.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        stop.set()
        collector.join(timeout=60)
        assert not errors, errors
        try:
            _assert_writers_landed(home, backend_name, self.WRITERS)
        finally:
            _discard_memory_state(home, self.WRITERS)
