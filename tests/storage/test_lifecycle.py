"""Storage lifecycle: retention, GC, crash consistency under fault injection.

Three layers of coverage:

* policy semantics — what :func:`plan_retention` keeps and prunes, rule
  by rule, including the two unconditional guardrails (min-age, the
  per-block bridge anchor);
* lifecycle mechanics — prune → gc ordering frees exactly the
  unreferenced blobs, across backends, across runs sharing a home, and
  from the background spool hook;
* crash consistency — a :class:`faultutils.FaultInjector` kills the
  process mid-``gc`` sweep and mid-``index_many`` commit; a reopened
  store must show no dangling manifest rows and, after one sweep, no
  orphaned payloads.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from faultutils import (InjectedCrash, assert_crash_consistent,
                        assert_manifest_closed, assert_no_orphans,
                        crash_calls)
from repro.exceptions import StorageError
from repro.storage.backends import InMemoryBackend
from repro.storage.checkpoint_store import CheckpointStore
from repro.storage.lifecycle import (LifecycleManager, RetentionPolicy,
                                     collect_garbage, measure_storage,
                                     plan_retention, prune_store, retire_run)
from repro.storage.objectstore import FileObjectStore, MemoryObjectStore
from repro.storage.serializer import snapshot_value
from repro.storage.spool import AsyncSpool

BACKENDS = ["local", "memory", "sharded"]


def make_snapshots(value: float = 1.0, size: int = 64):
    return [snapshot_value("weights", np.full(size, value, dtype=np.float32)),
            snapshot_value("epoch", int(value))]


def open_store(home, backend_name, run="run"):
    return CheckpointStore(home / run, backend=backend_name, num_shards=3)


@pytest.fixture(params=BACKENDS)
def backend_name(request):
    return request.param


@pytest.fixture()
def home(tmp_path):
    yield tmp_path
    for run in ("run", "run-a", "run-b"):
        InMemoryBackend.discard_dir(tmp_path / run)
    MemoryObjectStore.discard_dir(tmp_path)


# --------------------------------------------------------------------------- #
# RetentionPolicy semantics
# --------------------------------------------------------------------------- #
class TestRetentionPolicy:
    def test_inactive_policy_prunes_nothing(self, home, backend_name):
        store = open_store(home, backend_name)
        for index in range(4):
            store.put("train", index, make_snapshots(float(index)))
        assert plan_retention(store, RetentionPolicy()) == []
        report = prune_store(store, RetentionPolicy())
        assert report.pruned == 0 and report.kept == 4

    def test_keep_last_n_per_block(self, home, backend_name):
        store = open_store(home, backend_name)
        for block in ("train", "eval"):
            for index in range(5):
                store.put(block, index, make_snapshots(float(index)))
        report = prune_store(store, RetentionPolicy(keep_last_n=2))
        assert report.pruned == 6
        assert store.executions("train") == [3, 4]
        assert store.executions("eval") == [3, 4]

    def test_min_age_protects_young_checkpoints(self, home, backend_name):
        store = open_store(home, backend_name)
        for index in range(4):
            store.put("train", index, make_snapshots(float(index)))
        policy = RetentionPolicy(keep_last_n=1, min_age_seconds=3600)
        assert plan_retention(store, policy) == []
        # The same rows prune once "now" has moved past the grace.
        future = time.time() + 7200
        plan = plan_retention(store, policy, now=future)
        assert [r.execution_index for r in plan] == [0, 1, 2]

    def test_newest_checkpoint_per_block_always_survives(self, home,
                                                         backend_name):
        store = open_store(home, backend_name)
        for index in range(3):
            store.put("train", index, make_snapshots(float(index)))
        # A max_total_bytes of zero asks to drop everything; the bridge
        # anchor (execution 2) must survive anyway.
        report = prune_store(store, RetentionPolicy(max_total_bytes=0))
        assert store.executions("train") == [2]
        assert report.pruned == 2

    def test_max_total_bytes_prunes_oldest_first(self, home, backend_name):
        store = open_store(home, backend_name)
        records = [store.put("train", index, make_snapshots(float(index)))
                   for index in range(4)]
        keep_two = sum(r.stored_nbytes for r in records[-2:])
        prune_store(store, RetentionPolicy(max_total_bytes=keep_two))
        assert store.executions("train") == [2, 3]

    def test_keep_aligned_only_drops_unaligned(self, home, backend_name):
        store = open_store(home, backend_name)
        # Two loop blocks; only iterations 0 and 2 are aligned (restorable
        # across both), and 1_000_001 is a composite (repeat) index.
        for index in (0, 1, 2, 1_000_001):
            store.put("a", index, make_snapshots(float(index % 97)))
        for index in (0, 2, 3):
            store.put("b", index, make_snapshots(float(index % 89) + 0.5))
        store.set_metadata("main_loop_total", 4)
        store.set_metadata("loop_blocks", ["a", "b"])
        prune_store(store, RetentionPolicy(keep_aligned_only=True))
        # Unaligned rows pruned; the newest row per block survives even
        # when unaligned (anchor guardrail: a[1_000_001], b[3]).
        assert store.executions("a") == [0, 2, 1_000_001]
        assert store.executions("b") == [0, 2, 3]

    def test_validate_rejects_bad_values(self):
        with pytest.raises(StorageError):
            RetentionPolicy(keep_last_n=0).validate()
        with pytest.raises(StorageError):
            RetentionPolicy(max_total_bytes=-1).validate()
        with pytest.raises(StorageError):
            RetentionPolicy(min_age_seconds=-0.1).validate()

    def test_roundtrip_through_dict(self):
        policy = RetentionPolicy(keep_last_n=3, keep_aligned_only=True,
                                 max_total_bytes=1 << 20, min_age_seconds=5)
        assert RetentionPolicy.from_dict(policy.to_dict()) == policy


# --------------------------------------------------------------------------- #
# Prune + GC mechanics
# --------------------------------------------------------------------------- #
class TestPruneAndGC:
    def test_prune_then_gc_frees_unshared_blobs(self, home, backend_name):
        store = open_store(home, backend_name)
        for index in range(5):
            store.put("train", index, make_snapshots(float(index)))
        before = measure_storage(home)
        assert before.physical_objects == 5
        prune_store(store, RetentionPolicy(keep_last_n=2))
        # Manifest-first: rows are gone but blobs wait for the sweep.
        assert store.checkpoint_count() == 2
        report = collect_garbage(home)
        assert report.swept_objects == 3
        assert report.swept_nbytes > 0
        after = measure_storage(home)
        assert after.physical_objects == 2
        assert_crash_consistent(store, home)

    def test_gc_keeps_blobs_referenced_by_other_runs(self, home,
                                                     backend_name):
        # Two runs under one home with identical payloads: retiring one
        # run must not free blobs the other still references.
        store_a = open_store(home, backend_name, "run-a")
        store_b = open_store(home, backend_name, "run-b")
        for index in range(3):
            store_a.put("train", index, make_snapshots(float(index)))
            store_b.put("train", index, make_snapshots(float(index)))
        assert measure_storage(home).physical_objects == 3  # deduped
        retire_run(store_a)
        report = collect_garbage(home)
        assert report.swept_objects == 0
        assert_manifest_closed(store_b)
        retire_run(store_b)
        report = collect_garbage(home)
        assert report.swept_objects == 3
        assert measure_storage(home).physical_objects == 0

    def test_gc_grace_defers_fresh_unreferenced_blobs(self, home,
                                                      backend_name):
        store = open_store(home, backend_name)
        store.put("train", 0, make_snapshots(1.0))
        store.put("train", 0, make_snapshots(2.0))  # orphans the 1.0 blob
        deferred = collect_garbage(home, grace_seconds=3600)
        assert deferred.swept_objects == 0
        assert deferred.deferred_objects == 1
        swept = collect_garbage(home, grace_seconds=0.0)
        assert swept.swept_objects == 1

    def test_dry_run_reports_without_deleting(self, home, backend_name):
        store = open_store(home, backend_name)
        store.put("train", 0, make_snapshots(1.0))
        store.put("train", 0, make_snapshots(2.0))
        report = collect_garbage(home, dry_run=True)
        assert report.dry_run and report.swept_objects == 1
        assert measure_storage(home).physical_objects == 2

    def test_retire_run_releases_everything_of_that_run(self, home,
                                                        backend_name):
        store = open_store(home, backend_name)
        for index in range(4):
            store.put("train", index, make_snapshots(float(index)))
        report = retire_run(store)
        assert report.pruned == 4
        assert store.checkpoint_count() == 0
        collect_garbage(home)
        assert measure_storage(home).physical_objects == 0

    def test_background_manager_runs_on_spool_commits(self, home):
        store = open_store(home, "local")
        policy = RetentionPolicy(keep_last_n=2)
        manager = LifecycleManager(store, policy=policy, gc_interval=0.0001,
                                   grace_seconds=0.0)
        spool = AsyncSpool(store, workers=1, batch_size=2,
                           on_batch_commit=manager.on_manifest_commit)
        with spool:
            for index in range(8):
                spool.submit("train", index, make_snapshots(float(index)))
                time.sleep(0.002)  # let the interval elapse between batches
            spool.flush()
        assert manager.passes >= 1
        # Close-time pass (as the session would run it) settles the rest.
        manager.run_once(grace_seconds=0.0)
        assert store.executions("train") == [6, 7]
        assert_crash_consistent(store, home)
        summary = manager.summary()
        assert summary["passes"] == manager.passes
        assert summary["last_gc"] is not None

    def test_release_hints_bypass_grace_but_never_referencedness(self, home):
        store_a = open_store(home, "local", "run-a")
        store_b = open_store(home, "local", "run-b")
        store_a.put("train", 0, make_snapshots(1.0))
        store_a.put("train", 1, make_snapshots(2.0))
        store_b.put("train", 0, make_snapshots(2.0))  # shares the 2.0 blob
        report = prune_store(store_a, RetentionPolicy(keep_last_n=1))
        # Both pruned digests are hinted, but 2.0 is still referenced by
        # run-b: with a large grace only the truly-released 1.0 sweeps.
        assert report.released_digests
        gc = collect_garbage(home, grace_seconds=3600,
                             release_hints=report.released_digests)
        assert gc.swept_objects == 1
        assert measure_storage(home).physical_objects == 1
        assert_manifest_closed(store_b)

    def test_second_writer_readding_pruned_digest_survives_hinted_sweep(
            self, home):
        # Regression for the shared-home writer race: run-a prunes a
        # digest (one-shot release hint), and before the follow-up GC
        # unlinks it a *second writer* re-adds the same content —
        # payload written, manifest row not yet committed (the write
        # ordering).  The hint is time-scoped to the prune instant, so
        # the refreshed blob must fall back to the grace path and
        # survive; the stale-released blob nobody re-added still sweeps
        # immediately.
        store_a = open_store(home, "local", "run-a")
        store_b = open_store(home, "local", "run-b")
        for index in range(3):
            store_a.put("train", index, make_snapshots(float(index)))
        report = prune_store(store_a, RetentionPolicy(keep_last_n=1))
        assert report.released_at is not None
        assert len(report.released_digests) == 2
        # Separate the re-add's mtime from released_at by more than the
        # kernel's coarse file-timestamp granularity (up to ~10ms): file
        # mtimes lag the fine clock, so a tiny sleep can leave the
        # refreshed mtime *behind* the prune instant.
        time.sleep(0.05)
        pending = store_b.write_payload("train", 0, _serialized(0.0))
        assert pending.payload_digest in report.released_digests

        gc = collect_garbage(home, grace_seconds=3600,
                             release_hints=report.released_digests,
                             hints_released_at=report.released_at)
        assert gc.swept_objects == 1  # the 1.0 blob: hinted, pre-prune
        objects = store_b.backend.object_store()
        assert objects.contains(pending.payload_digest)
        store_b.index_records([pending])
        assert_manifest_closed(store_b)

    def test_hinted_unlink_recheck_skips_fresh_readd(self, home):
        # The mid-sweep half of the same race: the hint classification
        # happened at mark time, but the unlink re-checks the blob's
        # mtime against the prune instant — a dedup re-add landing
        # between mark and unlink survives the in-flight sweep.
        store = open_store(home, "local", "run-a")
        record = store.put("train", 0, make_snapshots(1.0))
        objects = store.backend.object_store()
        store.backend.delete_many([("train", 0)])  # now unreferenced
        cutoff = time.time()
        time.sleep(0.05)  # clear the coarse file-timestamp granularity
        payload = objects.get(record.payload_digest)
        objects.put(record.payload_digest, payload)  # refresh: re-add
        deleted, _ = objects.delete([record.payload_digest],
                                    not_newer_than=cutoff)
        assert deleted == 0
        assert objects.contains(record.payload_digest)

    def test_manager_close_pass_reclaims_own_prunes_despite_grace(self, home):
        # The close-time pass keeps the shared-home grace (protecting
        # other sessions' in-flight blobs) yet must still free what this
        # session's own retention released — via release hints.
        store = open_store(home, "local")
        for index in range(4):
            store.put("train", index, make_snapshots(float(index)))
        manager = LifecycleManager(store, policy=RetentionPolicy(
            keep_last_n=1), grace_seconds=3600)
        manager.run_once()  # no grace override, as Session.close runs it
        assert store.executions("train") == [3]
        assert measure_storage(home).physical_objects == 1

    def test_rereferenced_blob_reenters_grace_window(self, home):
        # An old unreferenced blob that a new write dedups onto must be
        # protected by the grace again (its age resets on the dedup hit):
        # the racing sweep's mark phase ran before the new manifest row
        # committed, so grace is the only thing standing between the
        # payload-ahead write and a dangling row.
        import os
        store = open_store(home, "local")
        record = store.put("train", 0, make_snapshots(1.0))
        objects = store.backend.object_store()
        store.backend.delete_many([("train", 0)])  # blob now unreferenced
        os.utime(objects.blob_path(record.payload_digest), (1, 1))  # "old"
        # Payload-ahead write of identical content: dedup hit, no row yet.
        pending = store.write_payload("train", 5, _serialized(1.0))
        gc = collect_garbage(home, grace_seconds=3600)
        assert gc.swept_objects == 0 and gc.deferred_objects == 1
        store.index_records([pending])
        assert_manifest_closed(store)

    def test_manager_without_interval_ignores_commit_hook(self, home):
        store = open_store(home, "local")
        manager = LifecycleManager(store, policy=RetentionPolicy(
            keep_last_n=1))
        store.put("train", 0, make_snapshots(0.0))
        manager.on_manifest_commit()  # no interval -> no pass
        assert manager.passes == 0
        manager.run_once()
        assert manager.passes == 1


# --------------------------------------------------------------------------- #
# API-level guards
# --------------------------------------------------------------------------- #
class TestApiGuards:
    def test_gc_interval_requires_spool_materializer(self, tmp_path):
        from repro.config import FlorConfig
        from repro.exceptions import ConfigError
        with pytest.raises(ConfigError, match="gc_interval requires"):
            FlorConfig(home=tmp_path, gc_interval=5.0,
                       background_materialization="thread")
        FlorConfig(home=tmp_path, gc_interval=5.0,
                   background_materialization="spool")  # fine

    def test_prune_unknown_run_raises_without_creating_junk(self, tmp_path):
        import repro
        from repro.config import FlorConfig
        config = FlorConfig(home=tmp_path / "home")
        with pytest.raises(StorageError, match="no recorded run"):
            repro.prune("no-such-run", RetentionPolicy(keep_last_n=1),
                        config)
        assert not (tmp_path / "home" / "no-such-run").exists()


# --------------------------------------------------------------------------- #
# Crash consistency under fault injection
# --------------------------------------------------------------------------- #
class TestCrashMidGC:
    def test_interrupted_sweep_never_loses_a_referenced_checkpoint(
            self, home, backend_name):
        store = open_store(home, backend_name)
        # 4 live checkpoints + 3 orphaned blobs (from overwrites).
        for index in range(4):
            store.put("train", index, make_snapshots(float(index)))
        for index in range(3):
            store.put("train", index, make_snapshots(float(index) + 100.0))
        objects = store.backend.object_store()
        # File stores unlink blob by blob (crash mid-sweep, after one
        # deletion); the memory store deletes in one batch call (crash at
        # the sweep boundary).
        if isinstance(objects, FileObjectStore):
            delete_method, on_call = "_delete_blob", 2
        else:
            delete_method, on_call = "delete", 1
        with crash_calls(objects, delete_method, on_call=on_call):
            with pytest.raises(InjectedCrash):
                collect_garbage(home)
        # "Reboot": a fresh store over the same layout recovers fully.
        store.close()
        reopened = open_store(home, backend_name)
        assert reopened.executions("train") == [0, 1, 2, 3]
        assert_crash_consistent(reopened, home)
        assert measure_storage(home).physical_objects == 4

    def test_interrupted_sweep_mid_file_unlink_is_recoverable(self, home):
        # File-store specific: the crash lands between individual unlinks.
        store = open_store(home, "local")
        for index in range(3):
            store.put("train", index, make_snapshots(float(index)))
            store.put("train", index, make_snapshots(float(index) + 50.0))
        objects = store.backend.object_store()
        with crash_calls(objects, "_delete_blob", on_call=2, after=True):
            with pytest.raises(InjectedCrash):
                collect_garbage(home)
        assert_crash_consistent(store, home)


class TestCrashMidCommit:
    def test_partial_sharded_commit_recovers_on_reopen(self, home):
        """Kill index_many after one shard committed, before the others."""
        store = open_store(home, "sharded")
        backend = store.backend
        # Records spanning several blocks so >= 2 shards get a batch.
        records = [store.write_payload(f"block-{i}", 0,
                                       _serialized(float(i)))
                   for i in range(6)]
        shards_hit = {backend.shard_for(r.block_id) for r in records}
        assert len(shards_hit) >= 2
        # index_many commits shard batches in first-record order: crash
        # the shard of the *last* record that routes away from the first,
        # so at least one earlier shard has already committed.
        first_shard = backend.shard_for(records[0].block_id)
        victim_shard = next(backend.shard_for(r.block_id)
                            for r in reversed(records)
                            if backend.shard_for(r.block_id) != first_shard)
        victim = backend.shards[victim_shard]
        with crash_calls(victim, "index_many", on_call=1):
            with pytest.raises(InjectedCrash):
                store.index_records(records)
        store.close()
        reopened = open_store(home, "sharded")
        committed = reopened.records()
        # Some rows committed (first shard), some not — but every
        # committed row is readable, and one sweep reclaims the rest.
        assert 0 < len(committed) < len(records)
        assert_crash_consistent(reopened, home)

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_spool_crash_mid_commit_leaves_no_dangling_rows(
            self, home, backend_name):
        """The batched manifest commit dies; payloads orphan, rows don't."""
        store = open_store(home, backend_name)
        with crash_calls(store.backend, "index_many", on_call=2):
            spool = AsyncSpool(store, workers=1, batch_size=2)
            for index in range(8):
                spool.submit("train", index, make_snapshots(float(index)))
            spool.flush()
            # The worker caught the injected crash as a spool error.
            assert any("InjectedCrash" in err or "call #2" in err
                       for err in spool.stats.errors)
            spool.close()
        store.close()
        reopened = open_store(home, backend_name)
        survivors = reopened.executions("train")
        assert 0 < len(survivors) < 8
        assert_crash_consistent(reopened, home)

    def test_crash_between_payload_and_index_orphans_payload_only(
            self, home, backend_name):
        store = open_store(home, backend_name)
        record = store.write_payload("train", 0, _serialized(1.0))
        # "Crash": the record never reaches index_records.  The payload
        # exists (write-ahead), the manifest does not reference it.
        assert store.checkpoint_count() == 0
        assert store.backend.read_payload(str(record.path))
        assert_no_orphans(home)  # one sweep reclaims the stranded blob
        assert measure_storage(home).physical_objects == 0


def _serialized(value: float):
    from repro.storage.serializer import serialize_checkpoint
    return serialize_checkpoint(make_snapshots(value))
