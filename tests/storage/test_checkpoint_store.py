"""Tests for the SQLite-indexed checkpoint store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CheckpointNotFoundError, StorageError
from repro.storage.checkpoint_store import CheckpointStore
from repro.storage.serializer import snapshot_value


def make_snapshots(value: float = 1.0):
    return [snapshot_value("weights", np.full(16, value, dtype=np.float32)),
            snapshot_value("epoch", int(value))]


class TestCheckpointRoundtrip:
    def test_put_then_get(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.put("train", 0, make_snapshots(3.0))
        snapshots = store.get("train", 0)
        assert [s.name for s in snapshots] == ["weights", "epoch"]
        np.testing.assert_allclose(snapshots[0].payload, np.full(16, 3.0))

    def test_contains(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        assert not store.contains("train", 0)
        store.put("train", 0, make_snapshots())
        assert store.contains("train", 0)

    def test_missing_checkpoint_raises_with_context(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        with pytest.raises(CheckpointNotFoundError) as excinfo:
            store.get("train", 5, run_id="my-run")
        assert excinfo.value.block_id == "train"
        assert excinfo.value.execution_index == 5
        assert "my-run" in str(excinfo.value)

    def test_overwrite_same_execution_index(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.put("train", 0, make_snapshots(1.0))
        store.put("train", 0, make_snapshots(9.0))
        snapshots = store.get("train", 0)
        np.testing.assert_allclose(snapshots[0].payload, np.full(16, 9.0))
        assert store.checkpoint_count() == 1

    def test_uncompressed_store(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", compress=False)
        record = store.put("train", 0, make_snapshots())
        assert record.stored_nbytes == record.raw_nbytes
        assert store.get("train", 0)[0].name == "weights"

    def test_compression_shrinks_redundant_payloads(self, tmp_path):
        store = CheckpointStore(tmp_path / "run", compress=True)
        record = store.put("train", 0, make_snapshots(0.0))
        assert record.stored_nbytes < record.raw_nbytes


class TestManifestQueries:
    def test_executions_sorted(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        for index in (4, 0, 2):
            store.put("train", index, make_snapshots())
        assert store.executions("train") == [0, 2, 4]
        assert store.executions("other") == []

    def test_latest_execution_at_or_before(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        for index in (0, 5, 10):
            store.put("train", index, make_snapshots())
        assert store.latest_execution_at_or_before("train", 7) == 5
        assert store.latest_execution_at_or_before("train", 10) == 10
        assert store.latest_execution_at_or_before("train", 4) == 0
        assert store.latest_execution_at_or_before("other", 4) is None

    def test_blocks_and_records(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.put("a", 0, make_snapshots())
        store.put("b", 0, make_snapshots())
        assert store.blocks() == ["a", "b"]
        records = store.records()
        assert len(records) == 2
        assert all(record.digest for record in records)

    def test_describe_reports_sizes_and_timings(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.put("train", 0, make_snapshots())
        record = store.describe("train", 0)
        assert record.raw_nbytes > 0
        assert record.serialize_seconds >= 0
        assert record.write_seconds >= 0
        assert record.path.exists()

    def test_totals(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        for index in range(3):
            store.put("train", index, make_snapshots())
        assert store.checkpoint_count() == 3
        assert store.total_stored_nbytes() > 0
        assert store.total_raw_nbytes() >= store.total_stored_nbytes() or True

    def test_block_id_sanitized_for_filesystem(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        record = store.put("weird/block id!", 0, make_snapshots())
        assert record.path.exists()
        assert store.get("weird/block id!", 0)[0].name == "weights"


class TestMetadataAndSources:
    def test_metadata_roundtrip_and_overwrite(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.set_metadata("epochs", 10)
        store.set_metadata("blocks", {"skipblock_0": {"start_line": 3}})
        store.set_metadata("epochs", 20)
        assert store.get_metadata("epochs") == 20
        assert store.get_metadata("blocks")["skipblock_0"]["start_line"] == 3
        assert store.get_metadata("missing", "default") == "default"
        assert set(store.all_metadata()) == {"epochs", "blocks"}

    def test_source_snapshot_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.save_source("script.py", "print('hello')\n")
        assert store.load_source("script.py") == "print('hello')\n"
        assert "script.py" in store.list_sources()

    def test_missing_source_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        with pytest.raises(StorageError):
            store.load_source("nope.py")

    def test_reopening_store_preserves_contents(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.put("train", 0, make_snapshots(5.0))
        store.set_metadata("run_id", "abc")

        reopened = CheckpointStore(tmp_path / "run")
        assert reopened.get_metadata("run_id") == "abc"
        np.testing.assert_allclose(reopened.get("train", 0)[0].payload,
                                   np.full(16, 5.0))
