"""Tests for the bounded async materialization spool.

Covers the tentpole guarantees: flush is a durability+index barrier,
manifest commits are batched, a full queue backpressures the submitter,
and a crash mid-spool can never leave the manifest referencing a missing
payload (payload-before-manifest ordering).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

import repro
from repro.config import FlorConfig
from repro.exceptions import StorageError
from repro.storage.checkpoint_store import CheckpointStore
from repro.storage.spool import AsyncSpool
from repro.storage.serializer import snapshot_value


def make_snapshots(value: float = 1.0, size: int = 256):
    return [snapshot_value("weights", np.full(size, value, dtype=np.float32))]


def wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.time() + timeout
    while not predicate():
        if time.time() > deadline:
            raise AssertionError("condition not reached before timeout")
        time.sleep(0.002)


class TestFlushBarrier:
    def test_flush_makes_everything_durable_and_indexed(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        with AsyncSpool(store, workers=3, batch_size=4) as spool:
            for index in range(10):
                spool.submit("train", index, make_snapshots(float(index)))
            spool.flush()
            assert store.executions("train") == list(range(10))
            np.testing.assert_allclose(store.get("train", 7)[0].payload,
                                       np.full(256, 7.0))
            assert spool.stats.completed == 10
            assert spool.stats.indexed == 10

    def test_flush_is_reentrant_and_close_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        spool = AsyncSpool(store, workers=1)
        spool.submit("train", 0, make_snapshots())
        spool.flush()
        spool.flush()
        spool.close()
        spool.close()
        assert store.contains("train", 0)

    def test_submit_after_close_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        spool = AsyncSpool(store, workers=1)
        spool.close()
        with pytest.raises(StorageError, match="closed"):
            spool.submit("train", 0, make_snapshots())


class TestBatchedManifestCommits:
    def test_records_buffer_until_batch_threshold(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        spool = AsyncSpool(store, workers=1, batch_size=100)
        try:
            for index in range(5):
                spool.submit("train", index, make_snapshots(float(index)))
            # All five payloads complete in the background...
            wait_until(lambda: spool.stats.completed == 5)
            # ...but below the batch threshold nothing is indexed yet.
            assert store.checkpoint_count() == 0
            assert spool.stats.manifest_commits == 0
            spool.flush()
            # Flush commits the remainder in one transaction.
            assert store.checkpoint_count() == 5
            assert spool.stats.manifest_commits == 1
        finally:
            spool.close()

    def test_batch_threshold_triggers_commit_without_flush(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        spool = AsyncSpool(store, workers=1, batch_size=2)
        try:
            for index in range(6):
                spool.submit("train", index, make_snapshots(float(index)))
            wait_until(lambda: spool.stats.indexed >= 6)
            assert spool.stats.manifest_commits >= 3
        finally:
            spool.close()


class TestBackpressure:
    def test_full_queue_blocks_submit(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        spool = AsyncSpool(store, workers=1, queue_size=1)
        gate = threading.Event()
        original = store.backend.write_payload

        def slow_write(block_id, execution_index, payload, **kwargs):
            gate.wait(timeout=10.0)
            return original(block_id, execution_index, payload, **kwargs)

        store.backend.write_payload = slow_write
        try:
            # First submit occupies the worker, further ones fill the
            # 1-slot queue and then must block until the worker drains it.
            for index in range(4):
                spool.submit("train", index, make_snapshots(float(index)))
                if index == 1:
                    gate.set()  # un-wedge the worker once the queue is full
            spool.flush()
            assert spool.stats.backpressure_waits > 0
            assert spool.stats.backpressure_seconds > 0
            assert store.executions("train") == [0, 1, 2, 3]
        finally:
            gate.set()
            spool.close()


class TestCrashMidSpool:
    def test_manifest_never_references_missing_payload(self, tmp_path):
        """Kill the pipeline before flush; the manifest must stay closed
        under payload lookup (orphan payloads are fine, dangling manifest
        rows are not)."""
        store = CheckpointStore(tmp_path / "run")
        spool = AsyncSpool(store, workers=2, batch_size=3)
        for index in range(20):
            spool.submit("train", index, make_snapshots(float(index)))
        # Simulated crash: no flush, no close — just inspect mid-stream.
        for record in store.records():
            assert store.backend.read_payload(str(record.path)) is not None
        spool.close()

    def test_write_failure_never_indexes_and_is_reported(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        original = store.backend.write_payload

        def flaky_write(block_id, execution_index, payload, **kwargs):
            if execution_index == 2:
                raise OSError("disk on fire")
            return original(block_id, execution_index, payload, **kwargs)

        store.backend.write_payload = flaky_write
        spool = AsyncSpool(store, workers=2, batch_size=2)
        for index in range(5):
            spool.submit("train", index, make_snapshots(float(index)))
        spool.flush()
        assert store.executions("train") == [0, 1, 3, 4]
        assert len(spool.stats.errors) == 1
        assert "disk on fire" in spool.stats.errors[0]
        # A reopened store sees a consistent manifest.
        reopened = CheckpointStore(tmp_path / "run")
        for record in reopened.records():
            assert reopened.backend.read_payload(str(record.path)) is not None
        spool.close()


class TestProcessMode:
    def test_roundtrip_and_flush(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        with AsyncSpool(store, workers=2, mode="process",
                        batch_size=2) as spool:
            for index in range(4):
                spool.submit("train", index, make_snapshots(float(index)))
            spool.flush()
            assert store.executions("train") == [0, 1, 2, 3]
            np.testing.assert_allclose(store.get("train", 3)[0].payload,
                                       np.full(256, 3.0))

    def test_invalid_mode_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        with pytest.raises(StorageError, match="spool mode"):
            AsyncSpool(store, mode="carrier-pigeon")


class TestSpoolThroughSession:
    """End-to-end: spool strategy + each backend through record/replay."""

    SCRIPT = """
import numpy as np
from repro import api as flor

weights = np.zeros(4)
for epoch in range(3):
    for step in range(2):
        weights = weights + 1.0
    flor.log("total", float(weights.sum()))
"""

    @pytest.mark.parametrize("backend_name", ["local", "memory", "sharded"])
    def test_record_then_replay(self, tmp_path, backend_name):
        from repro.record.recorder import record_source
        from repro.replay.replayer import replay_script
        from repro.storage.backends import InMemoryBackend

        config = FlorConfig(home=tmp_path / "home",
                            background_materialization="spool",
                            storage_backend=backend_name, storage_shards=2,
                            adaptive_checkpointing=False)
        repro.set_config(config)
        try:
            recorded = record_source(self.SCRIPT, name=f"spool-{backend_name}",
                                     config=config)
            assert recorded.checkpoint_count == 3
            replayed = replay_script(recorded.run_id, config=config)
            assert replayed.succeeded
            assert replayed.values("total") == [
                r.value for r in recorded.log_records if r.name == "total"]
        finally:
            repro.reset_config()
            InMemoryBackend.discard_dir(config.run_dir(recorded.run_id))

    def test_spool_metadata_recorded(self, tmp_path):
        from repro.record.recorder import record_source

        config = FlorConfig(home=tmp_path / "home",
                            background_materialization="spool",
                            spool_workers=3, adaptive_checkpointing=False)
        repro.set_config(config)
        try:
            recorded = record_source(self.SCRIPT, name="spool-meta",
                                     config=config)
            store = CheckpointStore(recorded.run_dir)
            meta = store.get_metadata("materializer")
            assert meta["strategy"] == "spool"
            assert meta["spool"]["workers"] == 3
            assert meta["spool"]["completed"] == recorded.checkpoint_count
            assert store.get_metadata("storage_backend") == "local"
        finally:
            repro.reset_config()
