"""Retention vs replay: pruned history must not corrupt hindsight answers.

The scenario the lifecycle layer has to survive: a run is recorded with a
healthy checkpoint density, retention later prunes mid-history executions
(keeping the recent tail plus whatever the guardrails protect), and only
*then* does someone replay or query the run.  The replay scheduler must
bridge the pruned gap from the surviving checkpoints — recomputing
forward instead of restoring stale state — and ``repro.query`` must
return values identical to the record, cell for cell.
"""

from __future__ import annotations

import textwrap

import pytest

import repro
from repro.query.catalog import RunCatalog
from repro.record.recorder import record_source
from repro.replay.replayer import replay_script
from repro.storage.checkpoint_store import CheckpointStore
from repro.storage.lifecycle import RetentionPolicy, collect_garbage

EPOCHS = 6

TRAINING_SCRIPT = textwrap.dedent(f"""
    import numpy as np
    from repro import api as flor
    from repro import torchlike as tl

    rng = np.random.default_rng(0)
    X = rng.standard_normal((48, 6)).astype('float32')
    y = (X[:, 0] - X[:, 1] > 0).astype('int64')
    dataset = tl.TensorDataset(X, y)
    trainloader = tl.DataLoader(dataset, batch_size=12, shuffle=True, seed=0)
    net = tl.Sequential(tl.Linear(6, 10, rng=rng), tl.ReLU(),
                        tl.Linear(10, 2, rng=rng))
    optimizer = tl.SGD(net.parameters(), lr=0.15, momentum=0.9)
    criterion = tl.CrossEntropyLoss()

    for epoch in range({EPOCHS}):
        trainloader.set_epoch(epoch)
        for batch_x, batch_y in trainloader:
            logits = net(tl.Tensor(batch_x))
            loss = criterion(logits, batch_y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        flor.log("train_loss", loss.item())
""")


@pytest.fixture()
def recorded(flor_config):
    """A dense run: adaptive off, so every epoch has a checkpoint."""
    config = flor_config.with_overrides(adaptive_checkpointing=False)
    repro.set_config(config)
    result = record_source(TRAINING_SCRIPT, name="retention", config=config)
    assert result.checkpoint_count == EPOCHS
    return result


def record_values(recorded):
    return [r.value for r in recorded.log_records if r.name == "train_loss"]


class TestPrunedHistoryReplay:
    def test_parallel_replay_bridges_over_pruned_mid_history(
            self, flor_config, recorded):
        store = CheckpointStore(flor_config.run_dir(recorded.run_id))
        report = store.prune(RetentionPolicy(keep_last_n=2))
        # Mid-history gone, the recent tail survives.
        assert report.pruned == EPOCHS - 2
        assert store.list_executions("skipblock_0") == [4, 5]
        collect_garbage(flor_config.home)
        store.close()

        for num_workers, scheduler in [(1, "static"), (2, "static"),
                                       (2, "dynamic"), (4, "static")]:
            config = flor_config.with_overrides(
                adaptive_checkpointing=False, replay_scheduler=scheduler,
                replay_chunk_size=2)
            replay = replay_script(recorded.run_id, num_workers=num_workers,
                                   config=config)
            assert replay.succeeded, (num_workers, scheduler)
            assert replay.consistency is not None
            assert replay.consistency.consistent, (num_workers, scheduler)
            assert replay.values("train_loss") == pytest.approx(
                record_values(recorded)), (num_workers, scheduler)

    def test_query_after_prune_matches_record(self, flor_config, recorded):
        config = flor_config.with_overrides(adaptive_checkpointing=False)
        # Prime the catalog entry on the dense run, then prune: the stale
        # entry's aligned set now over-promises, and the catalog must
        # rebuild it (fingerprint mismatch) rather than plan against it.
        RunCatalog.open(config)
        store = CheckpointStore(flor_config.run_dir(recorded.run_id))
        store.prune(RetentionPolicy(keep_last_n=2))
        collect_garbage(flor_config.home)
        store.close()

        catalog = RunCatalog.open(config)
        entry = catalog.get(recorded.run_id)
        assert entry is not None
        assert len(entry.aligned_iterations) == 2  # rebuilt post-prune

        result = repro.query("train_loss", runs=recorded.run_id,
                             config=config, catalog=catalog)
        by_iteration = result.pivot("train_loss")[recorded.run_id]
        expected = record_values(recorded)
        assert [by_iteration[i] for i in range(EPOCHS)] == pytest.approx(
            expected)
        assert result.stats.missing_cells == 0

    def test_retired_run_keeps_logged_answers_but_no_replay_spans(
            self, flor_config, recorded):
        config = flor_config.with_overrides(adaptive_checkpointing=False)
        catalog = RunCatalog.open(config)
        catalog.retire(recorded.run_id)
        entry = catalog.get(recorded.run_id)
        assert entry.retired and entry.checkpoint_count == 0
        # Logged values still answer without any checkpoint.
        result = repro.query("train_loss", runs=recorded.run_id,
                             config=config, catalog=catalog)
        assert result.stats.resolved_logged == EPOCHS
        assert result.stats.missing_cells == 0
        by_iteration = result.pivot("train_loss")[recorded.run_id]
        assert [by_iteration[i] for i in range(EPOCHS)] == pytest.approx(
            record_values(recorded))
