"""End-to-end integration tests: record a script, query it in hindsight.

These tests exercise the full automatic pipeline — instrumentation, record,
probe detection, partial replay, hindsight parallelism and the deferred
correctness check — on a small but real training script.
"""

from __future__ import annotations

import textwrap

import pytest

import repro
from repro.modes import InitStrategy
from repro.record.recorder import record_source
from repro.replay.replayer import replay_script

TRAINING_SCRIPT = textwrap.dedent("""
    import numpy as np
    from repro import api as flor
    from repro import torchlike as tl

    rng = np.random.default_rng(0)
    X = rng.standard_normal((48, 6)).astype('float32')
    y = (X[:, 0] + X[:, 1] > 0).astype('int64')
    dataset = tl.TensorDataset(X, y)
    trainloader = tl.DataLoader(dataset, batch_size=12, shuffle=True, seed=0)
    net = tl.Sequential(tl.Linear(6, 12, rng=rng), tl.ReLU(),
                        tl.Linear(12, 2, rng=rng))
    optimizer = tl.SGD(net.parameters(), lr=0.2, momentum=0.9)
    criterion = tl.CrossEntropyLoss()


    def evaluate(model):
        with tl.no_grad():
            predictions = model(tl.Tensor(X)).argmax(axis=1).numpy()
        return float((predictions == y).mean())


    for epoch in range(5):
        trainloader.set_epoch(epoch)
        for batch_x, batch_y in trainloader:
            logits = net(tl.Tensor(batch_x))
            loss = criterion(logits, batch_y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        flor.log("train_loss", loss.item())
        flor.log("accuracy", evaluate(net))
""")

INNER_PROBE = TRAINING_SCRIPT.replace(
    "        optimizer.step()",
    "        optimizer.step()\n"
    "        flor.log(\"grad_norm\", float(sum(\n"
    "            float((p.grad ** 2).sum()) for p in net.parameters()\n"
    "            if p.grad is not None)))")

OUTER_PROBE = TRAINING_SCRIPT.replace(
    '    flor.log("accuracy", evaluate(net))',
    '    flor.log("accuracy", evaluate(net))\n'
    '    flor.log("weight_norm", float(sum(\n'
    '        float((p ** 2).sum()) for p in net.parameters())))')

assert INNER_PROBE != TRAINING_SCRIPT and OUTER_PROBE != TRAINING_SCRIPT


@pytest.fixture()
def recorded_run(flor_config):
    """Record the base training script once per test."""
    return record_source(TRAINING_SCRIPT, name="e2e")


class TestRecordPhase:
    def test_record_produces_checkpoints_logs_and_source(self, recorded_run,
                                                         flor_config):
        assert recorded_run.checkpoint_count == 5
        assert recorded_run.stored_nbytes > 0
        losses = [r.value for r in recorded_run.log_records
                  if r.name == "train_loss"]
        assert len(losses) == 5
        assert losses[-1] < losses[0]  # training actually converges
        run_dir = flor_config.run_dir(recorded_run.run_id)
        assert (run_dir / "record.log").exists()
        assert (run_dir / "source" / "script.py").exists()
        assert (run_dir / "manifest.sqlite").exists()

    def test_record_metadata_describes_blocks(self, recorded_run, flor_config):
        from repro.storage.checkpoint_store import CheckpointStore
        store = CheckpointStore(flor_config.run_dir(recorded_run.run_id))
        blocks = store.get_metadata("blocks")
        assert "skipblock_0" in blocks
        assert "optimizer" in blocks["skipblock_0"]["changeset"]

    def test_record_overhead_is_reported(self, recorded_run):
        assert recorded_run.wall_seconds > 0
        assert 0 <= recorded_run.overhead_fraction < 1


class TestPartialReplay:
    def test_unmodified_replay_skips_all_blocks_and_matches_logs(
            self, recorded_run):
        replay = replay_script(recorded_run.run_id)
        assert replay.probed_blocks == set()
        assert replay.consistency is not None
        assert replay.consistency.consistent
        record_losses = [r.value for r in recorded_run.log_records
                         if r.name == "train_loss"]
        assert replay.values("train_loss") == pytest.approx(record_losses)

    def test_outer_probe_replay_produces_new_values_without_reexecution(
            self, recorded_run):
        replay = replay_script(recorded_run.run_id, new_source=OUTER_PROBE)
        assert replay.probed_blocks == set()
        weight_norms = replay.values("weight_norm")
        assert len(weight_norms) == 5
        assert all(value > 0 for value in weight_norms)
        assert replay.consistency.consistent

    def test_inner_probe_replay_reexecutes_training_loop(self, recorded_run):
        replay = replay_script(recorded_run.run_id, new_source=INNER_PROBE)
        assert replay.probed_blocks == {"skipblock_0"}
        grad_norms = replay.values("grad_norm")
        # 5 epochs x 4 batches of hindsight-logged gradient norms.
        assert len(grad_norms) == 20
        assert all(value >= 0 for value in grad_norms)
        # Re-execution reproduces the recorded metrics exactly.
        assert replay.consistency.consistent

    def test_explicit_probe_override(self, recorded_run):
        replay = replay_script(recorded_run.run_id,
                               probed_blocks={"skipblock_0"})
        assert replay.probed_blocks == {"skipblock_0"}
        assert replay.consistency.consistent


class TestHindsightParallelism:
    @pytest.mark.parametrize("init_strategy",
                             [InitStrategy.STRONG, InitStrategy.WEAK])
    def test_parallel_replay_matches_record(self, recorded_run, init_strategy):
        replay = replay_script(recorded_run.run_id, new_source=OUTER_PROBE,
                               num_workers=2, init_strategy=init_strategy)
        assert len(replay.worker_results) == 2
        assert replay.succeeded
        assert replay.consistency.consistent
        assert len(replay.values("weight_norm")) == 5
        covered = sorted(index for worker in replay.worker_results
                         for index in worker.iterations)
        assert covered == [0, 1, 2, 3, 4]

    def test_parallel_inner_probe(self, recorded_run):
        replay = replay_script(recorded_run.run_id, new_source=INNER_PROBE,
                               num_workers=2)
        assert replay.consistency.consistent
        assert len(replay.values("grad_norm")) == 20

    def test_more_workers_than_epochs(self, recorded_run):
        replay = replay_script(recorded_run.run_id, num_workers=7)
        assert replay.succeeded
        covered = sorted(index for worker in replay.worker_results
                         for index in worker.iterations)
        assert covered == [0, 1, 2, 3, 4]


class TestFailureModes:
    def test_replaying_unknown_run_raises(self, flor_config):
        with pytest.raises(repro.ReplayError, match="no recorded run"):
            replay_script("does-not-exist")

    def test_recording_missing_script_file_raises(self, flor_config, tmp_path):
        with pytest.raises(repro.RecordError, match="not found"):
            repro.record_script(tmp_path / "missing.py")

    def test_broken_replay_source_reports_worker_failure(self, recorded_run):
        broken = TRAINING_SCRIPT.replace(
            '    flor.log("train_loss", loss.item())',
            '    flor.log("train_loss", loss.item())\n'
            '    raise RuntimeError("injected failure")')
        assert broken != TRAINING_SCRIPT
        with pytest.raises(repro.ReplayError, match="injected failure"):
            replay_script(recorded_run.run_id, new_source=broken)
