"""Parallel replay under sparse (adaptive) checkpointing.

The adaptive controller materializes only a subset of Loop End Checkpoints,
so parallel replay cannot assume every segment boundary is restorable.
These tests pin the checkpoint pattern deterministically (a sparsified
Joint-Invariant decision) and exercise the checkpoint-aware scheduler end
to end, plus regressions for the weak-init divergence, fork-safety and
log-ordering bugs.
"""

from __future__ import annotations

import textwrap
from contextlib import contextmanager
from dataclasses import replace as dataclass_replace

import numpy as np
import pytest

import repro
from repro.modes import InitStrategy, Mode
from repro.record.adaptive import AdaptiveController
from repro.record.logger import LogRecord
from repro.record.recorder import record_source
from repro.replay.replayer import ReplayResult, replay_script
from repro.session import Session
from repro.storage.serializer import snapshot_value

EPOCHS = 6

TRAINING_SCRIPT = textwrap.dedent(f"""
    import numpy as np
    from repro import api as flor
    from repro import torchlike as tl

    rng = np.random.default_rng(0)
    X = rng.standard_normal((48, 6)).astype('float32')
    y = (X[:, 0] + X[:, 1] > 0).astype('int64')
    dataset = tl.TensorDataset(X, y)
    trainloader = tl.DataLoader(dataset, batch_size=12, shuffle=True, seed=0)
    net = tl.Sequential(tl.Linear(6, 12, rng=rng), tl.ReLU(),
                        tl.Linear(12, 2, rng=rng))
    optimizer = tl.SGD(net.parameters(), lr=0.2, momentum=0.9)
    criterion = tl.CrossEntropyLoss()

    for epoch in range({EPOCHS}):
        trainloader.set_epoch(epoch)
        for batch_x, batch_y in trainloader:
            logits = net(tl.Tensor(batch_x))
            loss = criterion(logits, batch_y)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        flor.log("train_loss", loss.item())
""")


@contextmanager
def materialize_only(period: int, offset: int = 0):
    """Sparsify the Joint Invariant: keep every ``period``-th checkpoint.

    Deterministic stand-in for what adaptive checkpointing does under a
    tight overhead budget (timing-based decisions would flake in CI).
    ``period=0`` drops every checkpoint.
    """
    original = AdaptiveController.should_materialize

    def sparse(self, block_id, compute_seconds, payload_nbytes):
        decision = original(self, block_id, compute_seconds, payload_nbytes)
        index = self.block(block_id).executions - 1  # set by observe_execution
        keep = period > 0 and index % period == offset
        return dataclass_replace(decision, materialize=keep,
                                 reason=f"test sparsifier period={period}")

    AdaptiveController.should_materialize = sparse
    try:
        yield
    finally:
        AdaptiveController.should_materialize = original


def record_sparse(period: int, offset: int = 0, name: str = "sparse"):
    with materialize_only(period, offset):
        return record_source(TRAINING_SCRIPT, name=name)


def covered_iterations(replay: ReplayResult) -> list[int]:
    return sorted(index for worker in replay.worker_results
                  for index in worker.iterations)


class TestSparseParallelReplay:
    """End-to-end hindsight parallelism over a sparse checkpoint store."""

    @pytest.mark.parametrize("num_workers", [1, 2, 4])
    @pytest.mark.parametrize("scheduler", ["static", "dynamic"])
    def test_replay_is_clean_across_workers_and_schedulers(
            self, flor_config, scheduler, num_workers):
        recorded = record_sparse(period=3, name=f"sparse-{scheduler}")
        assert recorded.checkpoint_count == 2  # epochs 0 and 3 of 6
        config = flor_config.with_overrides(replay_scheduler=scheduler,
                                            replay_chunk_size=2)
        replay = replay_script(recorded.run_id, num_workers=num_workers,
                               config=config)
        assert replay.succeeded
        assert replay.consistency is not None
        assert replay.consistency.consistent
        assert covered_iterations(replay) == list(range(EPOCHS))
        record_losses = [r.value for r in recorded.log_records
                         if r.name == "train_loss"]
        assert replay.values("train_loss") == pytest.approx(record_losses)

    def test_static_segments_align_to_materialized_checkpoints(
            self, flor_config):
        recorded = record_sparse(period=3, name="sparse-align")
        from repro.storage.checkpoint_store import CheckpointStore
        store = CheckpointStore(flor_config.run_dir(recorded.run_id))
        assert store.list_executions("skipblock_0") == [0, 3]
        assert store.get_metadata("loop_blocks") == ["skipblock_0"]
        stats = store.get_metadata("iteration_stats")
        assert len(stats["per_iteration_compute_seconds"]) == EPOCHS
        assert stats["mean_compute_seconds"] > 0

        from repro.replay.scheduler import ReplayScheduler
        scheduler = ReplayScheduler(store, EPOCHS, 2)
        segments = scheduler.static_segments()
        for segment in segments[1:]:
            if len(segment):
                # Every non-leading boundary sits right after a checkpoint.
                assert segment.start - 1 in {0, 3}

    def test_dynamic_replay_cleans_up_its_queue_file(self, flor_config):
        recorded = record_sparse(period=2, name="sparse-queue")
        config = flor_config.with_overrides(replay_scheduler="dynamic",
                                            replay_chunk_size=2)
        replay = replay_script(recorded.run_id, num_workers=2, config=config)
        assert replay.succeeded
        run_dir = flor_config.run_dir(recorded.run_id)
        assert not list(run_dir.glob("replay-queue-*"))


class TestWeakInitDivergenceRegression:
    """Weak init at an uncheckpointed boundary must recompute, not rewind."""

    def test_uniform_weak_replay_of_uncheckpointed_boundary_is_consistent(
            self, flor_config):
        # Checkpoints at epochs 0 and 4 only; the uniform 2-worker boundary
        # at 3 has no checkpoint at 2, and epoch 3 has none either — the old
        # weak init silently replayed epoch 3 from epoch 0's state.
        recorded = record_sparse(period=4, name="weak-gap")
        config = flor_config.with_overrides(replay_scheduler="uniform")
        replay = replay_script(recorded.run_id, num_workers=2,
                               init_strategy=InitStrategy.WEAK, config=config)
        assert replay.succeeded
        assert replay.consistency.consistent
        record_losses = [r.value for r in recorded.log_records
                         if r.name == "train_loss"]
        assert replay.values("train_loss") == pytest.approx(record_losses)

    def test_weak_replay_without_any_checkpoint_recomputes_with_warning(
            self, flor_config):
        recorded = record_sparse(period=0, name="weak-none")
        assert recorded.checkpoint_count == 0
        config = flor_config.with_overrides(replay_scheduler="uniform")
        replay = replay_script(recorded.run_id, num_workers=1,
                               init_strategy=InitStrategy.WEAK, config=config)
        assert replay.consistency.consistent

        replay = replay_script(recorded.run_id, num_workers=2,
                               init_strategy=InitStrategy.WEAK, config=config)
        assert replay.succeeded
        assert replay.consistency.consistent

    def test_weak_replay_without_any_checkpoint_raises_when_strict(
            self, flor_config):
        recorded = record_sparse(period=0, name="weak-strict")
        config = flor_config.with_overrides(replay_scheduler="uniform",
                                            strict_consistency=True)
        with pytest.raises(repro.ReplayError, match="no usable checkpoint"):
            replay_script(recorded.run_id, num_workers=2,
                          init_strategy=InitStrategy.WEAK, config=config)


class TestForkSafetyRegression:
    """Parallel replay launched while a live session holds spool threads
    and a WAL-mode SQLite connection must not corrupt either."""

    def test_parallel_replay_inside_live_spool_record_session(
            self, flor_config):
        recorded = record_sparse(period=3, name="fork-safety")
        spool_config = flor_config.with_overrides(
            background_materialization="spool", spool_workers=2)
        parent = Session("fork-parent", Mode.RECORD, config=spool_config)
        with parent:
            # Keep the spool pipeline genuinely warm while we fork/spawn.
            for index in range(4):
                parent.materializer.submit(
                    "warm", index,
                    [snapshot_value("w", np.zeros(256, dtype=np.float32))])
            replay = replay_script(recorded.run_id, num_workers=2,
                                   config=spool_config)
            assert replay.succeeded
            assert replay.consistency.consistent
            # The parent session's store is still usable afterwards.
            parent.materializer.flush()
            assert parent.store.contains("warm", 0)
        assert parent.store.list_executions("warm") == [0, 1, 2, 3]


class TestLogOrderingRegression:
    """ReplayResult.values must honour iteration order, not worker order."""

    def test_values_sorts_concatenated_worker_logs(self):
        late_worker = [LogRecord("loss", 3.0, iteration=3, sequence=0),
                       LogRecord("loss", 4.0, iteration=4, sequence=1)]
        early_worker = [LogRecord("loss", 0.0, iteration=0, sequence=0),
                        LogRecord("loss", 1.0, iteration=1, sequence=1)]
        result = ReplayResult(
            run_id="r", probed_blocks=set(), num_workers=2,
            init_strategy=InitStrategy.STRONG, wall_seconds=0.0,
            log_records=late_worker + early_worker)  # worker order, unsorted
        assert result.values("loss") == [0.0, 1.0, 3.0, 4.0]

    def test_merged_logs_reach_consistency_check_in_iteration_order(
            self, flor_config):
        recorded = record_sparse(period=2, name="ordering")
        replay = replay_script(recorded.run_id, num_workers=3)
        iterations = [record.iteration for record in replay.log_records
                      if record.name == "train_loss"]
        assert iterations == sorted(iterations)
        assert replay.consistency.consistent
