"""End-to-end tests of the hindsight query engine (the PR's acceptance bar).

Three runs are recorded with *sparse* checkpoints (a deterministic
sparsified Joint Invariant, as in the parallel-replay suite); one
multi-run query then asks for a value the record phase never logged.  The
planner must replay only the uncovered segments (asserted through the
replay-job ledger), the results must match a full sequential replay, and
an identical second query must be served from the memo cache — zero
replay jobs, at least 5x faster.
"""

from __future__ import annotations

import textwrap
from contextlib import contextmanager
from dataclasses import replace as dataclass_replace

import pytest

import repro
from repro.exceptions import QueryError
from repro.query.catalog import RunCatalog
from repro.query.memo import MemoCache
from repro.record.adaptive import AdaptiveController
from repro.record.recorder import record_source
from repro.replay.replayer import replay_script
from repro.storage.checkpoint_store import CheckpointStore

EPOCHS = 8

#: Per-epoch device wait: keeps cold-query replay genuinely more expensive
#: than the memo read path the 5x assertion compares against.
ITER_SECONDS = 0.02

TRAINING_SCRIPT = textwrap.dedent(f"""
    import time

    import numpy as np
    from repro import api as flor

    rng = np.random.default_rng(3)
    state = rng.standard_normal(512).astype('float32')

    for epoch in range({EPOCHS}):
        for _step in range(1):
            time.sleep({ITER_SECONDS})
            state = np.roll(state, 1) * 0.999 + float(epoch + 1) * 1e-3
        flor.log("train_loss", float(abs(state).mean()))
""")

#: The hindsight probe: ``state_sum`` was never logged at record time.
PROBE_SCRIPT = TRAINING_SCRIPT.replace(
    'flor.log("train_loss", float(abs(state).mean()))',
    'flor.log("train_loss", float(abs(state).mean()))\n'
    '    flor.log("state_sum", float(state.sum()))')


@contextmanager
def materialize_only(period: int, offset: int = 0):
    """Deterministically sparsify the Joint Invariant (CI-stable)."""
    original = AdaptiveController.should_materialize

    def sparse(self, block_id, compute_seconds, payload_nbytes):
        decision = original(self, block_id, compute_seconds, payload_nbytes)
        index = self.block(block_id).executions - 1
        keep = period > 0 and index % period == offset
        return dataclass_replace(decision, materialize=keep,
                                 reason=f"test sparsifier period={period}")

    AdaptiveController.should_materialize = sparse
    try:
        yield
    finally:
        AdaptiveController.should_materialize = original


@pytest.fixture()
def three_sparse_runs(flor_config):
    """Three recorded runs with checkpoints only at epochs 0, 3 and 6."""
    run_ids = []
    with materialize_only(period=3):
        for index in range(3):
            recorded = record_source(TRAINING_SCRIPT, name=f"hq{index}",
                                     config=flor_config)
            assert recorded.checkpoint_count == 3  # epochs 0, 3, 6
            run_ids.append(recorded.run_id)
    return run_ids


class TestHindsightQueryEndToEnd:
    """The acceptance scenario, step by step."""

    def test_cold_query_replays_only_uncovered_segments_then_memo_serves(
            self, flor_config, three_sparse_runs):
        run_ids = three_sparse_runs
        wanted = slice(4, EPOCHS)  # epochs 4..7; nearest checkpoint is 3

        cold = repro.query(values=["train_loss", "state_sum"],
                           runs=run_ids, iterations=wanted,
                           source=PROBE_SCRIPT, config=flor_config,
                           workers=2)

        # -- replay-job accounting: only the uncovered segment replays ---- #
        # train_loss is already logged (free); state_sum needs recompute of
        # epochs 4..7, reachable exactly from the checkpoint at epoch 3.
        assert cold.stats.replay_job_count == 3  # one span per run
        for job in cold.stats.replay_jobs:
            assert (job.start, job.stop) == (4, EPOCHS)
            assert job.restore_index == 3
        assert cold.stats.replayed_iterations == 3 * (EPOCHS - 4)
        assert cold.stats.resolved_logged == 3 * (EPOCHS - 4)  # train_loss
        assert cold.stats.resolved_replay == 3 * (EPOCHS - 4)  # state_sum
        assert cold.stats.missing_cells == 0

        # -- results match a full sequential replay ----------------------- #
        for run_id in run_ids:
            sequential = replay_script(run_id, new_source=PROBE_SCRIPT,
                                       num_workers=1, config=flor_config)
            expected = sequential.values("state_sum")[4:EPOCHS]
            assert cold.values("state_sum", run_id) == \
                pytest.approx(expected)
            expected_loss = sequential.values("train_loss")[4:EPOCHS]
            assert cold.values("train_loss", run_id) == \
                pytest.approx(expected_loss)

        # -- the write-back landed in each run's storage backend ---------- #
        for run_id in run_ids:
            store = CheckpointStore(flor_config.run_dir(run_id))
            assert len(MemoCache.keys(store)) == 1
            store.close()
        assert cold.stats.memo_cells_written > 0

        # -- identical second query: zero jobs, >= 5x faster -------------- #
        warm = repro.query(values=["train_loss", "state_sum"],
                           runs=run_ids, iterations=wanted,
                           source=PROBE_SCRIPT, config=flor_config,
                           workers=2)
        assert warm.stats.replay_job_count == 0
        assert warm.stats.resolved_replay == 0
        assert warm.stats.resolved_memo == 3 * (EPOCHS - 4)
        # Identical cells and values; only the source column moves from
        # "replay" to "memo".
        strip = lambda records: [  # noqa: E731
            {key: value for key, value in record.items() if key != "source"}
            for record in records]
        assert strip(warm.to_records()) == strip(cold.to_records())
        assert warm.stats.total_seconds * 5 <= cold.stats.total_seconds, (
            f"memoized re-query not >=5x faster: cold="
            f"{cold.stats.total_seconds:.3f}s warm="
            f"{warm.stats.total_seconds:.3f}s")

    def test_overlapping_query_replays_only_the_new_tail(
            self, flor_config, three_sparse_runs):
        run_ids = three_sparse_runs
        first = repro.query(values="state_sum", runs=run_ids,
                            iterations=slice(4, 7), source=PROBE_SCRIPT,
                            config=flor_config, workers=1)
        assert first.stats.replay_job_count == 3
        # Epochs 4-6 are now memoized; only epoch 7 still needs replay,
        # and epoch 6 has a checkpoint, so each new span is one restore
        # plus a single recomputed iteration.
        second = repro.query(values="state_sum", runs=run_ids,
                             iterations=slice(4, EPOCHS),
                             source=PROBE_SCRIPT, config=flor_config,
                             workers=1)
        assert second.stats.resolved_memo == 3 * 3
        assert second.stats.resolved_replay == 3 * 1
        for job in second.stats.replay_jobs:
            assert (job.start, job.stop) == (7, EPOCHS)
            assert job.restore_index == 6

    def test_logged_values_never_schedule_replay(self, flor_config,
                                                 three_sparse_runs):
        result = repro.query(values="train_loss", runs=three_sparse_runs,
                             config=flor_config)
        assert result.stats.replay_job_count == 0
        assert result.stats.resolved_logged == 3 * EPOCHS
        assert len(result.rows) == 3 * EPOCHS

    def test_unlogged_value_without_probe_source_is_missing_not_replayed(
            self, flor_config, three_sparse_runs):
        result = repro.query(values="state_sum", runs=three_sparse_runs,
                             config=flor_config)
        assert result.stats.replay_job_count == 0
        assert result.stats.missing_cells == 3 * EPOCHS
        assert result.rows == []

    def test_blank_line_only_source_schedules_no_jobs(self, flor_config,
                                                      three_sparse_runs):
        """A probe source that differs only in blank lines cannot log
        anything new — the planner must not schedule replay jobs for it."""
        cosmetic = TRAINING_SCRIPT.replace(
            "        state = np.roll",
            "\n        state = np.roll") + "\n\n"
        result = repro.query(values="state_sum", runs=three_sparse_runs,
                             source=cosmetic, config=flor_config)
        assert result.stats.replay_job_count == 0
        assert result.stats.missing_cells == 3 * EPOCHS

    def test_query_with_single_job_inside_live_record_session(
            self, flor_config, three_sparse_runs):
        """A query issued while a Flor session is active must route even a
        single replay job through the worker pool — the in-process path
        cannot activate a second session."""
        from repro.modes import Mode
        from repro.session import Session
        parent = Session("query-parent", Mode.RECORD, config=flor_config)
        with parent:
            result = repro.query(values="state_sum",
                                 runs=three_sparse_runs[:1],
                                 iterations=slice(4, 6),
                                 source=PROBE_SCRIPT, config=flor_config,
                                 workers=1)
        assert result.stats.replay_job_count == 1
        assert result.stats.missing_cells == 0
        assert len(result.values("state_sum")) == 2

    def test_query_all_runs_via_catalog_default(self, flor_config,
                                                three_sparse_runs):
        result = repro.query(values="train_loss", config=flor_config)
        assert result.runs() == three_sparse_runs  # recording order

    def test_empty_selection_raises(self, flor_config):
        with pytest.raises(QueryError, match="no runs match"):
            repro.query(values="loss", config=flor_config)

    def test_reused_catalog_skips_rescan(self, flor_config,
                                         three_sparse_runs):
        catalog = RunCatalog.open(flor_config)
        result = repro.query(values="train_loss", config=flor_config,
                             catalog=catalog)
        assert result.stats.runs == 3


class TestQueryResultShapes:
    def test_pivot_and_by_iteration(self, flor_config, three_sparse_runs):
        result = repro.query(values="train_loss", runs=three_sparse_runs,
                             iterations=slice(0, 2), config=flor_config)
        pivot = result.pivot("train_loss")
        assert set(pivot) == set(three_sparse_runs)
        assert set(pivot[three_sparse_runs[0]]) == {0, 1}
        by_iteration = result.by_iteration("train_loss")
        assert set(by_iteration) == {0, 1}
        assert set(by_iteration[0]) == set(three_sparse_runs)

    def test_to_records_rows_are_plain_dicts(self, flor_config,
                                             three_sparse_runs):
        result = repro.query(values="train_loss",
                             runs=three_sparse_runs[:1],
                             iterations=0, config=flor_config)
        [record] = result.to_records()
        assert record["run_id"] == three_sparse_runs[0]
        assert record["iteration"] == 0
        assert record["name"] == "train_loss"
        assert record["source"] == "logged"
