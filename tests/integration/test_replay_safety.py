"""End-to-end tests for the replay-safety static analysis.

The acceptance scenarios of the static-analysis PR:

* a ``PURE_LOGGED`` hindsight probe — one whose expression reads only
  record-time logged values — is answered with **zero replay jobs**; the
  planner resolves every cell from the analysis evaluator;
* a ``MUTATING`` probe is rejected at plan time with an ``RPL001``
  diagnostic naming the offending line, before any job is scheduled;
* the recorder's lint gate warns (default) or fails (``strict_analysis``)
  on hazardous scripts and snapshots the diagnostics as run metadata.
"""

from __future__ import annotations

import textwrap

import pytest

import repro
from repro.config import FlorConfig
from repro.exceptions import RecordError, ReplaySafetyError
from repro.record.recorder import record_source
from repro.replay.replayer import replay_script
from repro.storage.checkpoint_store import CheckpointStore

EPOCHS = 6

TRAINING_SCRIPT = textwrap.dedent(f"""
    import numpy as np
    from repro import api as flor

    rng = np.random.default_rng(7)
    state = rng.standard_normal(64).astype('float32')

    for epoch in range({EPOCHS}):
        for _step in range(1):
            state = np.roll(state, 1) * 0.99 + float(epoch + 1) * 1e-3
        flor.log("train_loss", float(abs(state).mean()))
""")

#: Reads only the logged ``train_loss`` — resolvable without replay.
PURE_PROBE = TRAINING_SCRIPT.replace(
    'flor.log("train_loss", float(abs(state).mean()))',
    'flor.log("train_loss", float(abs(state).mean()))\n'
    '    flor.log("loss_sq", train_loss * train_loss)')

#: Rebinds ``state``, a changeset name — must be refused.
MUTATING_PROBE = TRAINING_SCRIPT.replace(
    'flor.log("train_loss", float(abs(state).mean()))',
    'state = state * 0.0\n'
    '    flor.log("train_loss", float(abs(state).mean()))')

HAZARDOUS_SCRIPT = textwrap.dedent("""
    import random
    import time
    from repro import api as flor

    total = 0.0
    for epoch in range(3):
        for _step in range(1):
            total = total + random.random() + time.time()
        flor.log("total", total)
""")


@pytest.fixture()
def recorded_run(flor_config):
    recorded = record_source(TRAINING_SCRIPT, name="safety",
                             config=flor_config)
    return recorded.run_id


class TestPureLoggedQueries:
    def test_pure_logged_probe_needs_zero_replay_jobs(self, flor_config,
                                                      recorded_run):
        logged = repro.query(values="train_loss", runs=[recorded_run],
                             config=flor_config)
        result = repro.query(values="loss_sq", runs=[recorded_run],
                             source=PURE_PROBE, config=flor_config)
        assert result.stats.replay_job_count == 0
        assert result.stats.replay_jobs == []
        assert result.stats.analysis_resolved == EPOCHS
        assert result.stats.missing_cells == 0
        expected = [value * value
                    for value in logged.values("train_loss")]
        assert result.values("loss_sq") == pytest.approx(expected)
        assert all(row.source == "analysis" for row in result.rows)

    def test_mixed_query_combines_logged_and_analysis(self, flor_config,
                                                      recorded_run):
        result = repro.query(values=["train_loss", "loss_sq"],
                             runs=[recorded_run], source=PURE_PROBE,
                             config=flor_config)
        assert result.stats.replay_job_count == 0
        assert result.stats.resolved_logged == EPOCHS
        assert result.stats.analysis_resolved == EPOCHS
        assert "analysis-resolved" in result.stats.summary()

    def test_pure_state_probe_still_replays(self, flor_config, recorded_run):
        state_probe = TRAINING_SCRIPT.replace(
            'flor.log("train_loss", float(abs(state).mean()))',
            'flor.log("train_loss", float(abs(state).mean()))\n'
            '    flor.log("state_sum", float(state.sum()))')
        result = repro.query(values="state_sum", runs=[recorded_run],
                             source=state_probe, config=flor_config,
                             workers=1)
        assert result.stats.replay_job_count >= 1
        assert result.stats.missing_cells == 0
        assert len(result.values("state_sum")) == EPOCHS


class TestMutatingProbeRefusal:
    def test_query_rejects_mutating_probe_at_plan_time(self, flor_config,
                                                       recorded_run):
        with pytest.raises(ReplaySafetyError) as excinfo:
            repro.query(values="train_loss", runs=[recorded_run],
                        source=MUTATING_PROBE, config=flor_config)
        message = str(excinfo.value)
        assert "RPL001" in message
        assert "state" in message
        # The diagnostic names the offending line of the probe source.
        offending = next(index + 1
                         for index, line
                         in enumerate(MUTATING_PROBE.splitlines())
                         if line.strip() == "state = state * 0.0")
        assert f":{offending}:" in message
        report = excinfo.value.report
        assert report is not None and report.has_errors

    def test_replay_script_refuses_mutating_probe(self, flor_config,
                                                  recorded_run):
        with pytest.raises(ReplaySafetyError):
            replay_script(recorded_run, new_source=MUTATING_PROBE,
                          num_workers=1, config=flor_config)

    def test_verbatim_replay_is_not_gated(self, flor_config, recorded_run):
        result = replay_script(recorded_run, num_workers=1,
                               config=flor_config)
        assert len(result.values("train_loss")) == EPOCHS


class TestRecordLintGate:
    def test_default_mode_warns_and_persists_lint_metadata(self, tmp_path):
        config = FlorConfig(home=tmp_path / "flor_home")
        with pytest.warns(repro.ReplaySafetyWarning, match="RPL101"):
            recorded = record_source(HAZARDOUS_SCRIPT, name="hazard",
                                     config=config)
        store = CheckpointStore(config.run_dir(recorded.run_id))
        payload = store.get_metadata("lint")
        store.close()
        assert payload is not None
        codes = {row["code"] for row in payload}
        assert {"RPL101", "RPL102"} <= codes

    def test_strict_analysis_fails_the_record(self, tmp_path):
        config = FlorConfig(home=tmp_path / "flor_home",
                            strict_analysis=True)
        with pytest.raises(RecordError, match="strict_analysis"):
            record_source(HAZARDOUS_SCRIPT, name="strict", config=config)
        # The gate fires before the session opens: no run dir left behind.
        home = tmp_path / "flor_home"
        assert not home.exists() or not any(home.iterdir())

    def test_clean_script_records_without_warning_or_metadata(
            self, flor_config, recorded_run):
        store = CheckpointStore(flor_config.run_dir(recorded_run))
        lint_payload = store.get_metadata("lint")
        store.close()
        assert lint_payload is None
