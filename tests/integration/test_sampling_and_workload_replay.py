"""Integration tests for sampling replay (§8) and workload record/replay."""

from __future__ import annotations

import pytest

import repro
from repro.record.recorder import record_source
from repro.replay.replayer import replay_script
from repro.workloads import build_training_script


@pytest.fixture()
def recorded_imgn(flor_config):
    """A recorded 6-epoch miniature ImgN run."""
    script = build_training_script("ImgN", epochs=6)
    record = record_source(script, name="sampling", config=flor_config)
    return {"record": record, "script": script}


class TestSamplingReplay:
    def test_sampled_iterations_only(self, recorded_imgn):
        """Sampling replay visits exactly the requested iterations."""
        record = recorded_imgn["record"]
        replay = replay_script(record.run_id, sample_iterations=[1, 4])
        covered = sorted(index for worker in replay.worker_results
                         for index in worker.iterations)
        assert covered == [1, 4]
        assert replay.consistency.consistent

    @pytest.mark.filterwarnings("ignore::UserWarning")
    def test_sampled_probe_recovers_values_for_sampled_epochs(self,
                                                              recorded_imgn):
        record = recorded_imgn["record"]
        script = recorded_imgn["script"]
        probed = script.replace(
            "        optimizer.step()",
            "        optimizer.step()\n"
            "        flor.log(\"batch_loss\", loss.item())")
        assert probed != script
        replay = replay_script(record.run_id, new_source=probed,
                               sample_iterations=[2, 5])
        # Hindsight values produced only for the sampled epochs.
        iterations = {r.iteration for r in replay.log_records
                      if r.name == "batch_loss"}
        assert iterations == {2, 5}
        # Probed re-execution after a random-access jump can see slightly
        # different outer-loop state (here: the LR scheduler's step count is
        # not part of the training loop's checkpoint).  The paper's answer is
        # the deferred correctness check: anomalies are *detected* and
        # surfaced to the user rather than silently ignored.  Any mismatch
        # must be confined to the sampled (re-executed) iterations.
        assert replay.consistency is not None
        for record_rec, _replay_rec in replay.consistency.mismatches:
            assert record_rec.iteration in {2, 5}

    def test_sampling_matches_record_values_exactly(self, recorded_imgn):
        record = recorded_imgn["record"]
        record_losses = {r.iteration: r.value for r in record.log_records
                         if r.name == "train_loss"}
        replay = replay_script(record.run_id, sample_iterations=[3])
        assert replay.values("train_loss") == pytest.approx(
            [record_losses[3]])

    def test_out_of_range_samples_are_ignored(self, recorded_imgn):
        record = recorded_imgn["record"]
        replay = replay_script(record.run_id, sample_iterations=[2, 99])
        covered = sorted(index for worker in replay.worker_results
                         for index in worker.iterations)
        assert covered == [2]

    def test_sampling_requires_single_worker(self, recorded_imgn):
        record = recorded_imgn["record"]
        with pytest.raises(repro.ReplayError, match="single worker"):
            replay_script(record.run_id, sample_iterations=[1],
                          num_workers=2)


class TestWorkloadRecordReplay:
    @pytest.mark.parametrize("workload", ["RTE", "Jasp"])
    def test_record_then_partial_replay_is_consistent(self, flor_config,
                                                      workload):
        """The auto-instrumentation path works across workload modalities."""
        script = build_training_script(workload, epochs=3)
        record = record_source(script, name=f"wl-{workload}",
                               config=flor_config)
        assert record.checkpoint_count == 3
        replay = replay_script(record.run_id)
        assert replay.probed_blocks == set()
        assert replay.consistency.consistent
        record_losses = [r.value for r in record.log_records
                         if r.name == "train_loss"]
        assert replay.values("train_loss") == pytest.approx(record_losses)

    def test_explicit_session_api_with_workload(self, flor_config):
        """The explicit record_session / replay_session context managers."""
        from repro import torchlike as tl
        from repro.workloads.training import make_training_setup

        def run(session):
            setup = make_training_setup("ImgN")
            losses = []
            for epoch in repro.loop(range(3)):
                setup.trainloader.set_epoch(epoch)
                sb = repro.skipblock("train")
                if sb.should_execute():
                    for inputs, targets in setup.trainloader:
                        loss = setup.criterion(setup.net(tl.Tensor(inputs)),
                                               targets)
                        setup.optimizer.zero_grad()
                        loss.backward()
                        setup.optimizer.step()
                sb.end(_namespace={"net": setup.net},
                       optimizer=setup.optimizer)
                with tl.no_grad():
                    inputs, targets = next(iter(setup.trainloader))
                    value = setup.criterion(setup.net(tl.Tensor(inputs)),
                                            targets).item()
                repro.log("probe_loss", value)
                losses.append(value)
            return losses

        with repro.record_session("explicit-api") as record_session:
            recorded = run(record_session)
            run_id = record_session.run_id

        with repro.replay_session(run_id) as replay_session:
            replayed = run(replay_session)

        assert replayed == pytest.approx(recorded, rel=1e-5)
