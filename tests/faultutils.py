"""Reusable fault-injection helpers for crash-consistency tests.

The storage layer's crash-safety story is an *ordering* claim: payloads
are written before the manifest rows that reference them, and deleted
only after no manifest row references them.  These helpers simulate a
process dying at the worst possible instant — mid-GC sweep, mid-batch
manifest commit, between a payload write and its index — by arming a
method to raise :class:`InjectedCrash` on its N-th call, then let the
test "reboot" (reopen the store) and assert the two invariants that must
survive any crash:

* **no dangling manifest rows** — every indexed checkpoint's payload is
  readable and matches its recorded digest
  (:func:`assert_manifest_closed`);
* **no orphaned payloads** — after one GC pass, every blob in the home's
  object store is referenced by some manifest
  (:func:`assert_no_orphans`).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import Counter
from contextlib import contextmanager
from pathlib import Path

from repro.storage.lifecycle import collect_garbage, referenced_digest_counts
from repro.utils.hashing import digest_bytes

__all__ = ["InjectedCrash", "FaultInjector", "crash_calls",
           "assert_manifest_closed", "assert_no_orphans",
           "assert_crash_consistent", "assert_refcounts_exact",
           "start_recorder_process", "start_client_process",
           "wait_for_file", "kill_process"]


class InjectedCrash(Exception):
    """The simulated process death (raised mid-operation by an armed hook)."""


class FaultInjector:
    """Arms methods on live objects to crash on a chosen call.

    ``inject(obj, "method", on_call=2)`` replaces ``obj.method`` with a
    wrapper that delegates normally until the 2nd call, which raises
    :class:`InjectedCrash` — *before* delegating by default (the crash
    lands at the operation boundary), or after when ``after=True`` (the
    operation takes effect, then the process "dies" before whatever was
    supposed to follow).  ``restore()`` puts every patched method back;
    use :func:`crash_calls` for the context-managed form.
    """

    def __init__(self):
        self._patched: list[tuple[object, str, object]] = []
        self.calls: dict[str, int] = {}

    def inject(self, obj, method_name: str, *, on_call: int = 1,
               after: bool = False) -> None:
        original = getattr(obj, method_name)
        label = f"{type(obj).__name__}.{method_name}"
        self.calls.setdefault(label, 0)

        def wrapper(*args, **kwargs):
            self.calls[label] += 1
            crash_now = self.calls[label] == on_call
            if crash_now and not after:
                raise InjectedCrash(f"{label} call #{on_call} (before)")
            result = original(*args, **kwargs)
            if crash_now:
                raise InjectedCrash(f"{label} call #{on_call} (after)")
            return result

        self._patched.append((obj, method_name, original))
        setattr(obj, method_name, wrapper)

    def restore(self) -> None:
        while self._patched:
            obj, method_name, original = self._patched.pop()
            setattr(obj, method_name, original)


@contextmanager
def crash_calls(obj, method_name: str, *, on_call: int = 1,
                after: bool = False):
    """Context-managed single-method injection (restored on exit)."""
    injector = FaultInjector()
    injector.inject(obj, method_name, on_call=on_call, after=after)
    try:
        yield injector
    finally:
        injector.restore()


# --------------------------------------------------------------------------- #
# Post-crash invariants
# --------------------------------------------------------------------------- #
def assert_manifest_closed(store) -> int:
    """Every manifest row's payload is readable and digest-verified.

    This is the "no dangling manifest entries" half of the recovery
    contract: whatever a crash interrupted, a reopened store must be able
    to serve every checkpoint its manifest still claims.  Returns the
    number of rows verified.
    """
    records = store.records()
    for record in records:
        if record.is_chunked():
            # Delta rows have no single payload file; reassembly verifies
            # per-chunk digests plus the full-payload digest itself.
            objects = store.backend.object_store()
            assert objects is not None, (
                f"chunked row {record.block_id}[{record.execution_index}] "
                f"but the backend has no object store")
            payload = store._reassemble(record)
            assert digest_bytes(payload) == record.digest, (
                f"reassembled payload does not match the manifest digest "
                f"for {record.block_id}[{record.execution_index}]")
        else:
            payload = store.backend.read_payload(str(record.path))
            assert digest_bytes(payload) == record.digest, (
                f"payload at {record.path} does not match the manifest "
                f"digest for {record.block_id}[{record.execution_index}]")
    return len(records)


def assert_no_orphans(home: str | Path) -> None:
    """After one GC pass, the object store holds exactly the referenced set.

    This is the "no orphaned payloads" half: a crash may strand blobs,
    but a single sweep must reclaim every blob no manifest references —
    and must keep every blob some manifest still does.
    """
    home = Path(home)
    collect_garbage(home, grace_seconds=0.0)
    referenced = set(referenced_digest_counts(home))
    from repro.storage.lifecycle import _home_object_stores
    held: set[str] = set()
    for objects in _home_object_stores(home):
        held.update(objects.digests())
    assert held == referenced, (
        f"object store out of sync after GC: "
        f"orphans={sorted(held - referenced)} "
        f"missing={sorted(referenced - held)}")


def assert_crash_consistent(store, home: str | Path) -> None:
    """Both invariants at once: manifest closed, then object store exact."""
    assert_manifest_closed(store)
    assert_no_orphans(home)


def assert_refcounts_exact(home: str | Path, stores) -> None:
    """Derived refcounts match an independent count over every manifest.

    ``referenced_digest_counts`` is what GC marks from; this recounts the
    same quantity the slow way — one pass over every store's manifest
    rows — and demands digest-for-digest agreement, so a lost manifest
    row or a double-counted shard shows up as a refcount mismatch.
    """
    recounted: "Counter[str]" = Counter()
    for store in stores:
        for record in store.records():
            if record.payload_digest:
                recounted[record.payload_digest] += 1
            recounted.update(record.recipe_digests())
    derived = referenced_digest_counts(Path(home))
    assert dict(derived) == dict(recounted), (
        f"derived refcounts disagree with a manifest recount: "
        f"derived-only={dict(derived - recounted)} "
        f"recount-only={dict(recounted - derived)}")


# --------------------------------------------------------------------------- #
# Real-process fault injection (kill a recorder worker mid-record)
# --------------------------------------------------------------------------- #
def start_recorder_process(job_id: str, rank: int, world_size: int, *,
                           config, workload_name: str = "cifr",
                           epochs: int = 2, seed: int = 0) -> mp.Process:
    """Fork one distributed recorder worker as a real OS process.

    The child runs :func:`repro.workloads.distributed.record_worker` under
    ``<job_id>@<rank>`` against the config's shared home — the same entry
    the production pool driver uses — so killing it simulates a worker
    dying mid-record, not a cooperative exception.
    """
    from repro.workloads.distributed import _worker_entry

    ctx = mp.get_context("fork")
    process = ctx.Process(
        target=_worker_entry,
        args=((job_id, rank, world_size, workload_name, epochs, seed,
               config),),
        daemon=True)
    process.start()
    return process


def _client_query_entry(args: tuple) -> None:
    """Child entry of :func:`start_client_process` (module-level: picklable).

    Touches ``streaming_path`` on the first streamed batch and
    ``done_path`` (with the stats summary) on completion, so the parent
    can tell "mid-stream" from "finished" without a result channel.
    """
    address, client_id, params, streaming_path, done_path = args
    from repro.service.client import connect

    client = connect(address, client_id=client_id, retries=0)

    def on_batch(_rows):
        Path(streaming_path).write_text("streaming", encoding="utf-8")

    result = client.query(on_batch=on_batch, **params)
    if done_path:
        Path(done_path).write_text(result.stats.summary(),
                                   encoding="utf-8")


def start_client_process(address: str, client_id: str, params: dict, *,
                         streaming_path: str | Path,
                         done_path: str | Path | None = None
                         ) -> mp.Process:
    """Fork one real service client as an OS process, for kill tests.

    The child issues ``client.query(**params)`` against ``address`` and
    writes ``streaming_path`` the moment the first partial batch arrives
    — the "mid-stream" sentinel a SIGKILL should land after, so the kill
    interrupts an in-flight streamed response rather than a connection
    that never got admitted.
    """
    ctx = mp.get_context("fork")
    process = ctx.Process(
        target=_client_query_entry,
        args=((address, client_id, params, str(streaming_path),
               str(done_path) if done_path else ""),),
        daemon=True)
    process.start()
    return process


def wait_for_file(path: str | Path, *, min_bytes: int = 1,
                  timeout: float = 60.0) -> bool:
    """Poll until ``path`` exists with at least ``min_bytes`` bytes.

    The kill tests use this as the "worker is mid-record" sentinel: once
    the worker's record log has content, it is past session setup and
    actively training, so a SIGKILL lands in the middle of checkpoint
    traffic rather than before any state exists.
    """
    path = Path(path)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if path.stat().st_size >= min_bytes:
                return True
        except FileNotFoundError:
            pass
        time.sleep(0.01)
    return False


def kill_process(process: mp.Process, *, join_timeout: float = 30.0) -> None:
    """SIGKILL a worker process and reap it (no atexit, no cleanup runs)."""
    process.kill()
    process.join(timeout=join_timeout)
    assert not process.is_alive(), "killed worker did not exit"
