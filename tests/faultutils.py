"""Reusable fault-injection helpers for crash-consistency tests.

The storage layer's crash-safety story is an *ordering* claim: payloads
are written before the manifest rows that reference them, and deleted
only after no manifest row references them.  These helpers simulate a
process dying at the worst possible instant — mid-GC sweep, mid-batch
manifest commit, between a payload write and its index — by arming a
method to raise :class:`InjectedCrash` on its N-th call, then let the
test "reboot" (reopen the store) and assert the two invariants that must
survive any crash:

* **no dangling manifest rows** — every indexed checkpoint's payload is
  readable and matches its recorded digest
  (:func:`assert_manifest_closed`);
* **no orphaned payloads** — after one GC pass, every blob in the home's
  object store is referenced by some manifest
  (:func:`assert_no_orphans`).
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from repro.storage.lifecycle import collect_garbage, referenced_digest_counts
from repro.utils.hashing import digest_bytes

__all__ = ["InjectedCrash", "FaultInjector", "crash_calls",
           "assert_manifest_closed", "assert_no_orphans",
           "assert_crash_consistent"]


class InjectedCrash(Exception):
    """The simulated process death (raised mid-operation by an armed hook)."""


class FaultInjector:
    """Arms methods on live objects to crash on a chosen call.

    ``inject(obj, "method", on_call=2)`` replaces ``obj.method`` with a
    wrapper that delegates normally until the 2nd call, which raises
    :class:`InjectedCrash` — *before* delegating by default (the crash
    lands at the operation boundary), or after when ``after=True`` (the
    operation takes effect, then the process "dies" before whatever was
    supposed to follow).  ``restore()`` puts every patched method back;
    use :func:`crash_calls` for the context-managed form.
    """

    def __init__(self):
        self._patched: list[tuple[object, str, object]] = []
        self.calls: dict[str, int] = {}

    def inject(self, obj, method_name: str, *, on_call: int = 1,
               after: bool = False) -> None:
        original = getattr(obj, method_name)
        label = f"{type(obj).__name__}.{method_name}"
        self.calls.setdefault(label, 0)

        def wrapper(*args, **kwargs):
            self.calls[label] += 1
            crash_now = self.calls[label] == on_call
            if crash_now and not after:
                raise InjectedCrash(f"{label} call #{on_call} (before)")
            result = original(*args, **kwargs)
            if crash_now:
                raise InjectedCrash(f"{label} call #{on_call} (after)")
            return result

        self._patched.append((obj, method_name, original))
        setattr(obj, method_name, wrapper)

    def restore(self) -> None:
        while self._patched:
            obj, method_name, original = self._patched.pop()
            setattr(obj, method_name, original)


@contextmanager
def crash_calls(obj, method_name: str, *, on_call: int = 1,
                after: bool = False):
    """Context-managed single-method injection (restored on exit)."""
    injector = FaultInjector()
    injector.inject(obj, method_name, on_call=on_call, after=after)
    try:
        yield injector
    finally:
        injector.restore()


# --------------------------------------------------------------------------- #
# Post-crash invariants
# --------------------------------------------------------------------------- #
def assert_manifest_closed(store) -> int:
    """Every manifest row's payload is readable and digest-verified.

    This is the "no dangling manifest entries" half of the recovery
    contract: whatever a crash interrupted, a reopened store must be able
    to serve every checkpoint its manifest still claims.  Returns the
    number of rows verified.
    """
    records = store.records()
    for record in records:
        payload = store.backend.read_payload(str(record.path))
        assert digest_bytes(payload) == record.digest, (
            f"payload at {record.path} does not match the manifest digest "
            f"for {record.block_id}[{record.execution_index}]")
    return len(records)


def assert_no_orphans(home: str | Path) -> None:
    """After one GC pass, the object store holds exactly the referenced set.

    This is the "no orphaned payloads" half: a crash may strand blobs,
    but a single sweep must reclaim every blob no manifest references —
    and must keep every blob some manifest still does.
    """
    home = Path(home)
    collect_garbage(home, grace_seconds=0.0)
    referenced = set(referenced_digest_counts(home))
    from repro.storage.lifecycle import _home_object_stores
    held: set[str] = set()
    for objects in _home_object_stores(home):
        held.update(objects.digests())
    assert held == referenced, (
        f"object store out of sync after GC: "
        f"orphans={sorted(held - referenced)} "
        f"missing={sorted(referenced - held)}")


def assert_crash_consistent(store, home: str | Path) -> None:
    """Both invariants at once: manifest closed, then object store exact."""
    assert_manifest_closed(store)
    assert_no_orphans(home)
