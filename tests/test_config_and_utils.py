"""Tests for configuration, exceptions and small utilities."""

from __future__ import annotations

import re

import pytest

import repro
from repro.config import FlorConfig, get_config, reset_config, set_config
from repro.exceptions import ConfigError, FlorError
from repro.utils.hashing import digest_bytes, digest_file, stable_hash
from repro.utils.naming import new_run_id, slugify
from repro.utils.timing import Stopwatch, VirtualClock, format_duration


class TestConfig:
    def test_defaults(self):
        config = FlorConfig()
        assert config.epsilon == pytest.approx(1 / 15)
        assert config.adaptive_checkpointing
        assert config.compress_checkpoints

    def test_validation(self):
        with pytest.raises(ConfigError):
            FlorConfig(epsilon=0.0)
        with pytest.raises(ConfigError):
            FlorConfig(epsilon=1.5)
        with pytest.raises(ConfigError):
            FlorConfig(scaling_factor=-1)
        with pytest.raises(ConfigError):
            FlorConfig(fork_batch_size=0)
        with pytest.raises(ConfigError):
            FlorConfig(background_materialization="plasma9000")

    def test_validate_names_the_knob_and_its_choices(self):
        with pytest.raises(ConfigError,
                           match=r"replay_scheduler must be one of"):
            FlorConfig(replay_scheduler="statik")
        with pytest.raises(ConfigError,
                           match=r"background_materialization must be one of"):
            FlorConfig(background_materialization="plasma9000")
        with pytest.raises(ConfigError, match=r"spool_mode must be one of"):
            FlorConfig(spool_mode="fiber")
        with pytest.raises(ConfigError,
                           match=r"storage_backend must be one of"):
            FlorConfig(storage_backend="s3")
        with pytest.raises(ConfigError,
                           match=r"query_planner must be one of"):
            FlorConfig(query_planner="magic")

    def test_validate_rejects_non_positive_counts(self):
        for knob in ("storage_shards", "spool_workers", "spool_queue_size",
                     "manifest_batch_size", "replay_chunk_size",
                     "query_workers", "fork_batch_size"):
            with pytest.raises(ConfigError, match=rf"{knob} must be"):
                FlorConfig(**{knob: 0})

    def test_validate_rejects_non_integer_counts(self):
        with pytest.raises(ConfigError, match="query_workers must be"):
            FlorConfig(query_workers=2.5)

    def test_validate_returns_self_for_chaining(self):
        config = FlorConfig()
        assert config.validate() is config

    def test_query_knob_defaults(self):
        config = FlorConfig()
        assert config.query_workers >= 1
        assert config.query_memoize is True
        assert config.query_planner == "cost"

    def test_with_overrides_returns_new_instance(self, tmp_path):
        config = FlorConfig(home=tmp_path)
        other = config.with_overrides(epsilon=0.1)
        assert other.epsilon == pytest.approx(0.1)
        assert config.epsilon == pytest.approx(1 / 15)
        assert other.home == config.home

    def test_run_dir(self, tmp_path):
        config = FlorConfig(home=tmp_path)
        assert config.run_dir("abc") == tmp_path / "abc"

    def test_global_config_management(self, tmp_path):
        reset_config()
        default = get_config()
        assert isinstance(default, FlorConfig)
        custom = FlorConfig(home=tmp_path)
        assert set_config(custom) is custom
        assert get_config() is custom
        reset_config()
        assert get_config() is not custom

    def test_set_config_type_checked(self):
        with pytest.raises(ConfigError):
            set_config("not a config")
        reset_config()

    def test_exception_hierarchy(self):
        assert issubclass(repro.RecordError, FlorError)
        assert issubclass(repro.ReplayAnomalyError, repro.ReplayError)
        assert issubclass(repro.CheckpointNotFoundError, repro.ReplayError)
        assert issubclass(repro.SerializationError, repro.StorageError)


class TestNaming:
    def test_slugify(self):
        assert slugify("ResNet-152 on Cifar100!") == "resnet-152-on-cifar100"
        assert slugify("   ") == "run"
        assert len(slugify("x" * 200)) <= 48

    def test_new_run_id_unique_and_sortable(self):
        first = new_run_id("My Experiment")
        second = new_run_id("My Experiment")
        assert first != second
        assert first.startswith("my-experiment-")
        assert re.match(r"^[a-z0-9\-]+-\d{8}T\d{6}-[0-9a-f]{8}$", first)


class TestHashing:
    def test_digest_bytes_and_stable_hash(self):
        assert digest_bytes(b"abc") == stable_hash("abc")
        assert digest_bytes(b"abc") != digest_bytes(b"abd")
        assert len(digest_bytes(b"")) == 64

    def test_digest_file(self, tmp_path):
        path = tmp_path / "file.bin"
        path.write_bytes(b"hello" * 1000)
        assert digest_file(path) == digest_bytes(b"hello" * 1000)


class TestTiming:
    def test_stopwatch_context_manager(self):
        with Stopwatch() as stopwatch:
            total = sum(range(10000))
        assert total > 0
        assert stopwatch.elapsed >= 0

    def test_stopwatch_requires_start(self):
        stopwatch = Stopwatch()
        with pytest.raises(RuntimeError):
            stopwatch.stop()
        with pytest.raises(RuntimeError):
            stopwatch.lap()

    def test_stopwatch_lap(self):
        stopwatch = Stopwatch().start()
        assert stopwatch.lap() >= 0
        assert stopwatch.stop() >= 0

    def test_virtual_clock(self):
        clock = VirtualClock()
        clock.advance(10.0, "epoch 0")
        clock.advance(5.0)
        assert clock.now == pytest.approx(15.0)
        assert clock.history == [(10.0, "epoch 0")]
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        clock.reset()
        assert clock.now == 0.0

    def test_format_duration(self):
        assert format_duration(5) == "5s"
        assert format_duration(65) == "1m 5s"
        assert format_duration(3725) == "1h 2m 5s"
        assert format_duration(0) == "0s"
        assert format_duration(-65) == "-1m 5s"
        assert format_duration(3600) == "1h"

    def test_format_duration_sub_second(self):
        # Sub-second durations get millisecond/microsecond granularity
        # instead of collapsing to "0s" (span durations live down here).
        assert format_duration(0.25) == "250ms"
        assert format_duration(0.0021) == "2.1ms"
        assert format_duration(0.010) == "10ms"
        assert format_duration(0.00003) == "30µs"
        assert format_duration(0.0000005) == "<1µs"
        assert format_duration(0.9999) == "1s"
        assert format_duration(-0.25) == "-250ms"
