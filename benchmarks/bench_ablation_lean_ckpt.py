"""Ablation: lean checkpointing vs whole-namespace checkpointing.

Lean checkpointing (Section 5.2) captures only a loop's changeset — after
filtering loop-scoped variables and augmenting with library knowledge —
rather than every live object.  This ablation measures the payload-size win
on a realistic training namespace: the lean checkpoint carries the model and
optimizer, the naive one additionally drags in the dataset, loader and every
loop-scoped temporary.
"""

from __future__ import annotations

from repro.storage.serializer import serialize_checkpoint, snapshot_value
from repro.workloads.training import make_training_setup


def _training_namespace():
    setup = make_training_setup("Cifr")
    inputs, targets = next(iter(setup.trainloader))
    return {
        "net": setup.net,
        "optimizer": setup.optimizer,
        "scheduler": setup.scheduler,
        "criterion": setup.criterion,
        "trainloader": setup.trainloader,
        "dataset": setup.trainloader.dataset,
        "inputs": inputs,
        "targets": targets,
    }


def _checkpoint_nbytes(names, namespace):
    snapshots = [snapshot_value(name, namespace[name]) for name in names
                 if name in namespace]
    return serialize_checkpoint(snapshots).nbytes


def test_ablation_lean_vs_whole_namespace(benchmark):
    namespace = _training_namespace()
    lean_names = ["net", "optimizer"]          # the Figure 6 changeset
    naive_names = list(namespace)              # everything in scope

    lean_nbytes = benchmark(_checkpoint_nbytes, lean_names, namespace)
    naive_nbytes = _checkpoint_nbytes(naive_names, namespace)

    print(f"\nLean checkpoint: {lean_nbytes} bytes; whole-namespace "
          f"checkpoint: {naive_nbytes} bytes; "
          f"reduction {naive_nbytes / lean_nbytes:.1f}x")
    assert lean_nbytes < naive_nbytes
    # The dataset alone dwarfs the model for the miniature workloads, so the
    # reduction is substantial.
    assert naive_nbytes / lean_nbytes > 2.0


def test_ablation_adaptive_checkpointing_storage(benchmark):
    """Adaptive checkpointing also bounds *storage*, not just overhead:
    sparse checkpointing writes a fraction of the bytes for fine-tuning."""
    from repro.sim.record_sim import simulate_record
    from repro.workloads.registry import WORKLOADS

    def storage_with_and_without():
        adaptive = simulate_record(WORKLOADS["RTE"], adaptive=True)
        disabled = simulate_record(WORKLOADS["RTE"], adaptive=False)
        return adaptive.stored_nbytes, disabled.stored_nbytes

    adaptive_bytes, disabled_bytes = benchmark(storage_with_and_without)
    print(f"\nRTE checkpoint bytes — adaptive: {adaptive_bytes / 1e9:.1f} GB, "
          f"adaptivity disabled: {disabled_bytes / 1e9:.1f} GB")
    assert adaptive_bytes < disabled_bytes
