"""The multi-tenant query service vs direct library queries.

The service's pitch is not that one query gets faster — it pays a socket
round-trip over the library call — but that *many tenants* get cheaper:
identical concurrent queries coalesce onto one execution, replay spans
are scheduled fairly from one bounded pool, and the record path never
touches the daemon.  This benchmark measures:

* ``single_query``    — one cold query through the library vs through
  the service (the protocol tax, honestly reported);
* ``dedup``           — N concurrent identical tenants through the
  service: one set of replay jobs in the ledger, wall compared against
  the N-times-sequential naive estimate;
* ``memoized``        — a memoize-on query then the service re-query:
  zero replay jobs;
* ``record_overhead`` — a record session beside a daemon busy replaying
  vs the same session alone.

Results land in ``BENCH_service.json`` at the repo root.

Run with::

    PYTHONPATH=src python benchmarks/bench_service.py          # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke  # CI
    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import threading
import time
from pathlib import Path

import repro
from repro.config import FlorConfig
from repro.record.recorder import record_source
from repro.service import QueryService

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_service.json"

#: Full shape: replay heavy enough that dedup and fairness matter.
FULL = {"epochs": 16, "iter_seconds": 0.05, "clients": 6}
#: Smoke shape: seconds-fast, correctness-focused.
SMOKE = {"epochs": 8, "iter_seconds": 0.01, "clients": 3}


def build_script(epochs: int, iter_seconds: float, probed: bool) -> str:
    """A run whose probe value must replay (never logged at record time).

    The sleep sits at epoch level, outside the checkpointed block, so it
    is paid at record time and re-paid by every replayed iteration.
    """
    lines = [
        "import time",
        "from repro import api as flor",
        "state = 0.0",
        f"for epoch in range({epochs}):",
        "    for _step in range(1):",
        "        state = state + epoch * 0.5",
        f"    time.sleep({iter_seconds})",
        '    flor.log("loss", 1.0 / (epoch + 1))',
    ]
    if probed:
        lines.append('    flor.log("state", state)')
    return "\n".join(lines) + "\n"


def timed_record(config: FlorConfig, shape: dict) -> tuple[str, float]:
    script = build_script(shape["epochs"], shape["iter_seconds"],
                          probed=False)
    start = time.perf_counter()
    run_id = record_source(script, config=config).run_id
    return run_id, time.perf_counter() - start


def service_query(address: str, client_id: str, probe: str, **kwargs):
    client = repro.connect(address, client_id=client_id)
    return client.query(["state"], source=probe, **kwargs)


def run_benchmark(home: Path, smoke: bool = False) -> dict:
    shape = SMOKE if smoke else FULL
    config = FlorConfig(home=home, background_materialization="sequential")
    repro.set_config(config)
    try:
        _run_id, record_alone = timed_record(config, shape)
        probe = build_script(shape["epochs"], shape["iter_seconds"],
                             probed=True)

        # Library baseline: one cold query, no daemon involved.
        start = time.perf_counter()
        library = repro.query(values="state", source=probe,
                              memoize=False, config=config)
        library_wall = time.perf_counter() - start
        assert library.stats.resolved_replay == shape["epochs"]

        service = QueryService(config=config, workers=2).start()
        try:
            # Protocol tax: the identical cold query through the socket.
            start = time.perf_counter()
            via_service = service_query(service.address, "solo", probe,
                                        memoize=False)
            service_wall = time.perf_counter() - start
            assert via_service.stats.resolved_replay == shape["epochs"]
            solo_jobs = via_service.stats.replay_job_count

            # Dedup: N concurrent identical tenants, one execution.
            jobs_before = len(service.pool.ledger())
            walls: dict[str, float] = {}
            errors: list[BaseException] = []

            def issue(tag: str):
                try:
                    started = time.perf_counter()
                    result = service_query(service.address, tag, probe,
                                           memoize=False)
                    walls[tag] = time.perf_counter() - started
                    assert result.stats.requested_cells == shape["epochs"]
                except BaseException as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=issue,
                                        args=(f"tenant-{index}",))
                       for index in range(shape["clients"])]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            dedup_wall = time.perf_counter() - start
            assert not errors, errors
            dedup_jobs = len(service.pool.ledger()) - jobs_before
            naive_wall = shape["clients"] * library_wall

            # Memoized re-query through the service: zero replay jobs.
            service_query(service.address, "warm", probe, memoize=True)
            memoized = service_query(service.address, "warm", probe,
                                     memoize=True)
            assert memoized.stats.replay_job_count == 0

            # Record beside the busy daemon: the record path never goes
            # through the service, so the walls should be near-identical.
            busy = threading.Thread(
                target=service_query,
                args=(service.address, "background", probe),
                kwargs={"memoize": False})
            busy.start()
            _run2, record_beside = timed_record(config, shape)
            busy.join()
        finally:
            service.shutdown(drain_seconds=30.0)
    finally:
        repro.reset_config()

    results = {
        "benchmark": "bench_service",
        "description": "multi-tenant query service vs direct library "
                       "queries: protocol tax, dedup win, memo hit, "
                       "record-path isolation",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "smoke": smoke,
        "epochs": shape["epochs"],
        "clients": shape["clients"],
        "single_query": {
            "library_seconds": round(library_wall, 4),
            "service_seconds": round(service_wall, 4),
            "protocol_tax_seconds": round(service_wall - library_wall, 4),
        },
        "dedup": {
            "concurrent_clients": shape["clients"],
            "wall_seconds": round(dedup_wall, 4),
            "naive_sequential_seconds": round(naive_wall, 4),
            "replay_jobs": dedup_jobs,
            "jobs_for_one_client": solo_jobs,
            "speedup_vs_naive": round(naive_wall / max(dedup_wall, 1e-9),
                                      3),
        },
        "record_overhead": {
            "alone_seconds": round(record_alone, 4),
            "beside_busy_daemon_seconds": round(record_beside, 4),
            "ratio": round(record_beside / max(record_alone, 1e-9), 3),
        },
    }
    if not smoke:
        RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n",
                                "utf-8")
    return results


def test_service_dedups_and_isolates_record(tmp_path):
    results = run_benchmark(tmp_path, smoke=False)
    print("\nquery service vs library (wall seconds):")
    single = results["single_query"]
    print(f"  single cold query: library {single['library_seconds']:.3f}s"
          f" | service {single['service_seconds']:.3f}s")
    dedup = results["dedup"]
    print(f"  {dedup['concurrent_clients']} identical tenants: "
          f"{dedup['wall_seconds']:.3f}s vs naive "
          f"{dedup['naive_sequential_seconds']:.3f}s "
          f"({dedup['replay_jobs']} replay jobs)")
    print(f"Results written to {RESULTS_PATH}")
    # N identical tenants must cost ONE execution's jobs...
    assert dedup["replay_jobs"] == dedup["jobs_for_one_client"], results
    # ...and beat re-running the query once per tenant.
    assert dedup["speedup_vs_naive"] > 1.5, results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-fast correctness pass (no wall-clock "
                             "assertion, no BENCH_service.json)")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="flor_bench_service_") as tmp:
        results = run_benchmark(Path(tmp), smoke=args.smoke)
        print(json.dumps(results, indent=2))
        dedup = results["dedup"]
        if dedup["replay_jobs"] != dedup["jobs_for_one_client"]:
            return 1
        if not args.smoke and dedup["speedup_vs_naive"] <= 1.5:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
