"""Table 3: the eight evaluation workloads.

Regenerates the workload catalogue row-for-row and, as the measured part,
times one vanilla training epoch of every miniature workload — the quantity
every other experiment normalizes against.
"""

from __future__ import annotations

from repro.sim import experiments as ex
from repro.workloads import run_vanilla_training, workload_names


def test_table3_rows(benchmark):
    rows = benchmark(ex.table3_workloads)
    assert len(rows) == 8
    print("\nTable 3: evaluation workloads")
    print(ex.format_table(rows))


def test_table3_vanilla_epoch_times(benchmark):
    """One miniature training epoch per workload (the vanilla baseline)."""
    def run_all():
        return {name: run_vanilla_training(name, epochs=1)[-1]
                for name in workload_names()}

    losses = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert set(losses) == set(workload_names())
    print("\nFinal first-epoch loss per miniature workload:")
    for name, loss in losses.items():
        print(f"  {name}: {loss:.4f}")
