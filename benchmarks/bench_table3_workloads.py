"""Table 3: the eight evaluation workloads.

Regenerates the workload catalogue row-for-row and, as the measured part,
times one vanilla training epoch of every miniature workload — the quantity
every other experiment normalizes against.
"""

from __future__ import annotations

from repro.sim import experiments as ex
from repro.workloads import run_vanilla_training, workload_names


def test_table3_rows(benchmark):
    rows = benchmark(ex.table3_workloads)
    assert len(rows) == 8
    print("\nTable 3: evaluation workloads")
    print(ex.format_table(rows))


def test_table3_vanilla_epoch_times(benchmark):
    """One miniature training epoch per workload (the vanilla baseline)."""
    def run_all():
        return {name: run_vanilla_training(name, epochs=1)[-1]
                for name in workload_names()}

    losses = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert set(losses) == set(workload_names())
    print("\nFinal first-epoch loss per miniature workload:")
    for name, loss in losses.items():
        print(f"  {name}: {loss:.4f}")


def test_distributed_record_smoke(benchmark, tmp_path):
    """Data-parallel record family: K=2 worker processes, one shared home."""
    from repro.config import FlorConfig
    from repro.query.catalog import RunCatalog
    from repro.workloads import run_distributed_record

    config = FlorConfig(home=tmp_path / "home",
                        background_materialization="sequential")

    def run():
        return run_distributed_record("cifr", world_size=2, epochs=2,
                                      config=config, job_name="bench-ddp")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.succeeded, [w.error for w in result.workers]
    group = RunCatalog.open(config).job(result.job_id)
    assert group.complete
    print(f"\nDistributed record: {result.world_size} workers, "
          f"{group.checkpoint_count} checkpoints, "
          f"{result.wall_seconds:.2f}s wall")


def test_streaming_record_smoke(benchmark, tmp_path):
    """Streaming/continual family: retention prunes live on the spool."""
    from repro.config import FlorConfig
    from repro.workloads import run_streaming_record

    config = FlorConfig(home=tmp_path / "home")

    def run():
        return run_streaming_record("cifr", max_iterations=24,
                                    config=config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0 < result.checkpoint_count <= 8
    assert result.lifecycle_passes >= 1
    print(f"\nStreaming record: {result.iterations} steps -> "
          f"{result.checkpoint_count} surviving checkpoints "
          f"({result.lifecycle_passes} lifecycle passes, "
          f"{result.stored_nbytes} bytes)")
