"""Figure 10: parallel replay time as a fraction of a vanilla re-execution.

Paper shape: with 4 GPUs the densely-checkpointed workloads sit just above
the 25% ideal line, strong vs weak initialization is a wash, and the
sparsely-checkpointed fine-tuning workloads (RTE, CoLA) are limited by
their small number of epoch-partitions.
"""

from __future__ import annotations

from repro.sim import experiments as ex


def test_fig10_parallel_replay_fractions(benchmark):
    rows = benchmark(ex.figure10_parallel_replay_fraction)
    print("\nFigure 10: parallel replay time as fraction of vanilla (4 GPUs)")
    print(ex.format_table(rows))

    ideal = 0.25
    for row in rows:
        assert row["Fraction (strong init)"] >= ideal - 1e-9
        # Strong vs weak initialization differ only marginally (paper: the
        # difference is negligible, supporting strong init as the default).
        assert abs(row["Fraction (strong init)"]
                   - row["Fraction (weak init)"]) < 0.05

    rte = next(row for row in rows if row["Workload"] == "RTE")
    rsnt = next(row for row in rows if row["Workload"] == "RsNt")
    # Sparse checkpointing limits RTE's parallelism; RsNt is near ideal.
    assert rte["Fraction (strong init)"] > rsnt["Fraction (strong init)"]
    assert rsnt["Fraction (strong init)"] < 0.27
