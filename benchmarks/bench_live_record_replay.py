"""End-to-end live record/replay benchmark (the §6.3 takeaway, in miniature).

Records a miniature workload once, then measures the three replay modes the
paper distinguishes: unchanged source (maximally partial), outer-loop probe
(partial), and inner-loop probe (full re-execution).
"""

from __future__ import annotations

import pytest

from repro.replay.replayer import replay_script


@pytest.mark.parametrize("mode", ["unchanged", "outer_probe", "inner_probe"])
def test_live_replay_modes(benchmark, recorded_cifr_run, mode):
    record = recorded_cifr_run["record"]
    script = recorded_cifr_run["script"]
    config = recorded_cifr_run["config"]

    if mode == "unchanged":
        source = None
    elif mode == "outer_probe":
        source = script.replace(
            '    flor.log("accuracy", evaluate(net))',
            '    flor.log("accuracy", evaluate(net))\n'
            '    flor.log("lr", optimizer.lr)')
        assert source != script
    else:
        source = script.replace(
            "        optimizer.step()",
            "        optimizer.step()\n"
            "        flor.log(\"batch_loss\", loss.item())")
        assert source != script

    def replay_once():
        return replay_script(record.run_id, new_source=source, config=config)

    result = benchmark.pedantic(replay_once, rounds=1, iterations=1)
    assert result.succeeded
    assert result.consistency is not None and result.consistency.consistent
    if mode == "inner_probe":
        assert result.probed_blocks == {"skipblock_0"}
    else:
        assert result.probed_blocks == set()
