"""Figure 14: the dollar cost of serial vs parallel replay.

Paper shape: parallel replay finishes the same work in a fraction of the
time at nearly the same dollar cost (marginal cost under $3), because the
per-GPU-hour price is what matters and Flor's parallelism is near-ideal.
"""

from __future__ import annotations

from repro.sim import experiments as ex


def test_fig14_cost_of_parallelism(benchmark):
    rows = benchmark(ex.figure14_parallel_cost)
    print("\nFigure 14: serial vs parallel replay cost")
    print(ex.format_table(rows))

    for row in rows:
        assert row["Marginal cost ($)"] < 3.00
        assert row["Parallel hours"] <= row["Serial hours"]
        assert row["Hours saved"] >= 0
    rsnt = next(row for row in rows if row["Workload"] == "RsNt")
    assert rsnt["Hours saved"] > 10
