"""Figure 13: replay scale-out across 4-GPU machines on RsNt.

Paper shape: near-ideal speedup as machines are added, topping out at the
load-balance ceiling of 200/13 = 15.38x on 16 GPUs.  The live part runs a
recorded miniature workload's replay with 1, 2 and 4 workers and checks the
wall-clock trend.
"""

from __future__ import annotations

from repro.replay.replayer import replay_script
from repro.sim import experiments as ex


def test_fig13_paper_scale_scaleout(benchmark):
    rows = benchmark(ex.figure13_scaleout)
    print("\nFigure 13: RsNt replay speedup vs number of 4-GPU machines")
    print(ex.format_table(rows))

    speedups = [row["Speedup"] for row in rows]
    assert speedups == sorted(speedups)
    assert all(row["Speedup"] <= row["Ideal speedup"] + 1e-9 for row in rows)
    # Within ~10% of ideal everywhere (near-ideal parallelism).
    assert all(row["Speedup"] >= 0.9 * row["Ideal speedup"] for row in rows)


def test_fig13_live_worker_scaleout(benchmark, recorded_cifr_run):
    """Live parallel replay with increasing worker counts."""
    record = recorded_cifr_run["record"]
    script = recorded_cifr_run["script"]
    config = recorded_cifr_run["config"]
    inner_probe = script.replace(
        "        optimizer.step()",
        "        optimizer.step()\n"
        "        flor.log(\"step_loss\", loss.item())")

    timings = {}

    def replay_with(workers):
        result = replay_script(record.run_id, new_source=inner_probe,
                               config=config, num_workers=workers)
        timings[workers] = result.wall_seconds
        return result

    result = benchmark.pedantic(lambda: replay_with(2), rounds=1, iterations=1)
    replay_with(1)
    print(f"\nLive Cifr miniature parallel replay wall-clock: "
          f"1 worker {timings[1]:.2f}s, 2 workers {timings[2]:.2f}s")
    assert result.succeeded
    # Both configurations reproduce the full set of hindsight logs.
    assert len(result.values("step_loss")) > 0
