"""Hindsight query engine vs per-run manual replay.

The query engine's pitch is that asking for values across many runs should
cost less than driving replay by hand: the planner reads what was logged,
restores the nearest aligned checkpoints, replays only uncovered segments
(parallel across runs), and memoizes what it computed so the next query is
a storage read.  This benchmark records several runs under sparse adaptive
checkpointing and measures, for 1/2/4 query workers:

* ``manual``   — the baseline a developer would run today: one full
  ``replay_script`` per run, sequentially, then picking out the values;
* ``cold``     — one ``repro.query`` across all runs, empty memo;
* ``memoized`` — the identical query again, served from the write-back.

Results land in ``BENCH_query.json`` at the repo root.

Run with::

    PYTHONPATH=src python benchmarks/bench_hindsight_query.py          # full
    PYTHONPATH=src python benchmarks/bench_hindsight_query.py --smoke  # CI
    PYTHONPATH=src python -m pytest benchmarks/bench_hindsight_query.py -q
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import textwrap
import time
from pathlib import Path

import repro
from repro import telemetry
from repro.config import FlorConfig
from repro.query.catalog import RunCatalog
from repro.record.recorder import record_source
from repro.replay.replayer import replay_script

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_query.json"

WORKER_COUNTS = (1, 2, 4)

#: Full shape: three runs, a per-iteration device wait that dominates, and
#: an overhead budget tight enough for genuinely sparse checkpoints.
FULL = {"runs": 3, "epochs": 16, "iter_seconds": 0.05,
        "payload_elements": 200_000, "epsilon": 0.2,
        "query_slice": (6, 16)}
#: Smoke shape: seconds-fast, correctness-focused.
SMOKE = {"runs": 3, "epochs": 6, "iter_seconds": 0.004,
         "payload_elements": 10_000, "epsilon": 0.2,
         "query_slice": (2, 6)}


def build_script(epochs: int, iter_seconds: float, payload_elements: int,
                 seed: int) -> str:
    """A run whose probe value depends on every preceding iteration."""
    return textwrap.dedent(f"""
        import time

        import numpy as np
        from repro import api as flor

        rng = np.random.default_rng({seed})
        state = rng.standard_normal({payload_elements}).astype('float32')

        for epoch in range({epochs}):
            for _step in range(1):
                time.sleep({iter_seconds})
                state = np.roll(state, 1) * 0.999 + float(epoch + 1) * 1e-3
            flor.log("fingerprint", float(state[:64].sum()))
    """)


def probe_script(script: str) -> str:
    return script.replace(
        'flor.log("fingerprint", float(state[:64].sum()))',
        'flor.log("fingerprint", float(state[:64].sum()))\n'
        '    flor.log("state_sum", float(state.sum()))')


def record_runs(home: Path, shape: dict,
                trace: bool = False) -> list[tuple[str, str]]:
    """Record the fleet under genuine adaptive (sparse) checkpointing."""
    # Tracing flips to the default spool materialization so the captured
    # document also exercises the spool.* seams; the wall-clock numbers of
    # a --trace run are not comparable to the baseline.
    config = FlorConfig(home=home, epsilon=shape["epsilon"],
                        adaptive_checkpointing=True,
                        telemetry=trace,
                        background_materialization="spool" if trace
                        else "sequential")
    repro.set_config(config)
    recorded = []
    try:
        for index in range(shape["runs"]):
            script = build_script(shape["epochs"], shape["iter_seconds"],
                                  shape["payload_elements"], seed=index)
            result = record_source(script, name=f"bench-q{index}",
                                   config=config)
            recorded.append((result.run_id, script))
    finally:
        repro.reset_config()
    return recorded


def manual_baseline(recorded, home: Path, shape: dict,
                    num_workers: int) -> dict:
    """Per-run manual replay: what a developer does without the engine."""
    config = FlorConfig(home=home, epsilon=shape["epsilon"])
    lo, hi = shape["query_slice"]
    start = time.perf_counter()
    values = {}
    for run_id, script in recorded:
        replay = replay_script(run_id, new_source=probe_script(script),
                               num_workers=num_workers, config=config)
        assert replay.succeeded
        values[run_id] = replay.values("state_sum")[lo:hi]
    return {"wall_seconds": round(time.perf_counter() - start, 4),
            "values": values}


def engine_query(recorded, home: Path, shape: dict, num_workers: int,
                 fresh_memo: bool) -> dict:
    config = FlorConfig(home=home, epsilon=shape["epsilon"],
                        query_workers=num_workers)
    if fresh_memo:
        _drop_memo_entries(recorded, config)
    lo, hi = shape["query_slice"]
    # Per-run sources differ only by seed; the probe is shared, so pass the
    # first run's probed script (identical text for every run here).
    source = probe_script(recorded[0][1])
    runs = [run_id for run_id, _ in recorded]
    # EXPLAIN is pure planning: its per-source cell counts must predict
    # exactly what the query that follows resolves from each source.
    report = repro.explain(values="state_sum", runs=runs,
                           iterations=slice(lo, hi), source=source,
                           config=config)
    start = time.perf_counter()
    result = repro.query(values="state_sum", runs=runs,
                         iterations=slice(lo, hi), source=source,
                         config=config)
    wall = time.perf_counter() - start
    predicted = report.sources()
    actual = {"logged": result.stats.resolved_logged,
              "memo": result.stats.resolved_memo,
              "analysis": result.stats.analysis_resolved,
              "replay": result.stats.resolved_replay,
              "missing": result.stats.missing_cells}
    assert predicted == actual, \
        f"explain {predicted} disagrees with query stats {actual}"
    return {
        "wall_seconds": round(wall, 4),
        "replay_jobs": result.stats.replay_job_count,
        "replayed_iterations": result.stats.replayed_iterations,
        "resolved": {"logged": result.stats.resolved_logged,
                     "memo": result.stats.resolved_memo,
                     "replay": result.stats.resolved_replay},
        "values": {run_id: result.values("state_sum", run_id)
                   for run_id, _ in recorded},
    }


def _drop_memo_entries(recorded, config: FlorConfig) -> None:
    """Reset write-back state so each worker count starts cold."""
    from repro.query.memo import MEMO_KEY_PREFIX
    from repro.storage.checkpoint_store import CheckpointStore
    for run_id, _script in recorded:
        store = CheckpointStore(config.run_dir(run_id))
        for key in store.metadata_keys(MEMO_KEY_PREFIX):
            store.set_metadata(key, None)
        store.close()


def run_benchmark(home: Path, smoke: bool = False,
                  trace_path: Path | None = None) -> dict:
    shape = SMOKE if smoke else FULL
    if trace_path is not None:
        # One process-wide flight recorder across record + every query
        # variant; the document lands at trace_path for repro.trace.
        telemetry.configure(enabled=True, capacity=65_536)
        telemetry.get_metrics().configure(enabled=True)
    recorded = record_runs(home, shape, trace=trace_path is not None)
    catalog = RunCatalog.open(FlorConfig(home=home))
    sparse = all(len(entry.aligned_iterations) < entry.main_loop_total
                 for entry in catalog)

    variants = {}
    for workers in WORKER_COUNTS:
        manual = manual_baseline(recorded, home, shape, workers)
        cold = engine_query(recorded, home, shape, workers, fresh_memo=True)
        memoized = engine_query(recorded, home, shape, workers,
                                fresh_memo=False)
        for run_id, _ in recorded:
            assert cold.get("values", {}).get(run_id) == \
                manual["values"][run_id], f"query != manual for {run_id}"
            assert memoized["values"][run_id] == manual["values"][run_id]
        assert memoized["replay_jobs"] == 0, "memoized re-query scheduled jobs"
        variants[str(workers)] = {
            "manual_sequential": {k: v for k, v in manual.items()
                                  if k != "values"},
            "cold_query": {k: v for k, v in cold.items() if k != "values"},
            "memoized_query": {k: v for k, v in memoized.items()
                               if k != "values"},
        }

    best = min(variants.values(),
               key=lambda row: row["cold_query"]["wall_seconds"])
    results = {
        "benchmark": "bench_hindsight_query",
        "description": "multi-run hindsight query vs per-run manual replay "
                       "under sparse adaptive checkpointing, plus the "
                       "memoized re-query",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "smoke": smoke,
        "runs": shape["runs"],
        "epochs": shape["epochs"],
        "query_slice": list(shape["query_slice"]),
        "sparse_checkpoints": sparse,
        "workers": variants,
        "summary": {
            "cold_speedup_vs_manual": round(
                best["manual_sequential"]["wall_seconds"]
                / best["cold_query"]["wall_seconds"], 3),
            "memo_speedup_vs_cold": round(
                best["cold_query"]["wall_seconds"]
                / max(best["memoized_query"]["wall_seconds"], 1e-9), 3),
        },
    }
    if trace_path is not None:
        document = telemetry.current_document(
            meta={"benchmark": "bench_hindsight_query", "smoke": smoke})
        trace_path.write_text(json.dumps(document, indent=2) + "\n",
                              encoding="utf-8")
    if not smoke:
        RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", "utf-8")
    return results


def test_query_engine_beats_manual_replay(tmp_path):
    results = run_benchmark(tmp_path, smoke=False)
    print("\nhindsight query vs manual replay (wall seconds):")
    for workers, row in results["workers"].items():
        print(f"  {workers} worker(s): manual "
              f"{row['manual_sequential']['wall_seconds']:8.3f}s | cold "
              f"{row['cold_query']['wall_seconds']:8.3f}s | memoized "
              f"{row['memoized_query']['wall_seconds']:8.3f}s")
    print(f"Results written to {RESULTS_PATH}")
    assert results["summary"]["cold_speedup_vs_manual"] > 1.0, results
    assert results["summary"]["memo_speedup_vs_cold"] >= 5.0, results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-fast correctness pass (no wall-clock "
                             "assertion, no BENCH_query.json)")
    parser.add_argument("--trace", metavar="FILE", type=Path,
                        help="run with the flight recorder on and write "
                             "the telemetry document to FILE (render it "
                             "with python -m repro.trace FILE)")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="flor_bench_query_") as tmp:
        results = run_benchmark(Path(tmp), smoke=args.smoke,
                                trace_path=args.trace)
        print(json.dumps(results, indent=2))
        if not args.smoke and (
                results["summary"]["cold_speedup_vs_manual"] <= 1.0
                or results["summary"]["memo_speedup_vs_cold"] < 5.0):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
