"""Parallel replay scheduling under sparse (adaptive) checkpointing.

The paper's hindsight parallelism splits the main loop uniformly and
assumes every boundary is restorable (Section 5.4.1).  Under adaptive
checkpointing (Section 5.3) checkpoints are *sparse* and land where the
Joint Invariant allows, so uniform boundaries force workers to recompute
the gap back to the nearest checkpoint — on top of an unbalanced share of
un-memoized iterations.  This benchmark measures replay wall time for one
recorded run under the three scheduling modes:

* ``uniform``  — the paper's count-balanced contiguous split,
* ``static``   — checkpoint-aligned segments balanced by estimated
  recompute + restore cost (from the recorded ``iteration_stats``),
* ``dynamic``  — checkpoint-aligned chunks pulled from a shared queue.

The training step sleeps a fixed per-iteration duration (the accelerator-
bound share of a real step), so recompute cost is controlled while
serialize+gzip of a noise payload keeps materialization genuinely
expensive — which is exactly the regime where the adaptive controller
goes sparse.  Results land in ``BENCH_replay.json`` at the repo root.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel_replay.py          # full
    PYTHONPATH=src python benchmarks/bench_parallel_replay.py --smoke  # CI
    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_replay.py -q
"""

from __future__ import annotations

import argparse
import json
import platform
import textwrap
from pathlib import Path

import repro
from repro.config import FlorConfig
from repro.modes import InitStrategy
from repro.record.recorder import record_source
from repro.replay.replayer import replay_script
from repro.storage.checkpoint_store import CheckpointStore

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_replay.json"

#: Replay parallelism degree compared across scheduling modes.
NUM_WORKERS = 4

#: Full-run shape: enough epochs for the Joint Invariant to reach its
#: sparse steady state, with a per-iteration device wait that dominates
#: recompute cost.  22 epochs puts the last uniform 4-worker boundary at
#: iteration 17, inside the controller's widening late-run checkpoint gap,
#: so the uniform split's gap-recompute penalty is not down to luck.
FULL = {"epochs": 22, "iter_seconds": 0.06, "payload_elements": 400_000,
        "epsilon": 0.2}
#: Smoke shape: seconds-fast, correctness-focused (wall-clock ordering is
#: not asserted at this scale).
SMOKE = {"epochs": 12, "iter_seconds": 0.005, "payload_elements": 20_000,
         "epsilon": 0.2}

SCHEDULERS = ("uniform", "static", "dynamic")


def build_script(epochs: int, iter_seconds: float,
                 payload_elements: int) -> str:
    """A training script whose inner loop is a calibrated device wait.

    The checkpointed state is a noise tensor (so gzip does real, CPU-bound
    work and materialization is not free) evolved deterministically each
    epoch; the logged fingerprint depends on every preceding iteration, so
    any replay that starts from stale state is caught by the deferred
    consistency check.
    """
    return textwrap.dedent(f"""
        import time

        import numpy as np
        from repro import api as flor

        rng = np.random.default_rng(7)
        state = rng.standard_normal({payload_elements}).astype('float32')

        for epoch in range({epochs}):
            for _step in range(1):
                time.sleep({iter_seconds})
                state = np.roll(state, 1) * 0.999 + float(epoch + 1) * 1e-3
            flor.log("fingerprint", float(state[:64].sum()))
    """)


def record_once(home: Path, shape: dict) -> tuple[str, dict]:
    """Record the workload under genuine adaptive (sparse) checkpointing."""
    config = FlorConfig(home=home, epsilon=shape["epsilon"],
                        adaptive_checkpointing=True,
                        background_materialization="sequential")
    script = build_script(shape["epochs"], shape["iter_seconds"],
                          shape["payload_elements"])
    repro.set_config(config)
    try:
        recorded = record_source(script, name="bench-replay", config=config)
    finally:
        repro.reset_config()
    store = CheckpointStore(config.run_dir(recorded.run_id))
    checkpointed = store.list_executions("skipblock_0")
    store.close()
    info = {
        "epochs": shape["epochs"],
        "iter_seconds": shape["iter_seconds"],
        "record_wall_seconds": round(recorded.wall_seconds, 4),
        "checkpoints": recorded.checkpoint_count,
        "checkpointed_iterations": checkpointed,
    }
    return recorded.run_id, info


def replay_with(scheduler: str, run_id: str, home: Path, shape: dict) -> dict:
    config = FlorConfig(home=home, epsilon=shape["epsilon"],
                        replay_scheduler=scheduler, replay_chunk_size=4)
    replay = replay_script(run_id, num_workers=NUM_WORKERS,
                           init_strategy=InitStrategy.WEAK, config=config)
    covered = sorted(index for worker in replay.worker_results
                     for index in worker.iterations)
    assert replay.succeeded, f"{scheduler}: replay worker failed"
    assert covered == list(range(shape["epochs"])), (
        f"{scheduler}: covered {covered}")
    assert replay.consistency is not None and replay.consistency.consistent, (
        f"{scheduler}: inconsistent replay: {replay.consistency.summary()}")
    return {
        "wall_seconds": round(replay.wall_seconds, 4),
        "max_worker_seconds": round(
            max(worker.wall_seconds for worker in replay.worker_results), 4),
        "worker_iterations": [sorted(worker.iterations)
                              for worker in replay.worker_results],
        "matched_records": replay.consistency.matched,
    }


def run_benchmark(home: Path, smoke: bool = False) -> dict:
    shape = SMOKE if smoke else FULL
    run_id, record_info = record_once(home, shape)
    variants = {scheduler: replay_with(scheduler, run_id, home, shape)
                for scheduler in SCHEDULERS}
    uniform = variants["uniform"]["wall_seconds"]
    best_aware = min(variants["static"]["wall_seconds"],
                     variants["dynamic"]["wall_seconds"])
    results = {
        "benchmark": "bench_parallel_replay",
        "description": f"{NUM_WORKERS}-worker replay wall time under sparse "
                       "(adaptive) checkpointing: uniform vs checkpoint-"
                       "aligned static vs dynamic work queue",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "smoke": smoke,
        "num_workers": NUM_WORKERS,
        "record": record_info,
        "replay": variants,
        "summary": {
            "speedup_vs_uniform": round(uniform / best_aware, 3)
            if best_aware else None,
            "checkpoint_aware_beats_uniform": best_aware < uniform,
        },
    }
    if not smoke:
        RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", "utf-8")
    return results


def test_checkpoint_aware_scheduling_beats_uniform(tmp_path):
    results = run_benchmark(tmp_path, smoke=False)
    print(f"\n{NUM_WORKERS}-worker replay wall seconds "
          f"(checkpoints at {results['record']['checkpointed_iterations']} "
          f"of {results['record']['epochs']} epochs):")
    for scheduler, row in results["replay"].items():
        print(f"  {scheduler:8s} {row['wall_seconds']:8.3f}s "
              f"(slowest worker {row['max_worker_seconds']:.3f}s)")
    print(f"Results written to {RESULTS_PATH}")
    # The acceptance bar: under sparse checkpointing, checkpoint-aware
    # scheduling (static-aligned or dynamic) beats the uniform split.
    assert results["summary"]["checkpoint_aware_beats_uniform"], results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="seconds-fast correctness pass (no wall-clock "
                             "assertion, no BENCH_replay.json)")
    args = parser.parse_args(argv)
    import tempfile
    with tempfile.TemporaryDirectory(prefix="flor_bench_replay_") as tmp:
        results = run_benchmark(Path(tmp), smoke=args.smoke)
        print(json.dumps(results, indent=2))
        if not args.smoke and not results["summary"][
                "checkpoint_aware_beats_uniform"]:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
