"""Figure 7: impact of adaptive checkpointing on record overhead.

Paper shape: with adaptivity disabled, the fine-tuning workloads blow past
any reasonable overhead budget (91% for RTE, 28% for CoLA); with adaptive
checkpointing, no workload exceeds the 6.67% tolerance.
"""

from __future__ import annotations

from repro.config import DEFAULT_EPSILON
from repro.sim import experiments as ex


def test_fig7_adaptive_vs_disabled(benchmark):
    rows = benchmark(ex.figure7_adaptive_overhead)
    print("\nFigure 7: record overhead with/without adaptive checkpointing")
    print(ex.format_table(rows))

    assert all(row["Overhead (adaptive)"] <= DEFAULT_EPSILON + 1e-6
               for row in rows)
    rte = next(row for row in rows if row["Workload"] == "RTE")
    cola = next(row for row in rows if row["Workload"] == "CoLA")
    assert rte["Overhead (adaptivity disabled)"] > 0.85
    assert cola["Overhead (adaptivity disabled)"] > 0.25
    # Training (non-fine-tuning) workloads are unaffected by adaptivity: their
    # checkpoints are cheap relative to epoch compute, so every epoch is kept.
    cifr = next(row for row in rows if row["Workload"] == "Cifr")
    assert cifr["Checkpoints (adaptive)"] == cifr["Epochs"]
