"""Figure 12: replay latency, factored by the position of the probe.

Paper shape: probing only the outer main loop gives order-of-magnitude
speedups (7x to ~1000x, favouring longer experiments, latencies measured in
minutes); probing the inner training loop forces a full re-execution whose
only lever is hindsight parallelism (speedups bounded by GPU count and the
number of epochs).  The live part replays a recorded miniature run with an
outer-loop probe and with an inner-loop probe and compares the latencies.
"""

from __future__ import annotations

from repro.replay.replayer import replay_script
from repro.sim import experiments as ex


def test_fig12_paper_scale_latencies(benchmark):
    rows = benchmark(ex.figure12_replay_latency)
    print("\nFigure 12: replay latency by probe position")
    print(ex.format_table(rows))

    dense = {"Cifr", "RsNt", "Wiki", "Jasp", "ImgN", "RnnT"}
    for row in rows:
        assert row["Outer-probe speedup"] >= 1.0
        assert row["Inner-probe speedup"] <= 16.0 + 1e-9
        if row["Workload"] in dense:
            # Densely checkpointed workloads: skipping memoized loops beats
            # even 16-way parallel re-execution.
            assert row["Outer-probe speedup"] > row["Inner-probe speedup"]
    # Longer experiments gain the most from partial replay.
    speedups = {row["Workload"]: row["Outer-probe speedup"] for row in rows}
    assert speedups["RsNt"] > speedups["Cifr"] > speedups["RTE"]
    assert max(speedups.values()) > 100


def test_fig12_live_outer_vs_inner_probe(benchmark, recorded_cifr_run):
    """On a live run, an outer-loop probe replays faster than an inner probe."""
    record = recorded_cifr_run["record"]
    script = recorded_cifr_run["script"]
    config = recorded_cifr_run["config"]

    outer_probe = script.replace(
        '    flor.log("accuracy", evaluate(net))',
        '    flor.log("accuracy", evaluate(net))\n'
        '    flor.log("weight_norm", float(sum(float((p ** 2).sum())'
        ' for p in net.parameters())))')
    inner_probe = script.replace(
        "        optimizer.step()",
        "        optimizer.step()\n"
        "        flor.log(\"step_loss\", loss.item())")
    assert outer_probe != script and inner_probe != script

    def outer():
        return replay_script(record.run_id, new_source=outer_probe,
                             config=config)

    outer_result = benchmark.pedantic(outer, rounds=1, iterations=1)
    inner_result = replay_script(record.run_id, new_source=inner_probe,
                                 config=config)

    print(f"\nLive Cifr miniature replay: outer probe "
          f"{outer_result.wall_seconds:.2f}s (probed={outer_result.probed_blocks}), "
          f"inner probe {inner_result.wall_seconds:.2f}s "
          f"(probed={inner_result.probed_blocks})")
    assert outer_result.probed_blocks == set()
    assert inner_result.probed_blocks == {"skipblock_0"}
    assert len(outer_result.values("weight_norm")) == 4
    assert len(inner_result.values("step_loss")) > 4
    # The partial (outer-probe) replay avoids re-executing the training loop,
    # so it is faster than the probed full re-execution.
    assert outer_result.wall_seconds <= inner_result.wall_seconds * 1.5
