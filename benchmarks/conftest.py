"""Shared fixtures for the benchmark harness.

Every benchmark gets an isolated Flor home; the live record/replay
benchmarks share a single recorded run per session so the record phase is
not repeated for every measurement.
"""

from __future__ import annotations

import pytest

import repro
from repro.config import FlorConfig


@pytest.fixture(scope="session")
def bench_config(tmp_path_factory):
    """Session-wide Flor configuration rooted in a temporary directory."""
    home = tmp_path_factory.mktemp("flor_bench_home")
    config = FlorConfig(home=home, background_materialization="thread")
    repro.set_config(config)
    yield config
    repro.reset_config()


@pytest.fixture(scope="session")
def recorded_cifr_run(bench_config):
    """A recorded miniature Cifr run shared by the replay benchmarks."""
    from repro.record.recorder import record_source
    from repro.workloads.training import build_training_script

    script = build_training_script("Cifr", epochs=4)
    result = record_source(script, name="bench-cifr", config=bench_config)
    return {"record": result, "script": script, "config": bench_config}
