"""Storage backends + async spool: record-phase wall time comparison.

The paper's record-overhead story (Figure 11) rests on materialization
staying off the training hot path.  This benchmark measures the whole
record phase — compute + serialize + gzip + write + manifest commit — for
the synchronous baseline against the bounded async spool, on the local and
sharded backends, and records the results in ``BENCH_storage.json`` at the
repo root.

Two sections:

* ``pipeline`` — a controlled record loop at the materializer level:
  per-iteration training compute followed by a multi-MB checkpoint.  The
  training step is modeled as *accelerator-bound* (a small matmul plus
  device wait, during which the Python process idles) — the paper's
  workloads train on GPUs, and that idle window is exactly what background
  materialization overlaps with.  This is the apples-to-apples comparison
  the acceptance numbers come from.
* ``live_imgn`` — the Figure 11 default workload (miniature ImgN) recorded
  end-to-end under the sequential and spool strategies (report-only:
  live training timings are noisy at miniature scale).
* ``dedup`` — the content-addressed lifecycle acceptance number: the same
  deterministic workload recorded twice under one home must land almost
  entirely on existing blobs (physical bytes after the re-run < 1.1x the
  single-run footprint), with the achieved dedup ratio reported.
* ``delta`` — the delta-checkpoint acceptance number: a fine-tune-shaped
  workload (large frozen backbone, small trainable head) checkpointed for
  N epochs under each chunking mode.  The headline metric is physical
  growth per epoch after the first, as a fraction of the first epoch's
  footprint — chunked modes must land *well* under the 1.0x that storing
  each epoch whole costs, without regressing record wall time.

Any previously committed ``BENCH_storage.json`` acts as a regression
baseline: the delta growth ratios must not drift materially above the
committed numbers.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_storage_backends.py -q
    PYTHONPATH=src python benchmarks/bench_storage_backends.py [--smoke]

``--smoke`` shrinks the backbone and epoch count for CI-sized runs (the
acceptance thresholds are identical — delta savings are scale-free).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

import repro
from repro.config import FlorConfig
from repro.record.materializer import create_materializer
from repro.storage.checkpoint_store import CheckpointStore
from repro.storage.serializer import snapshot_value

RESULTS_PATH = Path(__file__).resolve().parents[1] / "BENCH_storage.json"

#: Synthetic record loop: iterations x (training step, then checkpoint).
ITERATIONS = 10
PAYLOAD_ELEMENTS = 750_000    # ~3 MB float32 per checkpoint
COMPUTE_SIZE = 128            # matmul operand side length (CPU share)
DEVICE_SECONDS = 0.06         # accelerator-bound share of one step


def _make_payload(rng: np.random.Generator) -> np.ndarray:
    """A weight-like payload: mostly noise, so gzip does real work."""
    return rng.standard_normal(PAYLOAD_ELEMENTS).astype(np.float32)


def _training_step(operand: np.ndarray) -> np.ndarray:
    """One training step: a little CPU work, then the device-bound wait
    (the paper's workloads train on GPUs; the Python process idles while
    the accelerator runs, which is the window background materialization
    overlaps with)."""
    operand = np.tanh(operand @ operand.T / COMPUTE_SIZE)
    time.sleep(DEVICE_SECONDS)
    return operand


def _record_phase(store: CheckpointStore, materializer_name: str,
                  config: FlorConfig) -> dict:
    """One simulated record phase; returns wall time and accounting."""
    rng = np.random.default_rng(0)
    payloads = [_make_payload(rng) for _ in range(2)]
    operand = rng.standard_normal((COMPUTE_SIZE, COMPUTE_SIZE))

    materializer = create_materializer(materializer_name, store,
                                       config=config)
    start = time.perf_counter()
    for index in range(ITERATIONS):
        operand = _training_step(operand)
        snapshots = [snapshot_value("weights", payloads[index % 2])]
        materializer.submit("train", index, snapshots)
    materializer.close()  # drains the pipeline: durable + indexed
    wall_seconds = time.perf_counter() - start

    assert store.checkpoint_count() == ITERATIONS, (
        f"{materializer_name}: expected {ITERATIONS} checkpoints, got "
        f"{store.checkpoint_count()}")
    return {
        "wall_seconds": round(wall_seconds, 4),
        "main_thread_seconds": round(
            materializer.stats.total_main_thread_seconds, 4),
        "stored_nbytes": store.total_stored_nbytes(),
        "checkpoints": store.checkpoint_count(),
    }


def run_pipeline_comparison(home: Path) -> dict:
    """Sync vs async spool vs async spool + sharded backend."""
    config = FlorConfig(home=home, spool_workers=4, spool_queue_size=16,
                        manifest_batch_size=8)
    variants = {
        "sequential_local": ("sequential", "local"),
        "thread_local": ("thread", "local"),
        "spool_local": ("spool", "local"),
        "spool_sharded": ("spool", "sharded"),
    }
    results = {}
    for label, (materializer_name, backend_name) in variants.items():
        store = CheckpointStore(home / label, backend=backend_name,
                                num_shards=4)
        results[label] = _record_phase(store, materializer_name, config)
        results[label]["materializer"] = materializer_name
        results[label]["backend"] = backend_name
        store.close()
    return results


def run_live_imgn_comparison(home: Path) -> dict:
    """The Figure 11 default workload under sequential vs spool record."""
    from repro.record.recorder import record_source
    from repro.workloads import build_training_script

    script = build_training_script("ImgN", epochs=3)
    results = {}
    for strategy in ("sequential", "spool"):
        config = FlorConfig(home=home / f"live-{strategy}",
                            background_materialization=strategy,
                            adaptive_checkpointing=False)
        repro.set_config(config)
        try:
            recorded = record_source(script, name=f"bench-{strategy}",
                                     config=config)
        finally:
            repro.reset_config()
        results[strategy] = {
            "wall_seconds": round(recorded.wall_seconds, 4),
            "main_thread_materialization_seconds": round(
                recorded.materialization_main_thread_seconds, 4),
            "checkpoints": recorded.checkpoint_count,
        }
    return results


def run_dedup_comparison(home: Path) -> dict:
    """Record one deterministic workload twice; measure blob-plane reuse."""
    from repro.record.recorder import record_source
    from repro.storage.lifecycle import measure_storage

    script = (
        "import numpy as np\n"
        "from repro import api as flor\n"
        "\n"
        "rng = np.random.default_rng(0)\n"
        "weights = rng.standard_normal(200_000).astype('float32')\n"
        "for epoch in range(6):\n"
        "    for step in range(3):\n"
        "        weights = np.tanh(weights * 1.001)\n"
        "    flor.log('checksum', float(weights.sum()))\n")
    config = FlorConfig(home=home, adaptive_checkpointing=False)
    repro.set_config(config)
    try:
        record_source(script, name="dedup-first", config=config)
        after_first = measure_storage(home)
        record_source(script, name="dedup-rerun", config=config)
        after_second = measure_storage(home)
    finally:
        repro.reset_config()
    return {
        "checkpoints_per_run": after_first.checkpoints,
        "stored_nbytes_single_run": after_first.physical_nbytes,
        "stored_nbytes_after_rerun": after_second.physical_nbytes,
        "logical_nbytes_after_rerun": after_second.logical_nbytes,
        "rerun_stored_ratio": round(
            after_second.physical_nbytes / max(1, after_first.physical_nbytes),
            4),
        "dedup_ratio": round(after_second.dedup_ratio, 4),
    }


def run_delta_comparison(home: Path, smoke: bool = False) -> dict:
    """Fine-tune-shaped epochs under each chunking mode.

    The workload the tentpole optimizes for: a frozen backbone dominates
    the checkpoint while a small head (plus its optimizer state) is all
    that changes per epoch.  Chunked modes should pay roughly the head's
    bytes per epoch; whole-payload storage pays the backbone's every
    time.
    """
    from repro import torchlike as tl
    from repro.storage.lifecycle import measure_storage

    backbone_side = 192 if smoke else 448     # ~590 KB / ~3.2 MB of weights
    epochs = 4 if smoke else 6
    results: dict = {"epochs": epochs}
    for mode in ("off", "fixed", "cdc"):
        rng = np.random.default_rng(0)
        backbone = tl.Sequential(
            tl.Linear(backbone_side, backbone_side, rng=rng),
            tl.ReLU(),
            tl.Linear(backbone_side, backbone_side, rng=rng))
        head = tl.Linear(backbone_side, 16, rng=rng)
        optimizer = tl.SGD(head.parameters(), lr=0.05, momentum=0.9)
        mode_home = home / f"delta-{mode}"
        store = CheckpointStore(mode_home / "run", chunking=mode)
        wall = 0.0
        first_epoch_nbytes = 0
        for epoch in range(epochs):
            # One fine-tune step: the backbone is frozen, only the head
            # (and its momentum buffers) moves.
            for param in head.parameters():
                param.grad = rng.standard_normal(param.data.shape) * 0.01
            optimizer.step()
            snapshots = [snapshot_value("backbone", backbone),
                         snapshot_value("head", head),
                         snapshot_value("optimizer", optimizer),
                         snapshot_value("epoch", epoch)]
            start = time.perf_counter()
            store.put("train", epoch, snapshots)
            wall += time.perf_counter() - start
            if epoch == 0:
                first_epoch_nbytes = measure_storage(
                    mode_home).physical_nbytes
        final_nbytes = measure_storage(mode_home).physical_nbytes
        growth_ratio = ((final_nbytes - first_epoch_nbytes)
                        / max(1, (epochs - 1) * first_epoch_nbytes))
        # Read-back sanity: the last epoch reassembles to the live values.
        restored = {s.name: s for s in store.get("train", epochs - 1)}
        np.testing.assert_allclose(restored["head"].payload["weight"],
                                   head.state_dict()["weight"])
        store.close()
        results[mode] = {
            "first_epoch_nbytes": first_epoch_nbytes,
            "final_physical_nbytes": final_nbytes,
            "stored_growth_per_epoch_ratio": round(growth_ratio, 4),
            "record_wall_seconds": round(wall, 4),
        }
    off_wall = results["off"]["record_wall_seconds"]
    for mode in ("fixed", "cdc"):
        results[mode]["wall_ratio_vs_off"] = round(
            results[mode]["record_wall_seconds"] / max(1e-9, off_wall), 3)
    return results


def check_delta_regression(delta: dict, baseline: dict | None) -> list[str]:
    """Compare delta growth ratios against the committed baseline.

    Returns a list of human-readable regression messages (empty = pass).
    Absolute slack, not relative: the ratios are near zero, where relative
    comparisons amplify noise.
    """
    problems = []
    if not baseline:
        return problems
    baseline_delta = baseline.get("delta") or {}
    for mode in ("fixed", "cdc"):
        old = (baseline_delta.get(mode) or {}).get(
            "stored_growth_per_epoch_ratio")
        new = delta[mode]["stored_growth_per_epoch_ratio"]
        if old is not None and new > old + 0.15:
            problems.append(
                f"delta[{mode}] growth ratio regressed: {new} vs "
                f"committed baseline {old}")
    return problems


def load_baseline() -> dict | None:
    """The committed BENCH_storage.json, read before this run overwrites it."""
    try:
        return json.loads(RESULTS_PATH.read_text("utf-8"))
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def run_benchmark(home: Path, smoke: bool = False) -> dict:
    baseline = load_baseline()
    pipeline = run_pipeline_comparison(home / "pipeline")
    live = run_live_imgn_comparison(home / "live")
    dedup = run_dedup_comparison(home / "dedup")
    delta = run_delta_comparison(home / "delta", smoke=smoke)
    regressions = check_delta_regression(delta, baseline)
    sync_wall = pipeline["sequential_local"]["wall_seconds"]
    spool_wall = pipeline["spool_local"]["wall_seconds"]
    results = {
        "benchmark": "bench_storage_backends",
        "description": "record-phase wall time: sync vs async spool vs "
                       "sharded, plus live Fig-11 ImgN record, the "
                       "identical-rerun dedup ratio, and delta-checkpoint "
                       "growth per epoch under each chunking mode",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "smoke": smoke,
        "pipeline": pipeline,
        "live_imgn": live,
        "dedup": dedup,
        "delta": delta,
        "summary": {
            "async_speedup_vs_sync": round(sync_wall / spool_wall, 3),
            "async_reduces_record_wall_time": spool_wall < sync_wall,
            "dedup_rerun_stored_ratio": dedup["rerun_stored_ratio"],
            "dedup_rerun_under_1_1x": dedup["rerun_stored_ratio"] < 1.1,
            "delta_fixed_growth_per_epoch": delta["fixed"][
                "stored_growth_per_epoch_ratio"],
            "delta_cdc_growth_per_epoch": delta["cdc"][
                "stored_growth_per_epoch_ratio"],
            "delta_regressions": regressions,
        },
    }
    # Smoke runs guard against regressions but never overwrite the
    # committed full-size baseline.
    if not smoke:
        RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n", "utf-8")
    return results


def test_async_spool_beats_synchronous_record(tmp_path):
    results = run_benchmark(tmp_path)
    assert_acceptance(results)


def assert_acceptance(results: dict) -> None:
    pipeline = results["pipeline"]
    print("\nRecord-phase wall seconds "
          f"({ITERATIONS} x ~3 MB checkpoints + training steps):")
    for label, row in pipeline.items():
        print(f"  {label:18s} {row['wall_seconds']:8.3f}s "
              f"(main-thread {row['main_thread_seconds']:.3f}s)")
    if not results.get("smoke"):
        print(f"Results written to {RESULTS_PATH}")

    sync = pipeline["sequential_local"]["wall_seconds"]
    spool = pipeline["spool_local"]["wall_seconds"]
    sharded = pipeline["spool_sharded"]["wall_seconds"]
    # The acceptance bar: async spooled materialization reduces
    # record-phase wall time vs the synchronous path.
    assert spool < sync, (spool, sync)
    # Sharding must not regress the async path materially.
    assert sharded < sync, (sharded, sync)
    # And the hot path itself must be near-free relative to sync.
    assert (pipeline["spool_local"]["main_thread_seconds"]
            < pipeline["sequential_local"]["main_thread_seconds"])

    # Lifecycle acceptance: re-recording an identical workload must land
    # on existing blobs — stored bytes stay under 1.1x the single run.
    dedup = results["dedup"]
    print(f"Dedup: single-run {dedup['stored_nbytes_single_run']} B, "
          f"after identical re-run {dedup['stored_nbytes_after_rerun']} B "
          f"(ratio {dedup['rerun_stored_ratio']}x, "
          f"dedup ratio {dedup['dedup_ratio']})")
    assert dedup["rerun_stored_ratio"] < 1.1, dedup
    assert dedup["dedup_ratio"] > 1.5, dedup

    # Delta-checkpoint acceptance: chunked epochs cost a small fraction
    # of a whole-payload epoch in new physical bytes, at comparable
    # record wall time, and never regress vs the committed baseline.
    delta = results["delta"]
    for mode in ("off", "fixed", "cdc"):
        row = delta[mode]
        print(f"Delta[{mode:5s}]: first epoch "
              f"{row['first_epoch_nbytes']} B, growth/epoch "
              f"{row['stored_growth_per_epoch_ratio']}x, record wall "
              f"{row['record_wall_seconds']}s")
    assert delta["off"]["stored_growth_per_epoch_ratio"] > 0.5, delta
    for mode in ("fixed", "cdc"):
        assert delta[mode]["stored_growth_per_epoch_ratio"] < 0.5, delta
        assert delta[mode]["wall_ratio_vs_off"] < 1.5, delta
    assert not results["summary"]["delta_regressions"], (
        results["summary"]["delta_regressions"])


if __name__ == "__main__":
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        description="storage backend + delta checkpoint benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: smaller backbone, fewer epochs; "
                             "checks acceptance + regression thresholds "
                             "without overwriting the committed baseline")
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="flor_bench_storage_") as tmp:
        results = run_benchmark(Path(tmp), smoke=args.smoke)
        print(json.dumps(results, indent=2))
        assert_acceptance(results)
        print("acceptance thresholds: PASS")
