"""Table 4: S3 storage costs for one execution of Flor record.

The paper-scale rows come from the published gzip-compressed checkpoint
sizes and 2020 S3 pricing; the live part measures the compressed size of a
real miniature-workload record run and prices it with the same model.
"""

from __future__ import annotations

from repro.sim import experiments as ex
from repro.storage.costs import storage_cost_per_month


def test_table4_rows(benchmark):
    rows = benchmark(ex.table4_storage_costs)
    assert len(rows) == 8
    assert all(row["Storage Cost / Mo. ($)"] < 1.00 for row in rows)
    print("\nTable 4: checkpoint storage costs (paper scale)")
    print(ex.format_table(rows))


def test_table4_live_miniature_run_cost(benchmark, recorded_cifr_run):
    """Compressed checkpoint bytes and monthly cost of a live recorded run."""
    record = recorded_cifr_run["record"]

    def price():
        return storage_cost_per_month(record.stored_nbytes)

    cost = benchmark(price)
    assert record.stored_nbytes > 0
    assert cost < 0.01  # miniature checkpoints cost fractions of a cent
    print(f"\nLive miniature Cifr run: {record.checkpoint_count} checkpoints, "
          f"{record.stored_nbytes} stored bytes, ${cost:.6f}/month")
