"""Figure 11: model training time with and without Flor record.

Paper shape: overhead labels of a few percent (1.47% average), never
exceeding the 6.67% tolerance.  The live part records a miniature workload
and compares against its vanilla execution.
"""

from __future__ import annotations

import time

from repro.config import DEFAULT_EPSILON
from repro.record.recorder import record_source
from repro.sim import experiments as ex
from repro.workloads import build_training_script, run_vanilla_training


def test_fig11_paper_scale_overheads(benchmark):
    rows = benchmark(ex.figure11_record_overhead)
    print("\nFigure 11: training time with and without record (hours)")
    print(ex.format_table(rows))
    assert all(row["Overhead"] <= DEFAULT_EPSILON + 1e-6 for row in rows)
    average = sum(row["Overhead"] for row in rows) / len(rows)
    assert average < 0.04


def test_fig11_live_record_vs_vanilla(benchmark, bench_config):
    """Record overhead measured on a live miniature workload."""
    script = build_training_script("ImgN", epochs=3)

    def record_once():
        return record_source(script, name="fig11-imgn", config=bench_config)

    result = benchmark.pedantic(record_once, rounds=1, iterations=1)

    start = time.perf_counter()
    run_vanilla_training("ImgN", epochs=3)
    vanilla_seconds = time.perf_counter() - start

    overhead = (result.wall_seconds - vanilla_seconds) / vanilla_seconds
    print(f"\nLive ImgN miniature: vanilla {vanilla_seconds:.2f}s, "
          f"record {result.wall_seconds:.2f}s, overhead {overhead:+.1%} "
          f"(main-thread materialization "
          f"{result.materialization_main_thread_seconds:.3f}s)")
    assert result.checkpoint_count == 3
