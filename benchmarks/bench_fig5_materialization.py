"""Figure 5: background materialization performance.

The paper materializes a 1.1 GB RTE checkpoint under four strategies
(cloudpickle baseline, IPC-Queue, IPC-Plasma, fork) and measures how long
the *main thread* stays busy.  This benchmark runs the same comparison with
this repository's materializers on a scaled-down synthetic state dict; the
expected shape is that strategies which serialize on the main thread
(sequential, ipc_queue) block it for much longer than those that do not
(fork, shared_memory, thread).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.record.materializer import create_materializer
from repro.sim import experiments as ex
from repro.storage.checkpoint_store import CheckpointStore
from repro.storage.serializer import snapshot_value

PAYLOAD_MB = 8


def _payload():
    rng = np.random.default_rng(0)
    arrays = {f"layer_{index}": rng.standard_normal(
        PAYLOAD_MB * 1024 * 1024 // 16 // 4).astype(np.float32)
        for index in range(16)}
    return [snapshot_value("model", type("S", (), {"state_dict": lambda self=None, a=arrays: a})())]


@pytest.mark.parametrize("strategy",
                         ["sequential", "thread", "ipc_queue", "fork",
                          "shared_memory"])
def test_fig5_main_thread_blocking_per_strategy(benchmark, tmp_path, strategy):
    """Main-thread seconds to submit one checkpoint under each strategy."""
    snapshots = _payload()

    def submit_once():
        store = CheckpointStore(tmp_path / f"{strategy}-{np.random.randint(1 << 30)}",
                                compress=False)
        materializer = create_materializer(strategy, store)
        ticket = materializer.submit("fig5", 0, snapshots)
        materializer.close()
        return ticket.main_thread_seconds

    blocked = benchmark.pedantic(submit_once, rounds=3, iterations=1)
    assert blocked >= 0


def test_fig5_strategy_comparison_table(tmp_path):
    """The full Figure 5 comparison in one table (not timed by the harness)."""
    rows = ex.figure5_materialization_microbenchmark(tmp_path,
                                                     payload_mb=PAYLOAD_MB)
    print("\nFigure 5: background materialization (main-thread seconds)")
    print(ex.format_table(rows, columns=["Strategy", "Main-thread seconds",
                                         "Total seconds", "Blocked fraction"]))
    by_name = {row["Strategy"]: row["Main-thread seconds"] for row in rows}
    # Strategies that avoid serializing on the main thread block it less than
    # the sequential baseline.
    assert by_name["fork"] <= by_name["sequential"]
    assert by_name["thread"] <= by_name["sequential"]
