"""The Flor session: shared state of one record or replay execution.

A :class:`Session` owns the run directory, the checkpoint store, the log
manager, the adaptive-checkpointing controller and the background
materializer, and exposes the three primitives user code (or instrumented
code) interacts with:

* ``session.loop(iterable)`` — the Flor generator wrapping the main loop,
* ``session.skipblock(block_id)`` — a SkipBlock activation,
* ``session.log(name, value)`` — a logging statement routed to the record
  or replay log.

Exactly one session is *active* per process at a time; the module-level API
in :mod:`repro.api` delegates to it.
"""

from __future__ import annotations

import getpass
import platform
import time
from pathlib import Path
from typing import Iterable, Iterator

from .analysis.instrument import BlockSpec
from .config import FlorConfig, get_config
from .exceptions import FlorError, RecordError, ReplayError
from .modes import InitStrategy, Mode, Phase
from .record.adaptive import AdaptiveController
from .record.logger import LogManager, read_log
from .record.materializer import Materializer, create_materializer
from .record.skipblock import SkipBlock
from .storage.checkpoint_store import CheckpointStore
from . import telemetry

__all__ = ["Session", "get_active_session", "require_active_session"]

_ACTIVE_SESSION: "Session | None" = None


def get_active_session() -> "Session | None":
    """The currently active session, or None."""
    return _ACTIVE_SESSION


def require_active_session() -> "Session":
    """The currently active session, raising if none is active."""
    if _ACTIVE_SESSION is None:
        raise FlorError(
            "no active Flor session; wrap your training code in "
            "`with flor.record_session(...)` or run it through "
            "`flor.record_script` / `flor.replay_script`")
    return _ACTIVE_SESSION


class Session:
    """State and lifecycle of one record or replay execution."""

    def __init__(self, run_id: str, mode: Mode,
                 config: FlorConfig | None = None,
                 pid: int = 0, num_workers: int = 1,
                 init_strategy: InitStrategy = InitStrategy.STRONG,
                 probed_blocks: Iterable[str] | None = None,
                 sample_iterations: Iterable[int] | None = None,
                 replay_queue_path: str | Path | None = None):
        self.config = config or get_config()
        self.run_id = run_id
        self.mode = Mode(mode)
        self.pid = pid
        self.num_workers = num_workers
        self.init_strategy = InitStrategy(init_strategy)
        self.probed_blocks: set[str] = set(probed_blocks or ())
        self.sample_iterations: list[int] | None = (
            sorted(set(sample_iterations)) if sample_iterations is not None
            else None)
        #: Shared dynamic-scheduling work queue, provisioned by the parallel
        #: replay driver; None for static scheduling or standalone sessions.
        self.replay_queue_path: Path | None = (
            Path(replay_queue_path) if replay_queue_path is not None else None)

        if self.num_workers < 1:
            raise ReplayError(f"num_workers must be >= 1, got {num_workers}")
        if not 0 <= self.pid < self.num_workers:
            raise ReplayError(f"pid {pid} out of range for {num_workers} workers")

        telemetry.enable_from_config(self.config)
        self._tracer = telemetry.get_tracer()
        self._session_span = self._tracer.span(
            f"{self.mode.value}.session", run_id=run_id, worker=pid)
        self._iteration_span = telemetry.NOOP_SPAN

        self.run_dir: Path = self.config.run_dir(run_id)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.store = CheckpointStore.for_config(self.run_dir, self.config)

        if self.mode is Mode.RECORD:
            log_path = self.run_dir / "record.log"
            self.phase = Phase.RECORD
        else:
            log_path = self.run_dir / f"replay-p{pid}of{num_workers}.log"
            self.phase = Phase.REPLAY_EXEC
        self.logs = LogManager(log_path)

        self.adaptive = AdaptiveController(
            epsilon=self.config.epsilon,
            scaling_factor=self.config.scaling_factor,
            enabled=self.config.adaptive_checkpointing)
        # Feed per-codec compression timings into the controller's cost
        # model; with codec="auto" the controller also picks the codec
        # per payload from that model.
        self.store.codec_observer = self.adaptive.observe_codec
        if self.config.codec == "auto":
            self.store.codec_chooser = self.adaptive.choose_codec
        # Storage lifecycle: retention + payload GC, run on the spool's
        # background workers (gc_interval) and at session close.
        self.lifecycle = None
        if self.mode is Mode.RECORD and (
                self.config.retention_policy is not None
                or self.config.gc_interval is not None):
            from .storage.lifecycle import LifecycleManager
            self.lifecycle = LifecycleManager(
                self.store, policy=self.config.retention_policy,
                gc_interval=self.config.gc_interval)

        materializer_kwargs = {}
        if self.config.background_materialization == "spool":
            # Feed real background materialization timings back into the
            # adaptive controller's throughput model (Section 5.3.2).
            materializer_kwargs["on_complete"] = (
                self.adaptive.observe_background_materialization)
            if self.lifecycle is not None and \
                    self.config.gc_interval is not None:
                materializer_kwargs["on_batch_commit"] = (
                    self.lifecycle.on_manifest_commit)
        self.materializer: Materializer = create_materializer(
            self.config.background_materialization, self.store,
            config=self.config, **materializer_kwargs)

        self.block_specs: dict[str, BlockSpec] = {}
        # Composite execution-index scheme: 2 offsets composites by
        # (iteration + 1) * 1_000_000 so iteration 0's repeats can never
        # alias a later iteration's plain index; 1 is the legacy formula.
        # Replay honours whatever scheme the run was recorded under.
        self._index_scheme = 2
        if self.mode is Mode.REPLAY:
            stored = self.store.get_metadata("blocks", {})
            self.block_specs = {bid: BlockSpec.from_dict(spec)
                                for bid, spec in stored.items()}
            self._index_scheme = int(
                self.store.get_metadata("execution_index_scheme", 1))

        # Main-loop bookkeeping.
        self.current_iteration: int | None = None
        self.main_loop_total: int | None = None
        self.iterations_run: list[int] = []
        self.work_segment = None  # set by _replay_loop to a WorkSegment
        self.scheduler = None  # set by _replay_loop to a ReplayScheduler
        self._iteration_occurrences: dict[str, int] = {}
        self._global_counters: dict[str, int] = {}
        self._loop_block_ids: set[str] = set()
        self._weak_restore_index: int | None = None
        self._started_at = time.time()
        self._closed = False

    # ------------------------------------------------------------------ #
    # User-facing primitives
    # ------------------------------------------------------------------ #
    def log(self, name: str, value) -> None:
        """Log a value to the record or replay log.

        During replay initialization the surrounding code re-runs only to
        rebuild state, so its log statements are suppressed — each parallel
        worker emits only its own partition of the logs (Section 5.4.3).
        """
        if self.phase is Phase.REPLAY_INIT:
            return
        self.logs.log(name, value, iteration=self.current_iteration)

    def skipblock(self, block_id: str) -> SkipBlock:
        """Create a SkipBlock activation for the current loop iteration."""
        return SkipBlock(self, block_id)

    def loop(self, iterable: Iterable) -> Iterator:
        """The Flor generator (Figure 9) wrapping the main training loop.

        On record it simply tracks the iteration index.  On replay it asks
        the checkpoint-aware scheduler for this worker's segments and, for
        each, runs the scheduler's initialization plan with SkipBlocks in
        restore mode before replaying the segment in execution mode.
        """
        items = list(iterable)
        self.main_loop_total = len(items)
        if self.mode is Mode.RECORD:
            yield from self._record_loop(items)
        else:
            yield from self._replay_loop(items)

    def _record_loop(self, items: list) -> Iterator:
        for index, item in enumerate(items):
            self._begin_iteration(index)
            try:
                yield item
            finally:
                self._end_iteration(index)

    def _replay_loop(self, items: list) -> Iterator:
        # Imported here (not at module scope) to avoid a cycle: the replay
        # package's drivers import Session themselves.
        from .replay.scheduler import ReplayScheduler

        if self.sample_iterations is not None:
            yield from self._sampling_replay_loop(items)
            return

        scheduler = ReplayScheduler.for_session(self, len(items))
        self.scheduler = scheduler
        strong = self.init_strategy is InitStrategy.STRONG

        resume_from: int | None = None
        for segment in scheduler.worker_segments(self.pid):
            self.work_segment = segment
            if len(segment) == 0:
                continue

            plan = scheduler.init_plan(segment.start, resume_from,
                                       strong=strong)
            if len(plan):
                self.phase = Phase.REPLAY_INIT
                # Only the plan's designated restore iteration may fall back
                # to an earlier checkpoint; the gap iterations after it must
                # recompute (or exact-restore), never restore stale state.
                self._weak_restore_index = plan.restore_index
                try:
                    for index in plan.indices():
                        self._begin_iteration(index)
                        try:
                            yield items[index]
                        finally:
                            self._end_iteration(index)
                finally:
                    self._weak_restore_index = None
                    self.phase = Phase.REPLAY_EXEC

            for index in segment.indices():
                self._begin_iteration(index)
                try:
                    yield items[index]
                finally:
                    self._end_iteration(index)
            resume_from = segment.stop

    def _sampling_replay_loop(self, items: list) -> Iterator:
        """Sampling replay (the Section 8 proof of concept).

        Checkpoints give random access to any main-loop iteration, so replay
        can visit only a sampled subset: each sampled iteration ``k`` is
        preceded, when needed, by one iteration in replay-initialization mode
        (weak initialization from the nearest checkpoint at ``k - 1``) to
        rebuild its starting state.
        """
        wanted = [index for index in self.sample_iterations or []
                  if 0 <= index < len(items)]
        # Random access relies on restoring the nearest available checkpoint,
        # i.e. weak initialization semantics for the init iterations.
        self.init_strategy = InitStrategy.WEAK
        previous: int | None = None
        for index in wanted:
            if index > 0 and previous != index - 1:
                self.phase = Phase.REPLAY_INIT
                # Sampling's random access deliberately accepts the nearest
                # earlier checkpoint for its single init iteration.
                self._weak_restore_index = index - 1
                try:
                    self._begin_iteration(index - 1)
                    try:
                        yield items[index - 1]
                    finally:
                        self._end_iteration(index - 1)
                finally:
                    self._weak_restore_index = None
                    self.phase = Phase.REPLAY_EXEC
            self._begin_iteration(index)
            try:
                yield items[index]
            finally:
                self._end_iteration(index)
            previous = index

    # ------------------------------------------------------------------ #
    # Iteration bookkeeping
    # ------------------------------------------------------------------ #
    def _begin_iteration(self, index: int) -> None:
        self.current_iteration = index
        self._iteration_occurrences.clear()
        if self._tracer.enabled:
            name = ("record.iteration" if self.mode is Mode.RECORD
                    else "replay.init" if self.phase is Phase.REPLAY_INIT
                    else "replay.iteration")
            self._iteration_span = self._tracer.start(name, iteration=index)

    def _end_iteration(self, index: int) -> None:
        if self.phase is not Phase.REPLAY_INIT:
            self.iterations_run.append(index)
        self.current_iteration = None
        self._iteration_occurrences.clear()
        self._iteration_span.end()
        self._iteration_span = telemetry.NOOP_SPAN

    def next_execution_index(self, block_id: str) -> int:
        """Execution index of a SkipBlock activation.

        Inside the main loop the index is the loop iteration (epoch), so the
        record and replay phases agree on it even when replay jumps straight
        to a later epoch.  A block entered more than once in the same
        iteration gets a composite index; blocks outside the main loop use a
        simple per-block counter.
        """
        if self.current_iteration is not None:
            self._loop_block_ids.add(block_id)
            occurrence = self._iteration_occurrences.get(block_id, 0)
            self._iteration_occurrences[block_id] = occurrence + 1
            if occurrence == 0:
                return self.current_iteration
            # Scheme 2 starts composite indices at 1_000_000 for *every*
            # iteration (iteration + 1, not iteration), so iteration 0's
            # repeats can never alias iteration 1's plain index — the
            # scheduler filters composites with that threshold when
            # computing alignment.  Replay of a run recorded under the
            # legacy scheme keeps the legacy formula so stored checkpoint
            # indices still line up.
            offset = 1 if self._index_scheme >= 2 else 0
            return (self.current_iteration + offset) * 1_000_000 + occurrence
        counter = self._global_counters.get(block_id, 0)
        self._global_counters[block_id] = counter + 1
        return counter

    def allows_weak_restore(self, execution_index: int) -> bool:
        """Whether a replay-init SkipBlock may restore a *nearest-earlier*
        checkpoint at ``execution_index``.

        Only the initialization plan's designated restore iteration may —
        anywhere else a nearest-earlier fallback would silently rewind state
        (the weak-init divergence bug); those activations must recompute or
        exact-restore instead.
        """
        return (self._weak_restore_index is not None
                and execution_index == self._weak_restore_index)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def register_blocks(self, blocks: dict[str, BlockSpec]) -> None:
        """Attach instrumentation metadata (record mode)."""
        self.block_specs.update(blocks)

    def record_log_records(self):
        """The record-phase log of this run (read from disk)."""
        return read_log(self.run_dir / "record.log")

    def close(self) -> None:
        """Flush background work and persist run metadata."""
        if self._closed:
            return
        self._closed = True
        self.materializer.close()
        if self.mode is Mode.RECORD:
            self.store.set_metadata("run_id", self.run_id)
            self.store.set_metadata("mode", self.mode.value)
            # Distributed record: a worker run id (``<job>@<rank>``) carries
            # its logical-job membership; persist it so the catalog's merged
            # job view never has to re-parse ids from directory names.
            from .utils.naming import split_worker_run_id
            job_id, rank = split_worker_run_id(self.run_id)
            if rank is not None:
                self.store.set_metadata("worker",
                                        {"job_id": job_id, "rank": rank})
            self.store.set_metadata("execution_index_scheme",
                                    self._index_scheme)
            self.store.set_metadata(
                "blocks", {bid: spec.to_dict()
                           for bid, spec in self.block_specs.items()})
            self.store.set_metadata("main_loop_total", self.main_loop_total)
            self.store.set_metadata("iterations_run", self.iterations_run)
            self.store.set_metadata("adaptive_summary", self.adaptive.summary())
            # Scheduler-facing metadata: which blocks live inside the main
            # loop (alignment) and what iterations cost (balancing).
            self.store.put_metadata("loop_blocks",
                                    sorted(self._loop_block_ids))
            self.store.put_metadata("iteration_stats",
                                    self.adaptive.iteration_stats())
            # Catalog-facing metadata: which value names this run logged, so
            # the hindsight query planner can resolve logged values without
            # scanning record.log for every cataloged run.
            self.store.set_metadata("logged_values", self.logs.names())
            materializer_meta = {
                "strategy": self.materializer.name,
                "submitted": self.materializer.stats.submitted,
                "main_thread_seconds":
                    self.materializer.stats.total_main_thread_seconds,
            }
            spool = getattr(self.materializer, "spool", None)
            if spool is not None:
                materializer_meta["spool"] = {
                    "workers": spool.workers,
                    "mode": spool.mode,
                    "completed": spool.stats.completed,
                    "manifest_commits": spool.stats.manifest_commits,
                    "backpressure_waits": spool.stats.backpressure_waits,
                    "backpressure_seconds": spool.stats.backpressure_seconds,
                    "spool_seconds": spool.stats.spool_seconds,
                }
            self.store.set_metadata("materializer", materializer_meta)
            self.store.set_metadata("storage_backend",
                                    self.store.backend.name)
            self.store.set_metadata("environment", {
                "platform": platform.platform(),
                "python": platform.python_version(),
                "user": _safe_user(),
                "started_at": self._started_at,
                "wall_seconds": time.time() - self._started_at,
            })
            if self.lifecycle is not None:
                # The spool has flushed (materializer.close above), so
                # nothing of *ours* is in flight.  The manager's default
                # grace still applies — the object store is shared, and a
                # concurrently recording session may have written blobs
                # it has not yet indexed — while whatever our own prunes
                # released sweeps immediately via release hints.
                self.lifecycle.run_once()
                self.store.set_metadata("lifecycle",
                                        self.lifecycle.summary())
        elif (self.config.telemetry
                and self.adaptive.restore_observations > 0):
            # Replay measured real restore times; fold the EWMA back into
            # the run's iteration_stats so the next query plan / replay
            # schedule prices restores from observation, not the
            # scaling-factor prior.  Last-writer-wins across concurrent
            # workers is fine — every worker's EWMA measures the same
            # storage path.
            stats = self.store.get_metadata("iteration_stats", {}) or {}
            stats["observed_restore_seconds"] = round(
                self.adaptive.restore_ewma, 6)
            stats["restore_observations"] = (
                self.adaptive.restore_observations)
            self.store.put_metadata("iteration_stats", stats)
        self._session_span.end()
        if self.mode is Mode.RECORD and self._tracer.enabled:
            # Persist the flight-recorder capture next to the run, in the
            # same metadata channel as iteration_stats.  The buffer is
            # process-global (bounded), so the document may also carry
            # spans from adjacent activity in this process.
            self.store.put_metadata(
                telemetry.METADATA_KEY,
                telemetry.current_document(meta={"run_id": self.run_id}))
        self.store.flush()

    # ------------------------------------------------------------------ #
    # Activation / context manager protocol
    # ------------------------------------------------------------------ #
    def activate(self) -> "Session":
        global _ACTIVE_SESSION
        if _ACTIVE_SESSION is not None and _ACTIVE_SESSION is not self:
            raise RecordError(
                "another Flor session is already active in this process")
        _ACTIVE_SESSION = self
        return self

    def deactivate(self) -> None:
        global _ACTIVE_SESSION
        if _ACTIVE_SESSION is self:
            _ACTIVE_SESSION = None

    def __enter__(self) -> "Session":
        return self.activate()

    def __exit__(self, *exc_info) -> None:
        try:
            self.close()
        finally:
            self.deactivate()

    def __repr__(self) -> str:
        return (f"Session(run_id={self.run_id!r}, mode={self.mode.value}, "
                f"pid={self.pid}/{self.num_workers})")


def _safe_user() -> str:
    try:
        return getpass.getuser()
    except (KeyError, OSError):  # pragma: no cover - containerized edge case
        return "unknown"
