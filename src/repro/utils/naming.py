"""Run naming helpers.

Run identifiers need to be filesystem-safe (they become directory names in
the checkpoint store) and unique across repeated executions on one machine.
"""

from __future__ import annotations

import datetime as _dt
import re
import uuid

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str, max_length: int = 48) -> str:
    """Turn arbitrary text into a lowercase, hyphen-separated slug.

    >>> slugify("ResNet-152 on Cifar100!")
    'resnet-152-on-cifar100'
    """
    slug = _SLUG_RE.sub("-", text.lower()).strip("-")
    return slug[:max_length].strip("-") or "run"


def new_run_id(name: str | None = None) -> str:
    """Build a unique, sortable run identifier.

    The identifier embeds a UTC timestamp (so runs sort chronologically on
    disk) and a short random suffix (so concurrent runs never collide).
    """
    stamp = _dt.datetime.now(_dt.timezone.utc).strftime("%Y%m%dT%H%M%S")
    suffix = uuid.uuid4().hex[:8]
    prefix = slugify(name) if name else "flor"
    return f"{prefix}-{stamp}-{suffix}"


# --------------------------------------------------------------------------- #
# Worker run identity (distributed record)
# --------------------------------------------------------------------------- #
#: Separator between a logical job id and a worker rank in a run id.  ``@``
#: is filesystem-safe, survives :func:`slugify`'d job ids unchanged, and
#: cannot appear in a slug, so the split is unambiguous.
WORKER_SEPARATOR = "@"

_WORKER_RE = re.compile(r"^(?P<job>.+)@(?P<rank>\d+)$")


def worker_run_id(job_id: str, rank: int) -> str:
    """The run id of worker ``rank`` of logical job ``job_id``.

    Data-parallel recorders share one Flor home but each needs its own run
    directory (own manifest, own record log); ``<job_id>@<rank>`` keeps the
    per-worker runs grouped under one job for the catalog's merged view.

    >>> worker_run_id("cifr-ddp-20260808", 2)
    'cifr-ddp-20260808@2'
    """
    if rank < 0:
        raise ValueError(f"worker rank must be >= 0, got {rank}")
    if WORKER_SEPARATOR in job_id:
        raise ValueError(
            f"job id {job_id!r} already contains {WORKER_SEPARATOR!r}; "
            "nested worker identities are not supported")
    return f"{job_id}{WORKER_SEPARATOR}{rank}"


def split_worker_run_id(run_id: str) -> tuple[str, int | None]:
    """``(job_id, rank)`` for a worker run id; ``(run_id, None)`` otherwise.

    >>> split_worker_run_id("cifr-ddp@3")
    ('cifr-ddp', 3)
    >>> split_worker_run_id("plain-run")
    ('plain-run', None)
    """
    match = _WORKER_RE.match(run_id)
    if match is None:
        return run_id, None
    return match.group("job"), int(match.group("rank"))
