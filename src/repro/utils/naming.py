"""Run naming helpers.

Run identifiers need to be filesystem-safe (they become directory names in
the checkpoint store) and unique across repeated executions on one machine.
"""

from __future__ import annotations

import datetime as _dt
import re
import uuid

_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str, max_length: int = 48) -> str:
    """Turn arbitrary text into a lowercase, hyphen-separated slug.

    >>> slugify("ResNet-152 on Cifar100!")
    'resnet-152-on-cifar100'
    """
    slug = _SLUG_RE.sub("-", text.lower()).strip("-")
    return slug[:max_length].strip("-") or "run"


def new_run_id(name: str | None = None) -> str:
    """Build a unique, sortable run identifier.

    The identifier embeds a UTC timestamp (so runs sort chronologically on
    disk) and a short random suffix (so concurrent runs never collide).
    """
    stamp = _dt.datetime.now(_dt.timezone.utc).strftime("%Y%m%dT%H%M%S")
    suffix = uuid.uuid4().hex[:8]
    prefix = slugify(name) if name else "flor"
    return f"{prefix}-{stamp}-{suffix}"
