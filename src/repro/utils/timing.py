"""Timing helpers used by the recorder, the adaptive controller and the simulator.

Two clocks appear in this codebase:

* :class:`Stopwatch` measures real wall-clock intervals (used on the live
  record/replay path to feed the adaptive checkpointing controller).
* :class:`VirtualClock` is a deterministic, manually-advanced clock used by
  the paper-scale simulator (``repro.sim``) so experiments are reproducible
  and fast regardless of the machine running them.

Every duration measurement in the package routes through :func:`monotonic`,
so telemetry spans, adaptive-controller stats and lifecycle bookkeeping are
all on the same clock and directly comparable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def monotonic() -> float:
    """The package-wide monotonic clock for measuring durations.

    ``time.perf_counter`` is monotonic with the highest resolution the
    platform offers; differences between two calls are wall-clock seconds
    unaffected by system clock adjustments.  Do not mix differences of
    :func:`monotonic` readings with ``time.time()`` epochs.
    """
    return time.perf_counter()


class Stopwatch:
    """A restartable wall-clock stopwatch with lap support.

    Example
    -------
    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = monotonic()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds since start."""
        if self._start is None:
            raise RuntimeError("stopwatch was never started")
        self._elapsed = monotonic() - self._start
        self._start = None
        return self._elapsed

    def lap(self) -> float:
        """Return seconds elapsed since ``start`` without stopping."""
        if self._start is None:
            raise RuntimeError("stopwatch was never started")
        return monotonic() - self._start

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the most recently completed interval."""
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class VirtualClock:
    """A deterministic clock advanced explicitly by the simulator.

    The simulator models record/replay of hours-long training runs; using a
    virtual clock keeps those experiments instantaneous and exactly
    reproducible.
    """

    now: float = 0.0
    history: list[tuple[float, str]] = field(default_factory=list)

    def advance(self, seconds: float, label: str = "") -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self.now += seconds
        if label:
            self.history.append((self.now, label))
        return self.now

    def reset(self) -> None:
        self.now = 0.0
        self.history.clear()


def format_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``format_duration(3725) == '1h 2m 5s'``.

    Sub-second durations get millisecond/microsecond granularity
    (``format_duration(0.25) == '250ms'``) instead of rounding to ``'0s'``,
    so bench output and trace timelines stay legible for fast spans.
    """
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds == 0:
        return "0s"
    if seconds < 1.0:
        millis = seconds * 1e3
        if millis >= 1.0:
            if round(millis) >= 1000:
                return "1s"
            return f"{millis:.0f}ms" if millis >= 10 else f"{millis:.2g}ms"
        micros = seconds * 1e6
        if micros >= 1.0:
            return f"{micros:.0f}µs"
        return "<1µs"
    whole = int(round(seconds))
    hours, rem = divmod(whole, 3600)
    minutes, secs = divmod(rem, 60)
    parts: list[str] = []
    if hours:
        parts.append(f"{hours}h")
    if minutes:
        parts.append(f"{minutes}m")
    if secs or not parts:
        parts.append(f"{secs}s")
    return " ".join(parts)
