"""Timing helpers used by the recorder, the adaptive controller and the simulator.

Two clocks appear in this codebase:

* :class:`Stopwatch` measures real wall-clock intervals (used on the live
  record/replay path to feed the adaptive checkpointing controller).
* :class:`VirtualClock` is a deterministic, manually-advanced clock used by
  the paper-scale simulator (``repro.sim``) so experiments are reproducible
  and fast regardless of the machine running them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class Stopwatch:
    """A restartable wall-clock stopwatch with lap support.

    Example
    -------
    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(1000))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds since start."""
        if self._start is None:
            raise RuntimeError("stopwatch was never started")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    def lap(self) -> float:
        """Return seconds elapsed since ``start`` without stopping."""
        if self._start is None:
            raise RuntimeError("stopwatch was never started")
        return time.perf_counter() - self._start

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the most recently completed interval."""
        return self._elapsed

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class VirtualClock:
    """A deterministic clock advanced explicitly by the simulator.

    The simulator models record/replay of hours-long training runs; using a
    virtual clock keeps those experiments instantaneous and exactly
    reproducible.
    """

    now: float = 0.0
    history: list[tuple[float, str]] = field(default_factory=list)

    def advance(self, seconds: float, label: str = "") -> float:
        """Advance the clock by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self.now += seconds
        if label:
            self.history.append((self.now, label))
        return self.now

    def reset(self) -> None:
        self.now = 0.0
        self.history.clear()


def format_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``format_duration(3725) == '1h 2m 5s'``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    whole = int(round(seconds))
    hours, rem = divmod(whole, 3600)
    minutes, secs = divmod(rem, 60)
    parts: list[str] = []
    if hours:
        parts.append(f"{hours}h")
    if minutes:
        parts.append(f"{minutes}m")
    if secs or not parts:
        parts.append(f"{secs}s")
    return " ".join(parts)
