"""Stable hashing utilities.

The replayer fingerprints source files and checkpoint payloads so it can
tell whether the code changed between record and replay (probe detection)
and whether a payload on disk is the one the manifest promised.
"""

from __future__ import annotations

import hashlib
from pathlib import Path


def digest_bytes(data: bytes) -> str:
    """Hex SHA-256 digest of a byte string."""
    return hashlib.sha256(data).hexdigest()


def digest_file(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of a file's contents, streamed in chunks."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            hasher.update(chunk)
    return hasher.hexdigest()


def stable_hash(text: str) -> str:
    """Hex SHA-256 digest of a unicode string (UTF-8 encoded)."""
    return digest_bytes(text.encode("utf-8"))
