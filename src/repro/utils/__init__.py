"""Small shared utilities: timers, deterministic naming, hashing."""

from .timing import Stopwatch, VirtualClock, format_duration
from .naming import new_run_id, slugify
from .hashing import stable_hash, digest_bytes, digest_file

__all__ = [
    "Stopwatch",
    "VirtualClock",
    "format_duration",
    "new_run_id",
    "slugify",
    "stable_hash",
    "digest_bytes",
    "digest_file",
]
