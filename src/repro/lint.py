"""``python -m repro.lint`` — the replay-safety lint CLI.

Targets may be Python files, directories (linted recursively), or run ids
already in the catalog (any unambiguous prefix); the recorded run's
snapshotted source is pulled from its run directory.  Exit status: 0 when
no diagnostic reaches the ``--fail-on`` threshold, 1 when one does, 2 on
usage or target-resolution errors.

Examples::

    python -m repro.lint examples/ src/repro/workloads/
    python -m repro.lint train.py --fail-on warning
    python -m repro.lint my-run-id --json --output diagnostics.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis.diagnostics import DiagnosticReport, Severity
from .analysis.lint import lint_path, lint_run
from .exceptions import FlorError

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Replay-safety lint for recorded scripts and runs.")
    parser.add_argument("targets", nargs="+",
                        help="Python files, directories, or recorded run ids")
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON diagnostics document instead of "
                             "the human rendering")
    parser.add_argument("--output", metavar="FILE",
                        help="also write the JSON diagnostics document to "
                             "FILE (regardless of --json)")
    parser.add_argument("--fail-on", choices=["info", "warning", "error"],
                        default="error",
                        help="exit 1 when any diagnostic reaches this "
                             "severity (default: error)")
    return parser


def _expand_targets(targets: list[str]) -> tuple[list[Path], list[str]]:
    """Split targets into Python files on disk and candidate run ids."""
    files: list[Path] = []
    run_ids: list[str] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            found = sorted(path.rglob("*.py"))
            if not found:
                raise FlorError(f"no Python files under directory {path}")
            files.extend(found)
        elif path.is_file():
            files.append(path)
        else:
            run_ids.append(target)
    return files, run_ids


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    report = DiagnosticReport()
    try:
        files, run_ids = _expand_targets(args.targets)
        for path in files:
            report.merge(lint_path(path))
        for run_id in run_ids:
            report.merge(lint_run(run_id))
    except FlorError as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    if args.output:
        Path(args.output).write_text(report.to_json() + "\n",
                                     encoding="utf-8")
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())

    threshold = Severity(args.fail_on)
    return 1 if any(d.severity >= threshold for d in report) else 0


if __name__ == "__main__":
    sys.exit(main())
