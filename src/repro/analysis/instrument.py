"""AST instrumentation: from a plain training script to a Flor-ready script.

This is the automation behind "all a model developer has to do is
``import flor``" (Section 3).  Given the source of a training script, the
instrumenter:

1. finds the *main loop* (the epoch loop) and wraps its iterator in the Flor
   generator — ``for epoch in __flor__.loop(range(N))`` — which is what
   enables hindsight parallelism on replay (Figure 8, line 2);
2. runs static side-effect analysis on every loop nested inside the main
   loop and, for each instrumentable one, encloses it in a SkipBlock
   (Figure 4): the loop only runs when the SkipBlock decides it should, and
   the SkipBlock's ``end()`` call memoizes or restores the loop's changeset;
3. reports, per SkipBlock, the original line range of the enclosed loop so
   the replay phase can map a source diff onto probed blocks.

Block identifiers are assigned in source order (``skipblock_0``,
``skipblock_1``, ...).  Hindsight log statements added for replay do not
create new loops, so identifiers remain stable between record and replay;
restructuring the loops themselves invalidates old checkpoints, as in the
paper.
"""

from __future__ import annotations

import ast
import copy
from dataclasses import dataclass, field

from ..exceptions import InstrumentationError
from .astlock import locked_parse
from .loop_finder import LoopAnalysis, ScriptAnalysis, analyze_script

__all__ = ["BlockSpec", "InstrumentationResult", "instrument_source",
           "FLOR_MODULE_ALIAS"]

#: Name under which the instrumented script imports the Flor API.
FLOR_MODULE_ALIAS = "__flor__"


@dataclass(frozen=True)
class BlockSpec:
    """Metadata about one SkipBlock, in terms of the *original* source."""

    block_id: str
    start_line: int
    end_line: int
    changeset: tuple[str, ...]
    loop_scoped: tuple[str, ...]

    def contains_line(self, lineno: int) -> bool:
        """Whether a (1-based) original-source line falls inside this block."""
        return self.start_line <= lineno <= self.end_line

    def to_dict(self) -> dict:
        return {
            "block_id": self.block_id,
            "start_line": self.start_line,
            "end_line": self.end_line,
            "changeset": list(self.changeset),
            "loop_scoped": list(self.loop_scoped),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BlockSpec":
        return cls(block_id=data["block_id"], start_line=data["start_line"],
                   end_line=data["end_line"],
                   changeset=tuple(data["changeset"]),
                   loop_scoped=tuple(data.get("loop_scoped", ())))


@dataclass
class InstrumentationResult:
    """Everything the record/replay phases need about an instrumented script."""

    original_source: str
    instrumented_source: str
    blocks: dict[str, BlockSpec] = field(default_factory=dict)
    main_loop_line: int | None = None
    analysis: ScriptAnalysis | None = None
    skipped_loops: list[tuple[int, str]] = field(default_factory=list)

    @property
    def has_main_loop(self) -> bool:
        return self.main_loop_line is not None


def instrument_source(source: str, filename: str = "<training-script>"
                      ) -> InstrumentationResult:
    """Instrument ``source`` and return the transformed script plus metadata."""
    try:
        analysis = analyze_script(source)
    except SyntaxError as exc:
        raise InstrumentationError(
            f"cannot parse {filename}: {exc}") from exc

    result = InstrumentationResult(original_source=source,
                                   instrumented_source=source,
                                   analysis=analysis)

    main = analysis.main_loop
    if main is None:
        # Nothing to do: no epoch/training nested-loop structure found.
        return result
    result.main_loop_line = main.lineno

    # Work on a private copy of the tree so `analysis.tree` keeps original nodes.
    tree = locked_parse(source)
    loops_by_line = _index_loops(tree)

    # 1. Wrap the main loop's iterator in the Flor generator.
    main_node = loops_by_line.get(main.lineno)
    if not isinstance(main_node, ast.For):
        raise InstrumentationError(
            f"main loop at line {main.lineno} is not a for-loop; only "
            "for-loops over an explicit iterator can be partitioned for "
            "parallel replay")
    main_node.iter = ast.Call(
        func=ast.Attribute(value=ast.Name(id=FLOR_MODULE_ALIAS, ctx=ast.Load()),
                           attr="loop", ctx=ast.Load()),
        args=[main_node.iter], keywords=[])

    # 2. Enclose instrumentable nested loops in SkipBlocks.
    nested = [loop for loop in analysis.nested_loops()]
    block_index = 0
    for loop_analysis in nested:
        node = loops_by_line.get(loop_analysis.lineno)
        if node is None:
            continue
        if not loop_analysis.instrumentable:
            result.skipped_loops.append(
                (loop_analysis.lineno, loop_analysis.blocking_reason))
            continue
        block_id = f"skipblock_{block_index}"
        block_index += 1
        _wrap_in_skipblock(tree, node, block_id, loop_analysis)
        result.blocks[block_id] = BlockSpec(
            block_id=block_id,
            start_line=loop_analysis.lineno,
            end_line=loop_analysis.end_lineno,
            changeset=tuple(sorted(loop_analysis.changeset)),
            loop_scoped=tuple(sorted(loop_analysis.loop_scoped)),
        )

    # 3. Make sure the Flor API is importable from the instrumented script.
    _inject_import(tree)

    ast.fix_missing_locations(tree)
    result.instrumented_source = ast.unparse(tree)
    return result


# ---------------------------------------------------------------------- #
# Tree surgery helpers
# ---------------------------------------------------------------------- #
def _index_loops(tree: ast.Module) -> dict[int, ast.For | ast.While]:
    """Map line numbers to loop nodes in a freshly parsed tree."""
    loops: dict[int, ast.For | ast.While] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.While)):
            loops.setdefault(node.lineno, node)
    return loops


def _find_parent_and_index(tree: ast.AST, target: ast.stmt
                           ) -> tuple[list[ast.stmt], int]:
    """Locate the statement list containing ``target`` and its position."""
    for node in ast.walk(tree):
        for field_name in ("body", "orelse", "finalbody"):
            body = getattr(node, field_name, None)
            if isinstance(body, list):
                for index, stmt in enumerate(body):
                    if stmt is target:
                        return body, index
        handlers = getattr(node, "handlers", None)
        if handlers:
            for handler in handlers:
                for index, stmt in enumerate(handler.body):
                    if stmt is target:
                        return handler.body, index
    raise InstrumentationError("loop node vanished during instrumentation")


def _wrap_in_skipblock(tree: ast.Module, loop_node: ast.stmt, block_id: str,
                       loop_analysis: LoopAnalysis) -> None:
    """Replace ``loop_node`` with SkipBlock-instrumented statements in place."""
    body, index = _find_parent_and_index(tree, loop_node)
    names = sorted(loop_analysis.changeset)
    handle = f"_flor_sb_{block_id}"
    values = f"_flor_vals_{block_id}"

    guard_src = (
        f"{handle} = {FLOR_MODULE_ALIAS}.skipblock({block_id!r})\n"
        f"if {handle}.should_execute():\n"
        f"    pass\n"
    )
    if names:
        name_list = ", ".join(repr(name) for name in names)
        end_src = (f"{values} = {handle}.end_from_namespace([{name_list}], "
                   f"{{**globals(), **locals()}})\n")
        rebind_src = "".join(f"{name} = {values}[{name!r}]\n" for name in names)
    else:
        end_src = (f"{handle}.end_from_namespace([], "
                   f"{{**globals(), **locals()}})\n")
        rebind_src = ""

    template = locked_parse(guard_src + end_src + rebind_src).body
    assign_stmt, if_stmt = template[0], template[1]
    trailing = template[2:]
    if_stmt.body = [copy.deepcopy(loop_node)]

    body[index:index + 1] = [assign_stmt, if_stmt, *trailing]


def _inject_import(tree: ast.Module) -> None:
    """Insert ``from repro import api as __flor__`` near the top of the module."""
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == "repro":
            if any(alias.asname == FLOR_MODULE_ALIAS for alias in node.names):
                return

    import_node = ast.ImportFrom(
        module="repro",
        names=[ast.alias(name="api", asname=FLOR_MODULE_ALIAS)],
        level=0)

    insert_at = 0
    for index, node in enumerate(tree.body):
        is_docstring = (index == 0 and isinstance(node, ast.Expr)
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, str))
        is_future = (isinstance(node, ast.ImportFrom)
                     and node.module == "__future__")
        if is_docstring or is_future:
            insert_at = index + 1
        else:
            break
    tree.body.insert(insert_at, import_node)
