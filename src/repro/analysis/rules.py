"""Table 1: the six rules of Flor's static side-effect analysis.

Each rule is a template matched against a single program statement; at most
one rule fires per statement, in descending order of precedence:

====  ==========================================  ==================
Rule  Pattern                                      Changeset delta
====  ==========================================  ==================
0     ``v1,..,vn = u1,..,um`` and some ``vi`` is   No estimate
      already in the changeset                     (blocks the loop)
1     ``v1,..,vn = obj.method(a1,..,am)``          ``{obj, v1,..,vn}``
2     ``v1,..,vn = func(a1,..,am)``                ``{v1,..,vn}``
3     ``v1,..,vn = u1,..,um``                      ``{v1,..,vn}``
4     ``obj.method(a1,..,am)``                     ``{obj}``
5     ``func(a1,..,am)``                           No estimate
                                                   (blocks the loop)
====  ==========================================  ==================

Notes on the reproduction:

* Augmented assignments (``x += e``) read the old value of ``x`` before
  rebinding it, so the "old value missing from the changeset" hazard Rule 0
  guards against does not arise; they are treated as Rule 3 with delta
  ``{x}`` and are exempt from Rule 0.
* Assignments whose targets are attributes or subscripts
  (``obj.attr = e``, ``d[k] = e``) mutate the base object; they contribute
  the base name, like Rule 4.
* Statements that match no rule (``pass``, ``break``, docstrings, ...) are
  ignored, as in the paper.
"""

from __future__ import annotations

import ast

from ..exceptions import SideEffectAnalysisError
from .changeset import Changeset, RuleApplication
from .scope import pattern_names

__all__ = ["apply_rules_to_statement", "build_changeset", "target_names",
           "call_base_name", "declared_escaping_names"]


def target_names(target: ast.expr) -> tuple[set[str], set[str]]:
    """Return ``(bound_names, mutated_base_names)`` for an assignment target.

    ``bound_names`` are plain variables being (re)bound; ``mutated_base_names``
    are base objects mutated through attribute or subscript targets.
    """
    bound: set[str] = set()
    mutated: set[str] = set()
    nodes = [target]
    while nodes:
        node = nodes.pop()
        if isinstance(node, ast.Name):
            bound.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            nodes.extend(node.elts)
        elif isinstance(node, ast.Starred):
            nodes.append(node.value)
        elif isinstance(node, (ast.Attribute, ast.Subscript)):
            base = _base_name(node)
            if base is not None:
                mutated.add(base)
        else:
            raise SideEffectAnalysisError(
                f"unsupported assignment target {ast.dump(node)}")
    return bound, mutated


def _base_name(node: ast.expr) -> str | None:
    """The leftmost Name in an attribute/subscript chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_base_name(call: ast.Call) -> tuple[str | None, bool]:
    """Return ``(base_name, is_method_call)`` for a call expression.

    ``obj.method(...)`` and ``obj.a.b.method(...)`` are method calls with
    base ``obj``; ``func(...)`` is a plain function call with base ``func``.
    """
    func = call.func
    if isinstance(func, ast.Attribute):
        return _base_name(func), True
    if isinstance(func, ast.Name):
        return func.id, False
    # e.g. ``factory()(x)`` or ``items[0](x)`` — treat like a plain call with
    # no nameable base.
    return None, False


def apply_rules_to_statement(stmt: ast.stmt, changeset: Changeset,
                             declared_globals: frozenset[str] = frozenset()
                             ) -> RuleApplication | None:
    """Match ``stmt`` against Table 1 and return the rule application, if any.

    ``declared_globals`` are names declared ``global``/``nonlocal`` in the
    loop body: an assignment to one of them escapes the loop's scope
    entirely, so the matching rule escalates to a blocking application —
    the changeset cannot bound the statement's effects.
    """
    lineno = getattr(stmt, "lineno", 0)

    # --- assignment forms -------------------------------------------------
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return None
            targets = [stmt.target]
        else:
            targets = stmt.targets
        bound: set[str] = set()
        mutated: set[str] = set()
        for target in targets:
            b, m = target_names(target)
            bound |= b
            mutated |= m

        # Rule 0: re-assignment of an already-modified variable.
        already = bound & changeset.names
        if already:
            return RuleApplication(
                rule=0, lineno=lineno, delta=frozenset(), blocking=True,
                reason=f"re-assigns previously modified variable(s) "
                       f"{sorted(already)}")

        escaping = bound & declared_globals
        if escaping:
            return RuleApplication(
                rule=3, lineno=lineno, delta=frozenset(), blocking=True,
                reason=f"assigns global/nonlocal-declared name(s) "
                       f"{sorted(escaping)}; the binding escapes the "
                       f"loop's scope")

        value = stmt.value
        if isinstance(value, ast.Call):
            base, is_method = call_base_name(value)
            if is_method and base is not None:
                return RuleApplication(rule=1, lineno=lineno,
                                       delta=frozenset(bound | mutated | {base}))
            return RuleApplication(rule=2, lineno=lineno,
                                   delta=frozenset(bound | mutated))
        return RuleApplication(rule=3, lineno=lineno,
                               delta=frozenset(bound | mutated))

    if isinstance(stmt, ast.AugAssign):
        bound, mutated = target_names(stmt.target)
        escaping = bound & declared_globals
        if escaping:
            return RuleApplication(
                rule=3, lineno=lineno, delta=frozenset(), blocking=True,
                reason=f"assigns global/nonlocal-declared name(s) "
                       f"{sorted(escaping)}; the binding escapes the "
                       f"loop's scope")
        return RuleApplication(rule=3, lineno=lineno,
                               delta=frozenset(bound | mutated))

    # --- match statements -------------------------------------------------
    # Case patterns bind captured names like a plain assignment of the
    # subject's pieces: Rule 0 if a pattern rebinds an already-modified
    # name, Rule 3 delta otherwise.  Case *bodies* are analysed separately
    # by the statement iteration.
    if isinstance(stmt, ast.Match):
        bound = set()
        for case in stmt.cases:
            bound |= pattern_names(case.pattern)
        already = bound & changeset.names
        if already:
            return RuleApplication(
                rule=0, lineno=lineno, delta=frozenset(), blocking=True,
                reason=f"match pattern re-binds previously modified "
                       f"variable(s) {sorted(already)}")
        escaping = bound & declared_globals
        if escaping:
            return RuleApplication(
                rule=3, lineno=lineno, delta=frozenset(), blocking=True,
                reason=f"assigns global/nonlocal-declared name(s) "
                       f"{sorted(escaping)}; the binding escapes the "
                       f"loop's scope")
        if bound:
            return RuleApplication(rule=3, lineno=lineno,
                                   delta=frozenset(bound))
        return None

    # --- bare call statements ---------------------------------------------
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        base, is_method = call_base_name(stmt.value)
        if is_method and base is not None:
            return RuleApplication(rule=4, lineno=lineno,
                                   delta=frozenset({base}))
        func_name = base or "<anonymous>"
        return RuleApplication(
            rule=5, lineno=lineno, delta=frozenset(), blocking=True,
            reason=f"call to function {func_name!r} may have arbitrary "
                   f"side-effects")

    return None


#: Statement types whose nested bodies are analysed recursively.
_COMPOUND = (ast.If, ast.For, ast.AsyncFor, ast.While, ast.With,
             ast.AsyncWith, ast.Try, ast.Match)


def _iter_statements(body: list[ast.stmt]):
    """Yield statements of a loop body in program order, entering nested
    compound statements but not nested function/class definitions."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, _COMPOUND):
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, field_name, None)
                if nested:
                    yield from _iter_statements(nested)
            handlers = getattr(stmt, "handlers", None)
            if handlers:
                for handler in handlers:
                    yield from _iter_statements(handler.body)
            cases = getattr(stmt, "cases", None)
            if cases:
                for case in cases:
                    yield from _iter_statements(case.body)


def declared_escaping_names(body: list[ast.stmt]) -> frozenset[str]:
    """Names declared ``global``/``nonlocal`` anywhere in ``body``.

    Nested function/class definitions are not descended: their
    declarations refer to *their* enclosing scope, not the loop's.
    """
    names: set[str] = set()
    for stmt in _iter_statements(body):
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            names.update(stmt.names)
    return frozenset(names)


def build_changeset(loop: ast.For | ast.While) -> Changeset:
    """Run the Table 1 rules over every statement of ``loop``'s body.

    For nested ``for`` loops encountered inside the body, the nested loop's
    target variable is added to the changeset (it is assigned each nested
    iteration); it is almost always filtered out later as loop-scoped.
    """
    changeset = Changeset()
    declared_globals = declared_escaping_names(loop.body)

    if isinstance(loop, (ast.For, ast.AsyncFor)):
        bound, mutated = target_names(loop.target)
        changeset.apply(RuleApplication(rule=3, lineno=loop.lineno,
                                        delta=frozenset(bound | mutated)))

    for stmt in _iter_statements(loop.body):
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            bound, mutated = target_names(stmt.target)
            changeset.apply(RuleApplication(rule=3, lineno=stmt.lineno,
                                            delta=frozenset(bound | mutated)))
            continue
        application = apply_rules_to_statement(stmt, changeset,
                                               declared_globals)
        if application is not None:
            changeset.apply(application)
        if changeset.blocked:
            break
    return changeset
