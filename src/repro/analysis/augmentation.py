"""Runtime changeset augmentation with library-specific knowledge.

Static analysis cannot see that ``optimizer.step()`` mutates the model, or
that ``scheduler.step()`` mutates the optimizer (Section 5.2.1).  The paper
encodes exactly two library facts for PyTorch:

1. the model may be updated via the optimizer, and
2. the optimizer may be updated via the learning-rate schedule.

We encode the same two facts for the torchlike substrate, and expose a small
registry so additional libraries can be supported the way the paper suggests
("adopting another training library involves only encoding any side-effects
in the library's API").

Augmentation runs at *runtime*: given the loop's statically-estimated
changeset and the live namespace, each augmentation rule may add further
names whose objects are mutated indirectly.
"""

from __future__ import annotations

from typing import Callable, Mapping

__all__ = ["AugmentationRule", "register_augmentation_rule",
           "clear_augmentation_rules", "default_rules", "augment_changeset"]

#: An augmentation rule maps (object in changeset, namespace) -> extra names.
AugmentationRule = Callable[[object, Mapping[str, object]], set[str]]

_RULES: list[AugmentationRule] = []


def register_augmentation_rule(rule: AugmentationRule) -> AugmentationRule:
    """Register an additional library-knowledge rule (returns it, so it can
    be used as a decorator)."""
    _RULES.append(rule)
    return rule


def clear_augmentation_rules() -> None:
    """Remove user-registered rules, keeping only the built-in ones."""
    _RULES.clear()
    _RULES.extend(default_rules())


def _optimizer_rule(obj: object, namespace: Mapping[str, object]) -> set[str]:
    """Fact (a): the model may be updated via the optimizer.

    If ``obj`` exposes ``managed_parameters()`` (the torchlike Optimizer
    protocol), find any namespace object whose parameters overlap the
    optimizer's — that is the model the optimizer mutates.
    """
    managed = getattr(obj, "managed_parameters", None)
    if not callable(managed):
        return set()
    try:
        param_ids = {id(p) for p in managed()}
    except Exception:
        return set()
    extra: set[str] = set()
    for name, value in namespace.items():
        parameters = getattr(value, "parameters", None)
        if not callable(parameters) or value is obj:
            continue
        try:
            if any(id(p) in param_ids for p in parameters()):
                extra.add(name)
        except Exception:
            continue
    return extra


def _scheduler_rule(obj: object, namespace: Mapping[str, object]) -> set[str]:
    """Fact (b): the optimizer may be updated via the learning-rate schedule."""
    managed = getattr(obj, "managed_optimizer", None)
    if not callable(managed):
        return set()
    try:
        optimizer = managed()
    except Exception:
        return set()
    return {name for name, value in namespace.items() if value is optimizer}


def default_rules() -> list[AugmentationRule]:
    """The built-in rules encoding the paper's two PyTorch facts."""
    return [_optimizer_rule, _scheduler_rule]


_RULES.extend(default_rules())


def augment_changeset(changeset: set[str],
                      namespace: Mapping[str, object]) -> set[str]:
    """Return ``changeset`` augmented with indirectly-mutated objects.

    The augmentation iterates to a fixed point so chains resolve fully:
    a scheduler in the changeset pulls in its optimizer, which pulls in the
    model it updates.
    """
    augmented = set(changeset)
    changed = True
    while changed:
        changed = False
        for name in list(augmented):
            obj = namespace.get(name)
            if obj is None:
                continue
            for rule in _RULES:
                extra = rule(obj, namespace) - augmented
                if extra:
                    augmented |= extra
                    changed = True
    return augmented
