"""Loop discovery and per-loop side-effect analysis.

This module ties together the Table 1 rules (:mod:`repro.analysis.rules`)
and the loop-scoped filtering (:mod:`repro.analysis.scope`) into the
analysis the instrumenter consumes:

* find every loop in a script, and identify the *main loop* — the outermost
  loop that contains at least one nested loop (the epoch loop of Figure 2);
* for each loop, estimate its changeset, filter loop-scoped variables, and
  decide whether the loop is instrumentable (Rules 0 and 5 block).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .astlock import locked_parse
from .changeset import Changeset
from .rules import build_changeset
from .scope import loop_scoped_names, names_bound_before, names_read_after

__all__ = ["LoopAnalysis", "ScriptAnalysis", "analyze_loop", "analyze_script",
           "find_loops"]


@dataclass
class LoopAnalysis:
    """Result of analysing one loop."""

    node: ast.For | ast.While
    lineno: int
    end_lineno: int
    depth: int
    is_main: bool
    raw_changeset: Changeset
    loop_scoped: set[str] = field(default_factory=set)
    changeset: set[str] = field(default_factory=set)

    @property
    def instrumentable(self) -> bool:
        """Whether Flor may enclose this loop in a SkipBlock."""
        return not self.raw_changeset.blocked

    @property
    def blocking_reason(self) -> str:
        return self.raw_changeset.blocking_reason

    def explain(self) -> str:
        """Readable report mirroring Figure 6's line-by-line commentary."""
        lines = [f"loop at line {self.lineno} (depth {self.depth}"
                 f"{', main' if self.is_main else ''}):",
                 self.raw_changeset.explain()]
        if self.instrumentable:
            lines.append(f"loop-scoped (filtered): {sorted(self.loop_scoped)}")
            lines.append(f"final changeset: {sorted(self.changeset)}")
        return "\n".join(lines)


@dataclass
class ScriptAnalysis:
    """Analysis of a whole training script."""

    tree: ast.Module
    loops: list[LoopAnalysis]

    @property
    def main_loop(self) -> LoopAnalysis | None:
        for loop in self.loops:
            if loop.is_main:
                return loop
        return None

    def nested_loops(self) -> list[LoopAnalysis]:
        """Loops nested (at any depth) inside the main loop."""
        main = self.main_loop
        if main is None:
            return []
        return [loop for loop in self.loops
                if loop is not main
                and loop.lineno > main.lineno
                and loop.end_lineno <= main.end_lineno]

    def instrumentable_loops(self) -> list[LoopAnalysis]:
        return [loop for loop in self.nested_loops() if loop.instrumentable]


def find_loops(tree: ast.AST) -> list[tuple[ast.For | ast.While, int, list[ast.stmt]]]:
    """Find every for/while loop, with its nesting depth and enclosing scope body.

    Nested function and class definitions open new scopes; loops inside them
    are found too, with depth counted from their own scope.
    """
    found: list[tuple[ast.For | ast.While, int, list[ast.stmt]]] = []

    def visit(body: list[ast.stmt], depth: int, scope_body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                found.append((stmt, depth, scope_body))
                visit(stmt.body, depth + 1, scope_body)
                visit(stmt.orelse, depth + 1, scope_body)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(stmt.body, 0, stmt.body)
            elif isinstance(stmt, ast.ClassDef):
                visit(stmt.body, 0, stmt.body)
            elif isinstance(stmt, (ast.If, ast.With, ast.AsyncWith, ast.Try)):
                for field_name in ("body", "orelse", "finalbody"):
                    nested = getattr(stmt, field_name, None)
                    if nested:
                        visit(nested, depth, scope_body)
                handlers = getattr(stmt, "handlers", None)
                if handlers:
                    for handler in handlers:
                        visit(handler.body, depth, scope_body)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    visit(case.body, depth, scope_body)

    root_body = tree.body if isinstance(tree, ast.Module) else [tree]
    visit(root_body, 0, root_body)
    return found


def _contains_loop(loop: ast.For | ast.While) -> bool:
    for node in ast.walk(loop):
        if node is not loop and isinstance(node,
                                           (ast.For, ast.AsyncFor, ast.While)):
            return True
    return False


def analyze_loop(loop: ast.For | ast.While, scope_body: list[ast.stmt],
                 depth: int = 0, is_main: bool = False) -> LoopAnalysis:
    """Analyse one loop: changeset estimation + loop-scoped filtering."""
    raw = build_changeset(loop)
    analysis = LoopAnalysis(
        node=loop,
        lineno=loop.lineno,
        end_lineno=getattr(loop, "end_lineno", loop.lineno),
        depth=depth,
        is_main=is_main,
        raw_changeset=raw,
    )
    if not analysis.instrumentable:
        return analysis
    bound_before = names_bound_before(scope_body, loop)
    analysis.loop_scoped = loop_scoped_names(loop, bound_before)
    # Loop-scoped variables are filtered from the changeset — unless they are
    # read after the loop, in which case dropping them would break replay.
    read_later = names_read_after(loop, scope_body)
    analysis.changeset = (set(raw.names) - analysis.loop_scoped) | (
        set(raw.names) & analysis.loop_scoped & read_later)
    return analysis


def analyze_script(source: str) -> ScriptAnalysis:
    """Parse ``source`` and analyse every loop in it.

    The main loop is the first top-level (depth 0) loop that contains a
    nested loop — the epoch loop of the canonical training script.  If no
    loop contains a nested loop, the script has no main loop and nothing is
    eligible for SkipBlock instrumentation.
    """
    tree = locked_parse(source)
    raw_loops = find_loops(tree)

    main_node: ast.For | ast.While | None = None
    for node, depth, _scope in raw_loops:
        if depth == 0 and _contains_loop(node):
            main_node = node
            break

    analyses = [
        analyze_loop(node, scope_body, depth=depth, is_main=(node is main_node))
        for node, depth, scope_body in raw_loops
    ]
    return ScriptAnalysis(tree=tree, loops=analyses)
