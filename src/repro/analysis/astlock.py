"""A process-wide lock serializing ``ast.parse`` calls.

CPython's C-level AST constructor tracks recursion depth in state that is
not thread-safe (observed on 3.11: ``SystemError: AST constructor
recursion depth mismatch`` when several threads parse concurrently).  The
query service plans on one connection thread per client, so every
``ast.parse`` in the analysis layer takes this lock.  Parsing is
GIL-bound and fast; serializing it costs microseconds per plan.
"""

from __future__ import annotations

import ast
import threading

__all__ = ["AST_LOCK", "locked_parse"]

AST_LOCK = threading.Lock()


def locked_parse(source: str) -> ast.Module:
    """``ast.parse`` under the lock; ``SyntaxError`` propagates as usual."""
    with AST_LOCK:
        return ast.parse(source)
