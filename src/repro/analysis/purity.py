"""Probe purity: read/write-set extraction for hindsight probes.

A hindsight probe is a statement the user inserted into a recorded script
before replay.  Replay is only sound when probes *observe* the training
loop without perturbing it, so each probe statement is classified by what
it touches relative to the run's changeset (the variables the loop
mutates, per the Table-1 analysis):

``PURE_LOGGED``
    Reads only names that the run already logged (plus pure builtins).
    Such a probe can be evaluated directly from ``record.log`` — the query
    planner resolves it with **zero replay jobs**.
``PURE_STATE``
    Reads live loop state (model weights, activations, ...).  Needs
    replay, but cannot diverge it: it writes nothing the loop depends on.
``MUTATING``
    Writes, deletes, or mutates a changeset name.  Injecting it would
    invalidate the recorded trace, so it is rejected with an ``RPL001``
    diagnostic naming the offending line.

Classification is writes-based by design: a method call on a changeset
object (``net.parameters()``) is a read — the runtime library-knowledge
augmentation, not probe analysis, owns method-mutation modelling.  Only
explicit writes (``net = ...``, ``net.lr = ...``, ``del net``,
``stats[k] += ...`` where the base is a changeset name) mutate.
"""

from __future__ import annotations

import ast
import builtins
import difflib
import enum
from dataclasses import dataclass, field

from .astlock import locked_parse
from .diagnostics import Diagnostic, DiagnosticReport, Severity
from .loop_finder import analyze_script

__all__ = ["ProbeClass", "StatementFacts", "ProbeStatement", "ProbeAnalysis",
           "analyze_probe", "extract_probe_statements",
           "record_changeset_names", "statement_facts",
           "evaluate_pure_logged", "SAFE_BUILTINS"]


class ProbeClass(str, enum.Enum):
    """Probe classification, ordered by how much replay machinery it needs."""

    PURE_LOGGED = "pure_logged"
    PURE_STATE = "pure_state"
    MUTATING = "mutating"


#: Builtins a ``PURE_LOGGED`` expression may call: pure, deterministic,
#: and free of filesystem/process effects.
SAFE_BUILTINS: dict[str, object] = {
    name: getattr(builtins, name) for name in (
        "abs", "all", "any", "bool", "divmod", "enumerate", "filter",
        "float", "int", "len", "list", "map", "max", "min", "pow", "range",
        "repr", "reversed", "round", "sorted", "str", "sum", "tuple", "zip",
    )
}

#: Local names recorded scripts bind to the repro logging API.
_DEFAULT_FLOR_ALIASES = frozenset({"flor", "repro", "__flor__"})


@dataclass(frozen=True)
class StatementFacts:
    """Read/write/mutation sets of one probe statement."""

    lineno: int
    end_lineno: int
    source: str
    reads: frozenset[str]
    writes: frozenset[str]
    mutated: frozenset[str]
    is_flor_log: bool = False
    logged_name: str | None = None
    #: Source text of the logged value expression (``flor.log(name, expr)``).
    value_source: str | None = None


@dataclass
class ProbeStatement:
    """One probe statement with its facts and classification."""

    facts: StatementFacts
    classification: ProbeClass
    #: The value expression AST for ``PURE_LOGGED`` evaluation.
    value_ast: ast.expr | None = None
    diagnostic: Diagnostic | None = None


@dataclass
class ProbeAnalysis:
    """Purity analysis of every probe statement in a replay source."""

    statements: list[ProbeStatement] = field(default_factory=list)
    report: DiagnosticReport = field(default_factory=DiagnosticReport)

    @property
    def classification(self) -> ProbeClass:
        """The coarsest class across all probe statements.

        Empty probe sets are vacuously ``PURE_LOGGED`` — there is nothing
        to replay.
        """
        classes = {probe.classification for probe in self.statements}
        if ProbeClass.MUTATING in classes:
            return ProbeClass.MUTATING
        if ProbeClass.PURE_STATE in classes:
            return ProbeClass.PURE_STATE
        return ProbeClass.PURE_LOGGED

    @property
    def mutating(self) -> list[ProbeStatement]:
        return [probe for probe in self.statements
                if probe.classification is ProbeClass.MUTATING]

    def pure_logged(self) -> dict[str, ProbeStatement]:
        """``logged name -> probe`` for every ``PURE_LOGGED`` log statement."""
        return {probe.facts.logged_name: probe
                for probe in self.statements
                if probe.classification is ProbeClass.PURE_LOGGED
                and probe.facts.logged_name is not None
                and probe.value_ast is not None}


# ---------------------------------------------------------------------- #
# Probe statement extraction (record source vs. replay source)
# ---------------------------------------------------------------------- #
def _modified_new_lines(record_source: str, probe_source: str) -> set[int]:
    """1-based line numbers of ``probe_source`` that are new or changed.

    Mirrors the rstrip-normalisation of :func:`repro.replay.probe.
    diff_sources`, reimplemented here so :mod:`repro.analysis` stays
    import-cycle-free with :mod:`repro.replay`.
    """
    old = [line.rstrip() for line in record_source.splitlines()]
    new = [line.rstrip() for line in probe_source.splitlines()]
    matcher = difflib.SequenceMatcher(a=old, b=new, autojunk=False)
    modified: set[int] = set()
    for tag, _i1, _i2, j1, j2 in matcher.get_opcodes():
        if tag in ("replace", "insert"):
            modified.update(range(j1 + 1, j2 + 1))
    return modified


def _child_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for field_name in ("body", "orelse", "finalbody"):
        nested = getattr(stmt, field_name, None)
        if nested and isinstance(nested, list):
            bodies.append(nested)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    for case in getattr(stmt, "cases", []) or []:
        bodies.append(case.body)
    return bodies


def extract_probe_statements(record_source: str,
                             probe_source: str) -> list[ast.stmt]:
    """The minimal statements of ``probe_source`` the user inserted/changed.

    A statement whose header line is itself new is a probe in full (a new
    ``if`` block, say); when only lines inside a pre-existing compound
    changed, extraction descends to the smallest enclosing statements.
    """
    modified = _modified_new_lines(record_source, probe_source)
    if not modified:
        return []
    tree = locked_parse(probe_source)
    probes: list[ast.stmt] = []

    def visit(body: list[ast.stmt]) -> None:
        for stmt in body:
            start = stmt.lineno
            end = getattr(stmt, "end_lineno", start)
            if not (set(range(start, end + 1)) & modified):
                continue
            children = _child_bodies(stmt)
            if start in modified or not children:
                probes.append(stmt)
            else:
                for child in children:
                    visit(child)

    visit(tree.body)
    return probes


# ---------------------------------------------------------------------- #
# Fact extraction
# ---------------------------------------------------------------------- #
def _flor_aliases(tree: ast.Module) -> set[str]:
    """Local aliases of the repro logging module in ``tree``."""
    aliases = set(_DEFAULT_FLOR_ALIASES)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    aliases.add(alias.asname or "repro")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "repro":
                for alias in node.names:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _match_flor_log(stmt: ast.stmt,
                    flor_aliases: set[str]) -> tuple[str, ast.expr] | None:
    """Match ``flor.log("name", expr)`` and return ``(name, expr)``."""
    if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
        return None
    call = stmt.value
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "log"
            and isinstance(func.value, ast.Name)
            and func.value.id in flor_aliases):
        return None
    if len(call.args) < 2 or call.keywords:
        return None
    name_node = call.args[0]
    if not (isinstance(name_node, ast.Constant)
            and isinstance(name_node.value, str)):
        return None
    return name_node.value, call.args[1]


def _name_sets(node: ast.AST) -> tuple[set[str], set[str], set[str]]:
    """``(reads, writes, mutated)`` over every name in ``node``.

    ``writes`` are plain-name stores and deletes; ``mutated`` are the base
    names of attribute/subscript stores and deletes.  Names bound within
    the node itself (comprehension targets, walrus targets) count as
    writes and are excluded from reads.
    """
    reads: set[str] = set()
    writes: set[str] = set()
    mutated: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            if isinstance(sub.ctx, ast.Load):
                reads.add(sub.id)
            else:  # Store or Del
                writes.add(sub.id)
        elif isinstance(sub, (ast.Attribute, ast.Subscript)):
            if not isinstance(sub.ctx, ast.Load):
                base = sub.value
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                if isinstance(base, ast.Name):
                    mutated.add(base.id)
    return reads - writes, writes, mutated


def statement_facts(stmt: ast.stmt, source_lines: list[str],
                    flor_aliases: set[str] | None = None) -> StatementFacts:
    """Extract the read/write/mutation facts of one statement."""
    if flor_aliases is None:
        flor_aliases = set(_DEFAULT_FLOR_ALIASES)
    lineno = stmt.lineno
    end_lineno = getattr(stmt, "end_lineno", lineno)
    snippet = "\n".join(source_lines[lineno - 1:end_lineno]).strip() \
        if 0 < lineno <= len(source_lines) else ast.unparse(stmt)

    matched = _match_flor_log(stmt, flor_aliases)
    if matched is not None:
        logged_name, value_expr = matched
        reads, writes, mutated = _name_sets(value_expr)
        return StatementFacts(
            lineno=lineno, end_lineno=end_lineno, source=snippet,
            reads=frozenset(reads), writes=frozenset(writes),
            mutated=frozenset(mutated), is_flor_log=True,
            logged_name=logged_name, value_source=ast.unparse(value_expr))

    reads, writes, mutated = _name_sets(stmt)
    # The logging module alias itself is API plumbing, not loop state.
    return StatementFacts(
        lineno=lineno, end_lineno=end_lineno, source=snippet,
        reads=frozenset(reads - flor_aliases), writes=frozenset(writes),
        mutated=frozenset(mutated))


# ---------------------------------------------------------------------- #
# Classification
# ---------------------------------------------------------------------- #
def record_changeset_names(record_source: str) -> set[str]:
    """Every name any loop of ``record_source`` mutates (unfiltered union).

    This is the protected set for probe classification: the *raw* changesets
    of all loops, before loop-scoped filtering — a probe that rebinds even a
    loop-scoped temporary diverges the iterations that follow it.
    """
    try:
        analysis = analyze_script(record_source)
    except SyntaxError:
        return set()
    names: set[str] = set()
    for loop in analysis.loops:
        names |= set(loop.raw_changeset.names)
    return names


def _classify(facts: StatementFacts, logged_names: set[str],
              changeset_names: set[str]) -> ProbeClass:
    touched = (facts.writes | facts.mutated) & changeset_names
    if touched:
        return ProbeClass.MUTATING
    if facts.is_flor_log and facts.reads <= (logged_names
                                             | set(SAFE_BUILTINS)):
        return ProbeClass.PURE_LOGGED
    return ProbeClass.PURE_STATE


def analyze_probe(record_source: str, probe_source: str,
                  logged_names: set[str] | frozenset[str] = frozenset(),
                  changeset_names: set[str] | None = None,
                  filename: str = "<probe>") -> ProbeAnalysis:
    """Classify every probe statement ``probe_source`` adds over the record.

    ``logged_names`` are the value names the run recorded (the candidates
    a ``PURE_LOGGED`` probe may read); ``changeset_names`` defaults to the
    union the Table-1 analysis computes over ``record_source``.
    """
    if changeset_names is None:
        changeset_names = record_changeset_names(record_source)
    logged = set(logged_names)
    source_lines = probe_source.splitlines()
    try:
        statements = extract_probe_statements(record_source, probe_source)
        flor_aliases = _flor_aliases(locked_parse(probe_source))
    except SyntaxError as exc:
        report = DiagnosticReport([Diagnostic(
            code="RPL100", severity=Severity.ERROR,
            message=f"probe source does not parse: {exc.msg}",
            file=filename, line=exc.lineno or 0, col=(exc.offset or 1) - 1,
            hint="fix the syntax error before replaying")])
        return ProbeAnalysis(statements=[], report=report)

    analysis = ProbeAnalysis()
    for stmt in statements:
        facts = statement_facts(stmt, source_lines, flor_aliases)
        classification = _classify(facts, logged, changeset_names)
        probe = ProbeStatement(facts=facts, classification=classification)
        if classification is ProbeClass.PURE_LOGGED and facts.is_flor_log:
            matched = _match_flor_log(stmt, flor_aliases)
            if matched is not None:
                probe.value_ast = matched[1]
        if classification is ProbeClass.MUTATING:
            offenders = sorted((facts.writes | facts.mutated)
                               & changeset_names)
            probe.diagnostic = Diagnostic(
                code="RPL001", severity=Severity.ERROR,
                message=(f"probe writes changeset name(s) "
                         f"{', '.join(offenders)}; injecting it would "
                         f"diverge the recorded trace"),
                file=filename, line=facts.lineno,
                end_line=facts.end_lineno,
                hint="probes must only read loop state — log a derived "
                     "value instead of reassigning it",
                source_line=facts.source.splitlines()[0]
                if facts.source else "")
            analysis.report.add(probe.diagnostic)
        analysis.statements.append(probe)
    return analysis


# ---------------------------------------------------------------------- #
# PURE_LOGGED evaluation
# ---------------------------------------------------------------------- #
def evaluate_pure_logged(probe: ProbeStatement, env: dict[str, object]):
    """Evaluate a ``PURE_LOGGED`` probe's value expression against ``env``.

    ``env`` maps logged value names to their recorded values for one
    iteration.  Raises :class:`NameError`/:class:`TypeError` etc. on bad
    expressions — callers treat failures as unresolvable cells.
    """
    if probe.value_ast is None:
        raise ValueError("probe has no value expression")
    expression = ast.Expression(body=probe.value_ast)
    code = compile(ast.fix_missing_locations(expression),
                   "<pure-logged-probe>", "eval")
    return eval(code, {"__builtins__": SAFE_BUILTINS}, dict(env))
