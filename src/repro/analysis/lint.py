"""Lint orchestration: scripts, files, and already-recorded runs.

Thin composition layer over :mod:`repro.analysis.determinism` (the hazard
rules) and :mod:`repro.analysis.loop_finder` (instrumentation coverage):
one call produces the full :class:`~repro.analysis.diagnostics.
DiagnosticReport` for a source, a file on disk, or a run already in the
catalog (whose snapshotted source is pulled from its run directory).
"""

from __future__ import annotations

from pathlib import Path

from ..exceptions import FlorError
from .determinism import lint_determinism
from .diagnostics import Diagnostic, DiagnosticReport, Severity
from .loop_finder import analyze_script

__all__ = ["lint_source", "lint_path", "lint_run"]


def lint_source(source: str, filename: str = "<script>") -> DiagnosticReport:
    """Full replay-safety lint of one script source.

    Combines the ``RPL1xx`` determinism rules with ``RPL201``
    instrumentation-coverage notes (loops the Table-1 analysis refuses to
    wrap in SkipBlocks, and why).
    """
    report = lint_determinism(source, filename)
    try:
        analysis = analyze_script(source)
    except SyntaxError:
        return report  # the parse failure is already an RPL100 finding
    for loop in analysis.loops:
        if loop.instrumentable:
            continue
        reason = loop.blocking_reason or "changeset estimation blocked"
        report.add(Diagnostic(
            code="RPL201", severity=Severity.INFO,
            message=(f"loop at line {loop.lineno} is not instrumentable: "
                     f"{reason}"),
            file=filename, line=loop.lineno, end_line=loop.end_lineno,
            hint="restructure the loop body so Table-1 rules 0/5 do not "
                 "fire, or accept whole-loop re-execution on replay"))
    report.diagnostics.sort(key=lambda d: (d.line, d.col, d.code))
    return report


def lint_path(path: str | Path) -> DiagnosticReport:
    """Lint a Python file on disk."""
    path = Path(path)
    if not path.is_file():
        raise FlorError(f"lint target is not a file: {path}")
    source = path.read_text(encoding="utf-8")
    return lint_source(source, filename=str(path))


def lint_run(run_id: str, config=None) -> DiagnosticReport:
    """Lint the snapshotted source of an already-recorded run.

    ``run_id`` may be any prefix the catalog can resolve unambiguously.
    """
    from ..query.catalog import RunCatalog  # deferred: avoids package cycle

    catalog = RunCatalog.open(config)
    entries = catalog.select(runs=run_id)
    if not entries:
        raise FlorError(f"no recorded run matches {run_id!r}")
    source_path = Path(entries[0].run_dir) / "source" / "script.py"
    if not source_path.is_file():
        raise FlorError(f"run {entries[0].run_id!r} has no snapshotted "
                        f"source at {source_path}")
    source = source_path.read_text(encoding="utf-8")
    return lint_source(source, filename=f"{entries[0].run_id}:script.py")
