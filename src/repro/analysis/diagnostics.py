"""The replay-safety diagnostic model.

Every finding of the static analyzers — the determinism lint over recorded
scripts (:mod:`repro.analysis.determinism`) and the probe purity analysis
(:mod:`repro.analysis.purity`) — is reported as a :class:`Diagnostic` with a
stable ``RPL``-prefixed code, a severity, a source location, and a fix hint.
Stability matters: the CI lint gate diffs diagnostics across commits, error
messages embed codes users grep for, and per-rule suppression comments
(``# noqa: RPL101``) name codes, so codes are append-only — a rule may be
retired but its code is never reused.

Code ranges:

* ``RPL0xx`` — probe replay-safety (purity analysis).
* ``RPL1xx`` — script determinism and effect hazards (lint rules).
* ``RPL2xx`` — instrumentation coverage notes (informational).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

__all__ = ["Severity", "Diagnostic", "DiagnosticReport", "CODES",
           "code_title", "suppressed_codes"]


class Severity(str, enum.Enum):
    """Diagnostic severity, ordered ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __ge__(self, other: "Severity") -> bool:  # type: ignore[override]
        return self.rank >= _SEVERITY_RANK[Severity(other)]

    def __lt__(self, other: "Severity") -> bool:  # type: ignore[override]
        return self.rank < _SEVERITY_RANK[Severity(other)]


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


#: The diagnostic code registry: code -> short title.  Append-only.
CODES: dict[str, str] = {
    "RPL001": "probe writes a changeset name",
    "RPL100": "script does not parse",
    "RPL101": "unseeded random number generation",
    "RPL102": "wall-clock read inside a loop body",
    "RPL103": "iteration over an unordered collection",
    "RPL104": "thread or process spawn inside a loop body",
    "RPL105": "filesystem write not routed through the recorder",
    "RPL106": "network access",
    "RPL201": "loop not instrumentable",
}


def code_title(code: str) -> str:
    """The registry's short title for ``code`` (empty if unregistered)."""
    return CODES.get(code, "")


@dataclass(frozen=True)
class Diagnostic:
    """One replay-safety finding anchored to a source location."""

    code: str
    severity: Severity
    message: str
    file: str = "<script>"
    line: int = 0
    col: int = 0
    end_line: int | None = None
    end_col: int | None = None
    hint: str = ""
    #: The offending source line, for human renderers (may be empty).
    source_line: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "severity", Severity(self.severity))

    @property
    def title(self) -> str:
        return code_title(self.code)

    def with_file(self, file: str) -> "Diagnostic":
        return replace(self, file=file)

    def render(self) -> str:
        """One human-readable line: ``file:line:col: CODE severity: message``."""
        location = f"{self.file}:{self.line}:{self.col + 1}"
        text = f"{location}: {self.code} {self.severity.value}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict:
        payload = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "hint": self.hint,
        }
        if self.end_line is not None:
            payload["end_line"] = self.end_line
        if self.end_col is not None:
            payload["end_col"] = self.end_col
        if self.source_line:
            payload["source_line"] = self.source_line
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Diagnostic":
        return cls(code=payload["code"],
                   severity=Severity(payload["severity"]),
                   message=payload["message"],
                   file=payload.get("file", "<script>"),
                   line=int(payload.get("line", 0)),
                   col=int(payload.get("col", 0)),
                   end_line=payload.get("end_line"),
                   end_col=payload.get("end_col"),
                   hint=payload.get("hint", ""),
                   source_line=payload.get("source_line", ""))


@dataclass
class DiagnosticReport:
    """An ordered collection of diagnostics with renderers and filters."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "DiagnosticReport") -> "DiagnosticReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def count(self, severity: Severity | str) -> int:
        severity = Severity(severity)
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == Severity.ERROR for d in self.diagnostics)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics),
                   key=lambda s: s.rank)

    def at_least(self, severity: Severity | str) -> "DiagnosticReport":
        """A new report holding only diagnostics at or above ``severity``."""
        floor = Severity(severity)
        return DiagnosticReport([d for d in self.diagnostics
                                 if d.severity >= floor])

    def codes(self) -> list[str]:
        """The codes present, in first-occurrence order."""
        seen: list[str] = []
        for diagnostic in self.diagnostics:
            if diagnostic.code not in seen:
                seen.append(diagnostic.code)
        return seen

    # ------------------------------------------------------------------ #
    # Renderers
    # ------------------------------------------------------------------ #
    def render_text(self) -> str:
        """The human renderer: one line per finding plus a summary line."""
        lines = [diagnostic.render() for diagnostic in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        return (f"{self.count(Severity.ERROR)} error(s), "
                f"{self.count(Severity.WARNING)} warning(s), "
                f"{self.count(Severity.INFO)} note(s)")

    def to_payload(self) -> list[dict]:
        """Plain-dict rows (the shape persisted in store metadata)."""
        return [diagnostic.to_dict() for diagnostic in self.diagnostics]

    def to_json(self, indent: int | None = 2) -> str:
        """The JSON renderer: a stable document the CI gate can diff."""
        return json.dumps({
            "schema": 1,
            "summary": {
                "errors": self.count(Severity.ERROR),
                "warnings": self.count(Severity.WARNING),
                "notes": self.count(Severity.INFO),
            },
            "diagnostics": self.to_payload(),
        }, indent=indent, sort_keys=False)

    @classmethod
    def from_payload(cls, payload: Iterable[dict]) -> "DiagnosticReport":
        return cls([Diagnostic.from_dict(row) for row in payload])

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def __repr__(self) -> str:
        return f"DiagnosticReport({self.summary()})"


# ---------------------------------------------------------------------- #
# Per-rule suppression comments
# ---------------------------------------------------------------------- #
def suppressed_codes(source_line: str) -> set[str] | None:
    """Parse a suppression comment on one source line.

    Returns ``None`` when the line carries no suppression, the empty set
    for a blanket ``# noqa`` (every code suppressed), or the set of codes
    named by ``# noqa: RPL101, RPL102``.  ``# repro: noqa`` is accepted as
    a synonym so scripts also linted by flake8-style tools can scope the
    suppression to this analyzer.
    """
    lowered = source_line.lower()
    marker = None
    for candidate in ("# repro: noqa", "#repro: noqa", "# noqa", "#noqa"):
        index = lowered.find(candidate)
        if index != -1:
            marker = lowered[index + len(candidate):]
            break
    if marker is None:
        return None
    marker = marker.strip()
    if not marker.startswith(":"):
        return set()  # blanket suppression
    codes = {token.strip().upper() for token in marker[1:].split(",")}
    return {code for code in codes if code}


def filter_suppressed(diagnostics: Iterable[Diagnostic],
                      source_lines: list[str]) -> list[Diagnostic]:
    """Drop diagnostics suppressed by a comment on their own source line."""
    kept: list[Diagnostic] = []
    for diagnostic in diagnostics:
        if 1 <= diagnostic.line <= len(source_lines):
            codes = suppressed_codes(source_lines[diagnostic.line - 1])
            if codes is not None and (not codes or diagnostic.code in codes):
                continue
        kept.append(diagnostic)
    return kept
