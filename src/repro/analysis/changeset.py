"""Changeset bookkeeping for static side-effect analysis.

A *changeset* is the set of variable names a loop may modify (Section 5.2.1).
Flor estimates it by interpreting each statement of the loop body through
the rules of Table 1; this module holds the mutable accumulator those rules
write into, together with enough provenance (which rule fired on which line)
to explain the final result — the line-by-line commentary of Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RuleApplication", "Changeset"]


@dataclass(frozen=True)
class RuleApplication:
    """Record of one Table 1 rule firing on one program statement."""

    rule: int
    lineno: int
    delta: frozenset[str]
    blocking: bool = False
    reason: str = ""

    def __str__(self) -> str:
        if self.blocking:
            return f"line {self.lineno}: rule {self.rule} (blocking: {self.reason})"
        names = ", ".join(sorted(self.delta)) or "∅"
        return f"line {self.lineno}: rule {self.rule} adds {{{names}}}"


@dataclass
class Changeset:
    """Accumulated changeset for one loop, with provenance."""

    names: set[str] = field(default_factory=set)
    applications: list[RuleApplication] = field(default_factory=list)
    blocked: bool = False
    blocking_reason: str = ""

    def apply(self, application: RuleApplication) -> None:
        """Record a rule application and fold its delta into the changeset."""
        self.applications.append(application)
        if application.blocking:
            self.blocked = True
            if not self.blocking_reason:
                self.blocking_reason = (
                    f"rule {application.rule} at line {application.lineno}: "
                    f"{application.reason}")
            return
        self.names.update(application.delta)

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def copy(self) -> "Changeset":
        duplicate = Changeset(names=set(self.names),
                              applications=list(self.applications),
                              blocked=self.blocked,
                              blocking_reason=self.blocking_reason)
        return duplicate

    def explain(self) -> str:
        """Human-readable trace of how the changeset was built."""
        lines = [str(app) for app in self.applications]
        if self.blocked:
            lines.append(f"=> loop not instrumentable ({self.blocking_reason})")
        else:
            names = ", ".join(sorted(self.names)) or "∅"
            lines.append(f"=> changeset {{{names}}}")
        return "\n".join(lines)
