"""Determinism lint over recorded scripts and probe sources.

Hindsight replay re-executes a stored script from checkpoints and trusts
that the same epoch produces the same values.  That trust is void when the
script consults an unseeded RNG, the wall clock, unordered-collection
iteration order, or spawns threads inside the training loop — all hazards
that are invisible at record time and only surface as silently-wrong probe
values at replay time.  This module walks the script AST once and reports
each hazard as an ``RPL1xx`` :class:`~repro.analysis.diagnostics.Diagnostic`.

The lint is syntactic and import-alias aware: ``import numpy as np`` makes
``np.random.random()`` canonicalize to ``numpy.random.random`` before rule
matching, and ``from numpy.random import default_rng`` resolves the bare
call the same way.  Findings are suppressible per line with ``# noqa`` /
``# noqa: RPL101`` comments (see :func:`~repro.analysis.diagnostics.
suppressed_codes`).
"""

from __future__ import annotations

import ast

from .astlock import locked_parse
from .diagnostics import Diagnostic, DiagnosticReport, Severity, \
    filter_suppressed

__all__ = ["lint_determinism"]


# ---------------------------------------------------------------------- #
# Canonical call-name tables
# ---------------------------------------------------------------------- #
#: Global-RNG draw functions: nondeterministic unless a seed call for the
#: same generator family appears earlier in the script.
_GLOBAL_RNG_CALLS = {
    "random.random", "random.randint", "random.randrange", "random.uniform",
    "random.choice", "random.choices", "random.sample", "random.shuffle",
    "random.gauss", "random.normalvariate", "random.betavariate",
    "numpy.random.random", "numpy.random.rand", "numpy.random.randn",
    "numpy.random.randint", "numpy.random.uniform", "numpy.random.choice",
    "numpy.random.normal", "numpy.random.permutation",
    "numpy.random.shuffle", "numpy.random.random_sample",
    "torch.rand", "torch.randn", "torch.randint", "torch.randperm",
}

#: Seed calls, keyed by the generator family they pacify.
_SEED_CALLS = {
    "random.seed": "random",
    "numpy.random.seed": "numpy.random",
    "torch.manual_seed": "torch",
    "torch.cuda.manual_seed": "torch",
    "torch.cuda.manual_seed_all": "torch",
}

_RNG_FAMILY = {}
for _name in _GLOBAL_RNG_CALLS:
    for _family in ("numpy.random", "random", "torch"):
        if _name.startswith(_family + "."):
            _RNG_FAMILY[_name] = _family
            break

#: Constructors that yield a fresh generator: nondeterministic only when
#: called with no positional seed argument.
_RNG_CONSTRUCTORS = {
    "random.Random", "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.Generator",
}

#: Wall-clock reads.  ``time.sleep`` is deliberately absent: sleeping
#: changes timing, not values, and recorded test workloads use it to
#: simulate compute.
_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.clock_gettime", "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
}

#: Thread/process spawns — hazardous inside loop bodies, where replay
#: partitions iterations across workers.
_SPAWN_ROOTS = ("threading.", "multiprocessing.", "concurrent.futures.")

#: Filesystem mutations outside the recorder's own stores.
_FS_CALLS = {
    "os.remove", "os.unlink", "os.rename", "os.replace", "os.rmdir",
    "os.makedirs", "os.mkdir", "shutil.rmtree", "shutil.copy",
    "shutil.copy2", "shutil.copyfile", "shutil.move",
}
_FS_METHODS = {"write_text", "write_bytes", "unlink", "rmdir", "touch"}

#: Network access roots.
_NET_ROOTS = ("socket.", "urllib.", "requests.", "http.client.")

_WRITE_MODE_CHARS = set("wax+")


def _has_write_mode(call: ast.Call) -> bool:
    """True when an ``open(...)`` call requests a writable mode."""
    mode_node = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return False  # default "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return bool(set(mode_node.value) & _WRITE_MODE_CHARS)
    return True  # dynamic mode: assume writable


class _ImportTable:
    """Maps local names to canonical dotted module/attribute paths."""

    def __init__(self) -> None:
        self._aliases: dict[str, str] = {}

    def record(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                canonical = alias.name if alias.asname else local
                self._aliases[local] = canonical
        elif node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self._aliases[local] = f"{node.module}.{alias.name}"

    def canonical_call_name(self, func: ast.expr) -> str | None:
        """The canonical dotted name of a call target, or ``None``."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self._aliases.get(parts[0], parts[0])
        return ".".join([head] + parts[1:])


class _DeterminismLinter(ast.NodeVisitor):
    def __init__(self, filename: str, source_lines: list[str]) -> None:
        self.filename = filename
        self.source_lines = source_lines
        self.imports = _ImportTable()
        self.seeded_families: set[str] = set()
        self.loop_depth = 0
        self.diagnostics: list[Diagnostic] = []

    # ------------------------------------------------------------------ #
    def _source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1].rstrip()
        return ""

    def _report(self, node: ast.AST, code: str, severity: Severity,
                message: str, hint: str) -> None:
        self.diagnostics.append(Diagnostic(
            code=code, severity=severity, message=message,
            file=self.filename, line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            end_line=getattr(node, "end_lineno", None),
            end_col=getattr(node, "end_col_offset", None),
            hint=hint,
            source_line=self._source_line(getattr(node, "lineno", 0))))

    # ------------------------------------------------------------------ #
    # Imports and seeding state
    # ------------------------------------------------------------------ #
    def visit_Import(self, node: ast.Import) -> None:
        self.imports.record(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.record(node)

    # ------------------------------------------------------------------ #
    # Loops
    # ------------------------------------------------------------------ #
    def _visit_loop(self, node: ast.For | ast.AsyncFor | ast.While) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_iteration_source(node.iter)
            self.visit(node.iter)
            self.visit(node.target)
        else:
            self.visit(node.test)
        self.loop_depth += 1
        for child in node.body:
            self.visit(child)
        self.loop_depth -= 1
        for child in node.orelse:
            self.visit(child)

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def _check_iteration_source(self, iter_node: ast.expr) -> None:
        if isinstance(iter_node, ast.Set):
            self._report(iter_node, "RPL103", Severity.WARNING,
                         "iteration over a set literal has no stable order "
                         "across processes",
                         "iterate a sorted() or list-valued collection")
            return
        if isinstance(iter_node, ast.Call):
            name = self.imports.canonical_call_name(iter_node.func)
            if name in {"set", "frozenset"}:
                self._report(iter_node, "RPL103", Severity.WARNING,
                             f"iteration over {name}() has no stable order "
                             "across processes",
                             "sort the collection before iterating")
                return
        name = self._dotted_name(iter_node)
        if name == "os.environ":
            self._report(iter_node, "RPL103", Severity.WARNING,
                         "iteration over os.environ depends on the ambient "
                         "environment, which replay does not restore",
                         "snapshot the variables you need into the script")

    def _dotted_name(self, node: ast.expr) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        return ".".join(reversed(parts))

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        name = self.imports.canonical_call_name(node.func)
        if name is not None:
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        family = _SEED_CALLS.get(name)
        if family is not None:
            self.seeded_families.add(family)
            return
        if name in _GLOBAL_RNG_CALLS:
            family = _RNG_FAMILY[name]
            if family not in self.seeded_families:
                self._report(
                    node, "RPL101", Severity.ERROR,
                    f"{name}() draws from an unseeded global generator; "
                    "replayed iterations will see different values",
                    f"call {family}.seed(...) (or manual_seed) before the "
                    "first draw, or use a seeded Generator instance")
            return
        if name in _RNG_CONSTRUCTORS:
            if not node.args and not node.keywords:
                self._report(
                    node, "RPL101", Severity.ERROR,
                    f"{name}() without a seed argument produces a "
                    "nondeterministic generator",
                    "pass an explicit integer seed")
            return
        if name in _CLOCK_CALLS:
            severity = (Severity.WARNING if self.loop_depth > 0
                        else Severity.INFO)
            where = ("inside a loop body" if self.loop_depth > 0
                     else "at module level")
            self._report(
                node, "RPL102", severity,
                f"{name}() reads the wall clock {where}; replayed "
                "iterations observe a different clock",
                "log the timestamp at record time instead of re-reading it")
            return
        if name.startswith(_SPAWN_ROOTS):
            if self.loop_depth > 0:
                self._report(
                    node, "RPL104", Severity.WARNING,
                    f"{name}() spawns concurrent work inside a loop body; "
                    "replay partitions iterations across workers and cannot "
                    "reproduce cross-thread interleavings",
                    "hoist concurrency out of the training loop")
            return
        if name in _FS_CALLS:
            self._report(
                node, "RPL105", Severity.WARNING,
                f"{name}() mutates the filesystem outside the recorder; "
                "replay re-runs the mutation against current files",
                "route artifacts through flor.log / checkpointing")
            return
        if name == "open" and _has_write_mode(node):
            self._report(
                node, "RPL105", Severity.WARNING,
                "open() with a write mode mutates the filesystem outside "
                "the recorder; replay re-runs the write",
                "route artifacts through flor.log / checkpointing")
            return
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _FS_METHODS and \
                self._dotted_name(node.func) is None:
            # Method on a computed object (e.g. Path(...).write_text)
            self._report(
                node, "RPL105", Severity.WARNING,
                f".{node.func.attr}() mutates the filesystem outside the "
                "recorder; replay re-runs the mutation",
                "route artifacts through flor.log / checkpointing")
            return
        if name.startswith(_NET_ROOTS):
            self._report(
                node, "RPL106", Severity.WARNING,
                f"{name}() performs network access; replayed runs observe "
                "different remote state",
                "fetch data before recording and read it from disk")


def lint_determinism(source: str,
                     filename: str = "<script>") -> DiagnosticReport:
    """Lint ``source`` for nondeterminism and effect hazards.

    Returns a :class:`DiagnosticReport` of ``RPL1xx`` findings with
    ``# noqa`` suppressions already applied.  Raises nothing on syntax
    errors — an unparseable script is reported as a single error-severity
    diagnostic so callers need not special-case it.
    """
    source_lines = source.splitlines()
    try:
        tree = locked_parse(source)
    except SyntaxError as exc:
        return DiagnosticReport([Diagnostic(
            code="RPL100", severity=Severity.ERROR,
            message=f"script does not parse: {exc.msg}",
            file=filename, line=exc.lineno or 0,
            col=(exc.offset or 1) - 1,
            hint="fix the syntax error before linting")])
    linter = _DeterminismLinter(filename, source_lines)
    linter.visit(tree)
    kept = filter_suppressed(linter.diagnostics, source_lines)
    kept.sort(key=lambda d: (d.line, d.col, d.code))
    return DiagnosticReport(kept)
