"""Scope helpers: which names are bound where.

Lean checkpointing filters *loop-scoped* variables out of a loop's changeset
(Section 5.2.1): a variable first bound inside the loop body is assumed to be
local to the loop and not read after it, so checkpointing it would only add
overhead.  Deciding "first bound inside the loop" requires knowing which
names were already bound before the loop in the enclosing scope — this
module computes both sides of that comparison.
"""

from __future__ import annotations

import ast

__all__ = ["bound_names", "names_bound_before", "loop_scoped_names",
           "names_read_after", "pattern_names"]


def bound_names(node: ast.AST) -> set[str]:
    """All names bound by assignments/imports/defs within ``node`` (recursive,
    but not descending into nested function or class definitions).

    Statements are processed in program order so that ``del`` unbinds: a
    name assigned and later deleted is not reported bound.  Walrus
    (``:=``) targets count as bindings wherever the expression appears.
    """
    names: set[str] = set()
    for stmt in _walk_statements(node):
        names |= _names_bound_by(stmt)
        names -= _names_deleted_by(stmt)
    return names


def _walk_statements(node: ast.AST):
    """Yield statements nested under ``node`` in program order, without
    entering new scopes (nested function/class definitions)."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                         ast.Module)):
        body = node.body
    elif isinstance(node, list):
        body = node
    else:
        body = getattr(node, "body", [])
    yield from _walk_body(body)


def _walk_body(body: list[ast.stmt]):
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue  # new scope: its internal bindings are not ours
        for field_name in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, field_name, None)
            if nested:
                yield from _walk_body(nested)
        for handler in getattr(stmt, "handlers", None) or []:
            yield from _walk_body(handler.body)
        for case in getattr(stmt, "cases", None) or []:
            yield from _walk_body(case.body)


def _names_bound_by(stmt: ast.stmt) -> set[str]:
    """Names directly bound by one statement (including walrus targets in
    any of its own expressions)."""
    names: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names |= _target_plain_names(target)
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        names |= _target_plain_names(stmt.target)
    elif isinstance(stmt, ast.AugAssign):
        names |= _target_plain_names(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names |= _target_plain_names(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names |= _target_plain_names(item.optional_vars)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            names.add((alias.asname or alias.name).split(".")[0])
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.add(stmt.name)
    elif isinstance(stmt, ast.Match):
        for case in stmt.cases:
            names |= pattern_names(case.pattern)
    return names | _walrus_names(stmt)


def _names_deleted_by(stmt: ast.stmt) -> set[str]:
    """Plain names a ``del`` statement unbinds (attribute/subscript deletes
    mutate their base object and unbind nothing)."""
    if not isinstance(stmt, ast.Delete):
        return set()
    names: set[str] = set()
    for target in stmt.targets:
        if isinstance(target, ast.Name):
            names.add(target.id)
    return names


def _walrus_names(stmt: ast.stmt) -> set[str]:
    """Walrus (``ast.NamedExpr``) targets in the statement's own expressions.

    Per PEP 572 a walrus inside a comprehension binds in the containing
    scope, so comprehensions are descended; ``lambda`` bodies open their
    own scope and are skipped.  Nested statement bodies are not visited —
    the statement walk yields those statements separately.
    """
    names: set[str] = set()
    stack: list[ast.AST] = []
    for _field, value in ast.iter_fields(stmt):
        values = value if isinstance(value, list) else [value]
        stack.extend(v for v in values if isinstance(v, ast.expr))
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.NamedExpr):
            names |= _target_plain_names(node.target)
        stack.extend(ast.iter_child_nodes(node))
    return names


def pattern_names(pattern: ast.AST) -> set[str]:
    """Names a ``match`` case pattern captures (``MatchAs``/``MatchStar``
    bindings and ``MatchMapping`` rest targets, at any nesting depth)."""
    names: set[str] = set()
    for node in ast.walk(pattern):
        if isinstance(node, (ast.MatchAs, ast.MatchStar)) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.MatchMapping) and node.rest:
            names.add(node.rest)
    return names


def _target_plain_names(target: ast.expr) -> set[str]:
    names: set[str] = set()
    nodes = [target]
    while nodes:
        node = nodes.pop()
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            nodes.extend(node.elts)
        elif isinstance(node, ast.Starred):
            nodes.append(node.value)
        # attribute/subscript targets mutate existing objects; they bind nothing
    return names


def names_bound_before(scope_body: list[ast.stmt], stop: ast.stmt) -> set[str]:
    """Names bound by statements of ``scope_body`` before ``stop`` appears.

    ``stop`` must be reachable from ``scope_body`` (possibly nested); binding
    statements are collected in program order until ``stop`` is encountered.
    A ``del`` before ``stop`` unbinds: a name deleted ahead of a loop is
    *not* bound-before, so a loop that rebinds it correctly treats it as
    loop-scoped.
    """
    names: set[str] = set()
    _collect_until(scope_body, stop, names)
    return names


def _collect_until(body: list[ast.stmt], stop: ast.stmt, names: set[str]) -> bool:
    for stmt in body:
        if stmt is stop:
            return True
        names |= _names_bound_by(stmt)
        names -= _names_deleted_by(stmt)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, field_name, None)
            if nested and _collect_until(nested, stop, names):
                return True
        for handler in getattr(stmt, "handlers", None) or []:
            if _collect_until(handler.body, stop, names):
                return True
        for case in getattr(stmt, "cases", None) or []:
            if _collect_until(case.body, stop, names):
                return True
    return False


def names_read_after(loop: ast.For | ast.While,
                     scope_body: list[ast.stmt]) -> set[str]:
    """Names *read* anywhere after ``loop`` in its enclosing scope.

    The paper filters loop-scoped variables under the assumption that they
    are "not read after the end of the loop".  When a script violates that
    assumption (for example it logs the last batch's ``loss`` right after
    the training loop), dropping the variable from the checkpoint would make
    partial replay crash.  This reproduction therefore keeps loop-scoped
    variables that are read later — detected here by collecting every
    ``Name`` load that appears after the loop's last line in the same scope.
    """
    end_line = getattr(loop, "end_lineno", loop.lineno)
    reads: set[str] = set()
    for stmt in _walk_statements(scope_body):
        if getattr(stmt, "lineno", 0) <= end_line:
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                reads.add(node.id)
    return reads


def loop_scoped_names(loop: ast.For | ast.While,
                      bound_before_loop: set[str]) -> set[str]:
    """Names first bound inside ``loop`` (the variables lean checkpointing drops).

    A name is loop-scoped when it is bound somewhere in the loop body (or is
    the loop target itself) and was *not* already bound before the loop in
    the enclosing scope.
    """
    inside: set[str] = set()
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        inside |= _target_plain_names(loop.target)
    for stmt in _walk_statements(loop.body):
        inside |= _names_bound_by(stmt)
    return {name for name in inside if name not in bound_before_loop}
