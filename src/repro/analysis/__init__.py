"""Static side-effect analysis and automatic instrumentation (Section 5.2).

The pipeline is: ``rules`` (Table 1) -> ``changeset`` accumulation ->
``scope`` filtering of loop-scoped variables -> runtime ``augmentation``
with library knowledge -> ``instrument`` (SkipBlocks + Flor generator).

On top of that pipeline sits the replay-safety layer: ``diagnostics``
(the stable RPL-coded finding model), ``determinism`` (nondeterminism and
effect-hazard lint over recorded scripts), ``purity`` (read/write-set
classification of hindsight probes), and ``lint`` (orchestration over
sources, files, and recorded runs).
"""

from .augmentation import (augment_changeset, clear_augmentation_rules,
                           default_rules, register_augmentation_rule)
from .changeset import Changeset, RuleApplication
from .determinism import lint_determinism
from .diagnostics import (CODES, Diagnostic, DiagnosticReport, Severity,
                          code_title, suppressed_codes)
from .instrument import (BlockSpec, FLOR_MODULE_ALIAS, InstrumentationResult,
                         instrument_source)
from .lint import lint_path, lint_run, lint_source
from .loop_finder import (LoopAnalysis, ScriptAnalysis, analyze_loop,
                          analyze_script, find_loops)
from .purity import (ProbeAnalysis, ProbeClass, ProbeStatement,
                     SAFE_BUILTINS, StatementFacts, analyze_probe,
                     evaluate_pure_logged, extract_probe_statements,
                     record_changeset_names, statement_facts)
from .rules import apply_rules_to_statement, build_changeset
from .scope import bound_names, loop_scoped_names, names_bound_before

__all__ = [
    "RuleApplication", "Changeset",
    "apply_rules_to_statement", "build_changeset",
    "bound_names", "names_bound_before", "loop_scoped_names",
    "LoopAnalysis", "ScriptAnalysis", "analyze_loop", "analyze_script",
    "find_loops",
    "augment_changeset", "register_augmentation_rule",
    "clear_augmentation_rules", "default_rules",
    "BlockSpec", "InstrumentationResult", "instrument_source",
    "FLOR_MODULE_ALIAS",
    "CODES", "Diagnostic", "DiagnosticReport", "Severity", "code_title",
    "suppressed_codes", "lint_determinism", "lint_source", "lint_path",
    "lint_run",
    "ProbeAnalysis", "ProbeClass", "ProbeStatement", "StatementFacts",
    "SAFE_BUILTINS", "analyze_probe", "evaluate_pure_logged",
    "extract_probe_statements", "record_changeset_names", "statement_facts",
]
