"""Static side-effect analysis and automatic instrumentation (Section 5.2).

The pipeline is: ``rules`` (Table 1) -> ``changeset`` accumulation ->
``scope`` filtering of loop-scoped variables -> runtime ``augmentation``
with library knowledge -> ``instrument`` (SkipBlocks + Flor generator).
"""

from .augmentation import (augment_changeset, clear_augmentation_rules,
                           default_rules, register_augmentation_rule)
from .changeset import Changeset, RuleApplication
from .instrument import (BlockSpec, FLOR_MODULE_ALIAS, InstrumentationResult,
                         instrument_source)
from .loop_finder import (LoopAnalysis, ScriptAnalysis, analyze_loop,
                          analyze_script, find_loops)
from .rules import apply_rules_to_statement, build_changeset
from .scope import bound_names, loop_scoped_names, names_bound_before

__all__ = [
    "RuleApplication", "Changeset",
    "apply_rules_to_statement", "build_changeset",
    "bound_names", "names_bound_before", "loop_scoped_names",
    "LoopAnalysis", "ScriptAnalysis", "analyze_loop", "analyze_script",
    "find_loops",
    "augment_changeset", "register_augmentation_rule",
    "clear_augmentation_rules", "default_rules",
    "BlockSpec", "InstrumentationResult", "instrument_source",
    "FLOR_MODULE_ALIAS",
]
