"""Multi-tenant hindsight query service.

The record/replay split made queryable (the roadmap's HTAP analogy):
training jobs record at full speed in their own processes, while a
long-lived daemon (``python -m repro.serve``) owns the run catalog and
ONE bounded replay worker pool, and answers concurrent ``query`` /
``explain`` / ``diff`` requests from many tenants — with admission
control, per-tenant fair scheduling, in-flight dedup of identical
queries, and incremental result streaming.

* :mod:`repro.service.protocol` — length-prefixed JSON wire format and
  the typed error-code contract,
* :mod:`repro.service.scheduler` — weighted round-robin replay-job
  scheduling on one process pool,
* :mod:`repro.service.server` — the daemon: admission, dedup registry,
  streaming executions, graceful drain,
* :mod:`repro.service.client` — ``repro.connect(addr)``, with
  retry/backoff and library-parity results.
"""

from .client import ServiceClient, connect
from .protocol import ERROR_CODES, PROTOCOL_VERSION, ProtocolError
from .scheduler import FairReplayPool, JobTicket, LedgerEntry
from .server import Execution, QueryService

__all__ = ["ServiceClient", "connect", "QueryService", "Execution",
           "FairReplayPool", "JobTicket", "LedgerEntry", "ProtocolError",
           "ERROR_CODES", "PROTOCOL_VERSION"]
