"""Wire protocol of the hindsight query service.

Deliberately trivial, stdlib-only framing: every message is a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.  A
request is one frame; a response is a *stream* of frames ending in a
``result`` or ``error`` frame, so partial query batches can flow to the
client while replay spans are still executing.  No protocol negotiation,
no compression, no pipelining — one request per connection keeps client
failure containment exact (a killed client costs the server one EBADF).

Requests::

    {"v": 1, "op": "query", "id": "<request id>", "client": "<tenant id>",
     "params": {...}}

Response frames::

    {"type": "batch",  "id": ..., "seq": 0, "rows": [[run, it, name,
                                                      value, source], ...]}
    {"type": "result", "id": ..., ...op-specific payload...}
    {"type": "error",  "id": ..., "code": "SERVICE_BUSY",
     "message": "...", "retry_after": 0.25}

Error codes are part of the contract (``docs/api.md``): ``SERVICE_BUSY``
(admission queue full — retry after the hint), ``SHUTTING_DOWN`` (daemon
draining — do not retry here), ``BAD_REQUEST`` (malformed frame or
params), ``UNSUPPORTED_OP``, ``QUERY`` (planner/replay error — the
message carries the library exception text), ``INTERNAL``.

``iterations`` travels as JSON cannot carry a ``slice``: an int stays an
int, a list stays a list, ``None`` stays ``null``, and a slice becomes
``{"slice": [start, stop, step]}``.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from ..exceptions import ServiceError

__all__ = ["PROTOCOL_VERSION", "MAX_FRAME_BYTES", "ERROR_CODES",
           "ProtocolError", "read_frame", "write_frame",
           "encode_iterations", "decode_iterations", "encode_rows",
           "decode_rows", "validate_request"]

#: Wire schema version carried in every request.
PROTOCOL_VERSION = 1

#: Upper bound on one frame; a larger announced length is a protocol
#: error (it is either corruption or abuse, not a real query).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: The error-code contract, in rough order of how often clients see them.
ERROR_CODES = ("SERVICE_BUSY", "SHUTTING_DOWN", "BAD_REQUEST",
               "UNSUPPORTED_OP", "QUERY", "INTERNAL")

#: Ops the service answers.
KNOWN_OPS = ("ping", "query", "explain", "diff")

_LENGTH = struct.Struct(">I")


class ProtocolError(ServiceError):
    """A malformed frame, oversized length, or invalid request shape."""

    def __init__(self, message: str):
        super().__init__(message, code="BAD_REQUEST")


# --------------------------------------------------------------------------- #
# Framing
# --------------------------------------------------------------------------- #
def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on clean EOF at a frame edge."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> dict | None:
    """Read one length-prefixed JSON frame; None on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "limit")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed between length and body")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(payload).__name__}")
    return payload


def write_frame(sock: socket.socket, payload: dict) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    sock.sendall(_LENGTH.pack(len(body)) + body)


# --------------------------------------------------------------------------- #
# Parameter and row codecs
# --------------------------------------------------------------------------- #
def encode_iterations(iterations: Any) -> Any:
    """JSON-encode a query ``iterations`` argument (slice-aware)."""
    if isinstance(iterations, slice):
        return {"slice": [iterations.start, iterations.stop,
                          iterations.step]}
    if iterations is None or isinstance(iterations, int):
        return iterations
    return [int(index) for index in iterations]


def decode_iterations(payload: Any) -> Any:
    """Inverse of :func:`encode_iterations`."""
    if isinstance(payload, dict):
        parts = payload.get("slice")
        if (not isinstance(parts, list) or len(parts) != 3
                or any(part is not None and not isinstance(part, int)
                       for part in parts)):
            raise ProtocolError(
                f"bad iterations payload: {payload!r} (expected "
                '{"slice": [start, stop, step]})')
        return slice(*parts)
    if payload is None or isinstance(payload, int):
        return payload
    if isinstance(payload, list):
        return [int(index) for index in payload]
    raise ProtocolError(f"bad iterations payload: {payload!r}")


def encode_rows(rows) -> list[list]:
    """Compact a batch of :class:`QueryRow` for the wire."""
    return [[row.run_id, row.iteration, row.name, row.value, row.source]
            for row in rows]


def decode_rows(payload: list) -> list:
    """Inverse of :func:`encode_rows`, back to :class:`QueryRow`."""
    from ..query.dataframe import QueryRow
    rows = []
    for entry in payload:
        if not isinstance(entry, list) or len(entry) != 5:
            raise ProtocolError(f"bad row payload: {entry!r}")
        run_id, iteration, name, value, source = entry
        rows.append(QueryRow(run_id=str(run_id), iteration=int(iteration),
                             name=str(name), value=value,
                             source=str(source)))
    return rows


# --------------------------------------------------------------------------- #
# Request validation
# --------------------------------------------------------------------------- #
def validate_request(payload: dict) -> tuple[str, str, str, dict]:
    """Check a request frame's shape; returns (op, id, client, params).

    Raises :class:`ProtocolError` on anything malformed, with a message
    precise enough for the client to fix the request.  Unknown *ops* are
    accepted here (the server answers ``UNSUPPORTED_OP`` so the client
    learns the op name was the problem, not the frame).
    """
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} (this server "
            f"speaks v{PROTOCOL_VERSION})")
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request is missing the 'op' string")
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request is missing the 'id' string")
    client = payload.get("client")
    if not isinstance(client, str) or not client:
        raise ProtocolError("request is missing the 'client' string")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("request 'params' must be an object")
    return op, request_id, client, params
