"""The multi-tenant hindsight query daemon.

One process owns the run catalog, the storage-backed memo plane, and ONE
bounded replay worker pool, and answers concurrent ``query`` / ``explain``
/ ``diff`` requests over the length-prefixed JSON protocol
(:mod:`repro.service.protocol`).  The HTAP split the roadmap asks for:
training jobs keep recording at full speed (the record path never goes
through this daemon), while analytical hindsight queries from many
notebooks land here and share replay work instead of each spinning up a
private engine.

Concurrency model, per request:

1. **Admission control** — a bounded in-flight counter
   (``FlorConfig.service_queue_size``).  A full queue answers a typed
   ``SERVICE_BUSY`` error with a ``retry_after`` hint (an EWMA of recent
   request durations) instead of queueing unboundedly or hanging.
2. **Planning inline** — the connection thread runs the ordinary
   :func:`~repro.query.api.prepare_query` planner; plan errors surface
   immediately as ``QUERY`` errors.
3. **In-flight dedup** — the prepared query's
   :meth:`~repro.query.api.PreparedQuery.dedup_digest` keys a registry of
   running executions.  An identical concurrent query *attaches* to the
   running execution instead of re-executing: already-published batches
   are replayed to the late subscriber, then both stream live.  The
   replay-job ledger shows exactly one set of jobs.
4. **Fair execution** — replay spans go to the shared
   :class:`~repro.service.scheduler.FairReplayPool` under the requesting
   tenant's client id; weighted round-robin keeps one tenant's large
   query from starving another's small one.
5. **Incremental streaming** — planner-resolved rows flow as the first
   batch before any replay lands; each finished span's rows follow as
   their own batch; the terminal frame carries the full
   :class:`~repro.query.dataframe.QueryStats`.  A subscriber whose socket
   dies is detached; the execution continues for the other subscribers.

``diff`` runs inline in the connection thread (its internal probe queries
manage their own replay pools) — it participates in admission control but
not in span-level fair scheduling; the docs call this out.

Graceful drain: :meth:`QueryService.shutdown` flips the daemon into
draining (new work refused with ``SHUTTING_DOWN``, ``ping`` still
answers), waits for admitted requests to finish, then closes the listener
and the worker pool.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
import traceback

from .. import telemetry
from ..config import FlorConfig, get_config
from ..exceptions import QueryError, ServiceError
from ..query.api import (PreparedQuery, assemble_result, planned_rows,
                         prepare_query, replay_rows)
from ..query.catalog import RunCatalog
from ..query.diff import diff as run_diff
from ..query.executor import build_span_specs, outcome_from_results
from ..query.explain import explain as run_explain
from ..utils.timing import monotonic
from .protocol import (KNOWN_OPS, ProtocolError, decode_iterations,
                       encode_rows, read_frame, validate_request,
                       write_frame)
from .scheduler import FairReplayPool

__all__ = ["Execution", "QueryService"]


class Execution:
    """One running query execution, shared by every attached subscriber.

    Frames are published as tuples — ``("batch", seq, rows)``,
    ``("result", stats_payload)``, ``("error", code, message)`` — into
    each subscriber's queue.  Batches published before a subscriber
    attaches are replayed to it, so a deduped late-comer sees the full
    stream.
    """

    def __init__(self, digest: str):
        self.digest = digest
        self._lock = threading.Lock()
        self._batches: list[tuple] = []
        self._subscribers: list[queue.Queue] = []
        self._terminal: tuple | None = None
        self._seq = 0

    def attach(self) -> queue.Queue:
        subscriber: queue.Queue = queue.Queue()
        with self._lock:
            for item in self._batches:
                subscriber.put(item)
            if self._terminal is not None:
                subscriber.put(self._terminal)
            else:
                self._subscribers.append(subscriber)
        return subscriber

    def detach(self, subscriber: queue.Queue) -> None:
        with self._lock:
            try:
                self._subscribers.remove(subscriber)
            except ValueError:
                pass

    def publish_batch(self, rows: list[list]) -> None:
        if not rows:
            return
        with self._lock:
            item = ("batch", self._seq, rows)
            self._seq += 1
            self._batches.append(item)
            for subscriber in self._subscribers:
                subscriber.put(item)

    def finish(self, stats_payload: dict) -> None:
        self._terminate(("result", stats_payload))

    def fail(self, code: str, message: str) -> None:
        self._terminate(("error", code, message))

    def _terminate(self, item: tuple) -> None:
        with self._lock:
            self._terminal = item
            for subscriber in self._subscribers:
                subscriber.put(item)
            self._subscribers.clear()

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)


class QueryService:
    """The daemon: listener, admission control, dedup registry, fair pool."""

    def __init__(self, config: FlorConfig | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 socket_path: str | None = None,
                 workers: int | None = None,
                 queue_size: int | None = None,
                 runner=None):
        self.config = config or get_config()
        telemetry.enable_from_config(self.config)
        self.queue_size = (queue_size if queue_size is not None
                           else self.config.service_queue_size)
        self.catalog = RunCatalog.open(self.config)
        self.pool = FairReplayPool(self.config, workers=workers,
                                   runner=runner)
        self._socket_path = socket_path
        self._host, self._port = host, port
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._admit_lock = threading.Lock()
        self._admitted = 0
        self._request_ewma = 0.25
        self._exec_lock = threading.Lock()
        self._executions: dict[str, Execution] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "QueryService":
        """Bind, listen, and start accepting connections."""
        if self._socket_path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                os.unlink(self._socket_path)
            except OSError:
                pass
            listener.bind(self._socket_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            self._host, self._port = listener.getsockname()
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-service-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    @property
    def address(self) -> str:
        """The connectable address string (``host:port`` or socket path)."""
        if self._socket_path is not None:
            return self._socket_path
        return f"{self._host}:{self._port}"

    def shutdown(self, drain_seconds: float | None = None) -> bool:
        """Drain in-flight requests, then stop; True on a clean drain.

        New requests are refused with ``SHUTTING_DOWN`` the moment this
        is called; requests already admitted get up to ``drain_seconds``
        (``FlorConfig.service_drain_seconds``) to finish.
        """
        budget = (drain_seconds if drain_seconds is not None
                  else self.config.service_drain_seconds)
        self._draining.set()
        deadline = monotonic() + budget
        drained = True
        while monotonic() < deadline:
            with self._admit_lock:
                if self._admitted == 0:
                    break
            time.sleep(0.02)
        else:
            with self._admit_lock:
                drained = self._admitted == 0
        self._closed.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._socket_path is not None:
            try:
                os.unlink(self._socket_path)
            except OSError:
                pass
        self.pool.close(drain=drained)
        telemetry.get_metrics().inc("service.shutdowns")
        return drained

    # ------------------------------------------------------------------ #
    # Accept / dispatch
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed during shutdown
            thread = threading.Thread(target=self._handle_connection,
                                      args=(conn,),
                                      name="repro-service-conn",
                                      daemon=True)
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        request_id = "?"
        try:
            conn.settimeout(60.0)
            request = read_frame(conn)
            if request is None:
                return
            op, request_id, client, params = validate_request(request)
            conn.settimeout(None)
            self._dispatch(conn, op, request_id, client, params)
        except ProtocolError as error:
            self._send_error(conn, request_id, error.code, str(error))
        except OSError:
            pass  # client went away; nothing to answer
        except Exception:  # noqa: BLE001 - daemon must not die on one conn
            self._send_error(conn, request_id, "INTERNAL",
                             traceback.format_exc(limit=8))
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, conn: socket.socket, op: str, request_id: str,
                  client: str, params: dict) -> None:
        tracer = telemetry.get_tracer()
        if op == "ping":
            # Health checks bypass admission so a busy or draining daemon
            # is still observable.
            write_frame(conn, {"type": "result", "id": request_id,
                               "payload": self._status()})
            return
        if op not in KNOWN_OPS:
            self._send_error(conn, request_id, "UNSUPPORTED_OP",
                             f"unknown op {op!r}; this server answers "
                             f"{', '.join(KNOWN_OPS)}")
            return
        if self._draining.is_set():
            self._send_error(conn, request_id, "SHUTTING_DOWN",
                             "service is draining; connect elsewhere or "
                             "wait for a restart")
            return
        with self._admit_lock:
            if self._admitted >= self.queue_size:
                retry_after = max(0.05, min(5.0, self._request_ewma))
                telemetry.get_metrics().inc("service.rejected_busy")
                self._send_error(conn, request_id, "SERVICE_BUSY",
                                 f"admission queue is full "
                                 f"({self.queue_size} in flight)",
                                 retry_after=retry_after)
                return
            self._admitted += 1
        started = monotonic()
        try:
            with tracer.span("service.request", op=op,
                             client=client) as request_span:
                telemetry.get_metrics().inc("service.requests")
                try:
                    if op == "query":
                        self._handle_query(conn, request_id, client,
                                           params, request_span)
                    elif op == "explain":
                        self._handle_explain(conn, request_id, params)
                    else:
                        self._handle_diff(conn, request_id, params)
                except (QueryError, ProtocolError, ServiceError) as error:
                    code = getattr(error, "code", "QUERY")
                    request_span.set(error=code)
                    self._send_error(conn, request_id, code, str(error))
        finally:
            duration = monotonic() - started
            with self._admit_lock:
                self._admitted -= 1
                self._request_ewma = (0.8 * self._request_ewma
                                      + 0.2 * duration)

    def _status(self) -> dict:
        with self._admit_lock:
            admitted = self._admitted
        return {"status": "draining" if self._draining.is_set() else "ok",
                "admitted": admitted,
                "queue_size": self.queue_size,
                "pending_jobs": self.pool.pending(),
                "workers": self.pool.workers,
                "executions": len(self._executions),
                "pid": os.getpid()}

    # ------------------------------------------------------------------ #
    # query: dedup + fair execution + streaming
    # ------------------------------------------------------------------ #
    def _handle_query(self, conn: socket.socket, request_id: str,
                      client: str, params: dict, request_span) -> None:
        prepared = self._prepare(params)
        digest = prepared.dedup_digest()
        request_span.set(digest=digest[:12])
        tracer = telemetry.get_tracer()

        with self._exec_lock:
            execution = self._executions.get(digest)
            created = execution is None
            if created:
                execution = Execution(digest)
                self._executions[digest] = execution
        if created:
            subscriber = execution.attach()
            publisher = threading.Thread(
                target=self._run_execution,
                args=(execution, prepared, client, monotonic()),
                name=f"repro-service-exec-{digest[:8]}", daemon=True)
            publisher.start()
        else:
            # Identical normalized plan already executing: ride along.
            subscriber = execution.attach()
            prepared.close()
            telemetry.get_metrics().inc("service.dedup_hits")
            with tracer.span("service.dedup_hit", digest=digest[:12],
                             subscribers=execution.subscriber_count):
                pass

        try:
            self._stream(conn, request_id, subscriber)
        except OSError:
            # This client died mid-stream; the execution keeps running
            # for the other subscribers (and for the memo write-back).
            execution.detach(subscriber)
            raise

    def _stream(self, conn: socket.socket, request_id: str,
                subscriber: queue.Queue) -> None:
        while True:
            item = subscriber.get()
            if item[0] == "batch":
                _kind, seq, rows = item
                write_frame(conn, {"type": "batch", "id": request_id,
                                   "seq": seq, "rows": rows})
            elif item[0] == "result":
                write_frame(conn, {"type": "result", "id": request_id,
                                   "stats": item[1]})
                return
            else:
                _kind, code, message = item
                self._send_error(conn, request_id, code, message)
                return

    def _run_execution(self, execution: Execution,
                       prepared: PreparedQuery, client: str,
                       started: float) -> None:
        tracer = telemetry.get_tracer()
        try:
            with tracer.span("service.execute",
                             digest=execution.digest[:12],
                             client=client) as exec_span:
                # Rows the planner resolved without replay stream first,
                # before a single job is scheduled.
                execution.publish_batch(encode_rows(planned_rows(prepared)))
                jobs = prepared.balanced_jobs()
                specs = build_span_specs(jobs, prepared.sources_by_run,
                                         prepared.probed_by_run)
                replay_started = monotonic()
                tickets = [self.pool.submit(client, spec)
                           for spec in specs]
                results = []
                for spec, ticket in zip(specs, tickets):
                    result = FairReplayPool.wait(ticket)
                    results.append(result)
                    if result.succeeded:
                        execution.publish_batch(encode_rows(replay_rows(
                            prepared, spec.run_id, result.log_records)))
                self._ingest_queue_waits(tickets, exec_span)
                outcome = outcome_from_results(
                    jobs, specs, results,
                    replay_seconds=monotonic() - replay_started)
                result = assemble_result(prepared, outcome,
                                         started=started)
                exec_span.set(rows=len(result.rows),
                              replay_jobs=len(outcome.job_records))
            self._finish_execution(execution,
                                   stats=result.stats.to_payload())
        except (QueryError, ServiceError) as error:
            self._finish_execution(
                execution, code=getattr(error, "code", "QUERY"),
                message=str(error))
        except Exception:  # noqa: BLE001 - subscribers must hear failures
            self._finish_execution(execution, code="INTERNAL",
                                   message=traceback.format_exc(limit=8))
        finally:
            prepared.close()

    def _finish_execution(self, execution: Execution,
                          stats: dict | None = None,
                          code: str | None = None,
                          message: str = "") -> None:
        # Deregister BEFORE publishing the terminal frame: a new identical
        # query arriving after completion must re-plan (and now hit the
        # memo) instead of attaching to a finished execution forever.
        with self._exec_lock:
            if self._executions.get(execution.digest) is execution:
                del self._executions[execution.digest]
        if stats is not None:
            execution.finish(stats)
        else:
            execution.fail(code or "INTERNAL", message)

    def _ingest_queue_waits(self, tickets, exec_span) -> None:
        """Synthesize retroactive ``service.queue_wait`` spans.

        The wait happened inside the scheduler, which does not trace; the
        ticket's timestamps reconstruct it after the fact via the same
        ``ingest`` seam worker spans use.  Skipped entirely when tracing
        is off (``ingest`` appends unconditionally).
        """
        tracer = telemetry.get_tracer()
        if not tracer.enabled or not tickets:
            return
        payloads = [{
            "name": "service.queue_wait",
            "span_id": f"qw-{os.getpid():x}-{ticket.sequence:x}",
            "parent_id": None,
            "start": ticket.queued_wall,
            "duration": ticket.queue_wait,
            "pid": os.getpid(),
            "thread_id": threading.get_ident(),
            "attrs": {"client": ticket.client,
                      "run_id": ticket.spec.run_id},
        } for ticket in tickets]
        tracer.ingest(payloads, parent_id=exec_span.span_id)

    def _prepare(self, params: dict) -> PreparedQuery:
        values = params.get("values")
        if not values:
            raise ProtocolError("query params need a non-empty 'values'")
        return prepare_query(
            values=values,
            runs=params.get("runs"),
            iterations=decode_iterations(params.get("iterations")),
            source=params.get("source"),
            workload=params.get("workload"),
            config=self.config,
            workers=params.get("workers"),
            memoize=params.get("memoize"),
            catalog=self.catalog)

    # ------------------------------------------------------------------ #
    # explain / diff: inline under admission control
    # ------------------------------------------------------------------ #
    def _handle_explain(self, conn: socket.socket, request_id: str,
                        params: dict) -> None:
        values = params.get("values")
        if not values:
            raise ProtocolError("explain params need a non-empty 'values'")
        report = run_explain(
            values=values,
            runs=params.get("runs"),
            iterations=decode_iterations(params.get("iterations")),
            source=params.get("source"),
            workload=params.get("workload"),
            config=self.config,
            workers=params.get("workers"),
            memoize=params.get("memoize"),
            catalog=self.catalog)
        write_frame(conn, {"type": "result", "id": request_id,
                           "payload": report.to_payload()})

    def _handle_diff(self, conn: socket.socket, request_id: str,
                     params: dict) -> None:
        for required in ("run_a", "run_b", "values"):
            if not params.get(required):
                raise ProtocolError(
                    f"diff params need a non-empty {required!r}")
        result = run_diff(
            run_a=params["run_a"], run_b=params["run_b"],
            values=params["values"],
            source=params.get("source"),
            tolerance=float(params.get("tolerance", 0.0)),
            use_checkpoint_digests=bool(
                params.get("use_checkpoint_digests", True)),
            config=self.config,
            workers=params.get("workers"),
            memoize=params.get("memoize"),
            catalog=self.catalog)
        drifts = [{
            "name": drift.name, "status": drift.status,
            "first_divergence": drift.first_divergence,
            "last_equal": drift.last_equal,
            "value_a": drift.value_a, "value_b": drift.value_b,
            "baseline_a": drift.baseline_a,
            "baseline_b": drift.baseline_b,
            "method": drift.method, "probes": drift.probes,
        } for drift in result.drifts]
        write_frame(conn, {"type": "result", "id": request_id,
                           "drifts": drifts,
                           "stats": result.stats.to_payload()})

    # ------------------------------------------------------------------ #
    # Error responses
    # ------------------------------------------------------------------ #
    @staticmethod
    def _send_error(conn: socket.socket, request_id: str, code: str,
                    message: str, retry_after: float | None = None) -> None:
        frame = {"type": "error", "id": request_id, "code": code,
                 "message": message}
        if retry_after is not None:
            frame["retry_after"] = round(retry_after, 3)
        try:
            write_frame(conn, frame)
        except OSError:
            pass  # the client is gone; the error has no audience
