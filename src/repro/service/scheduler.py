"""Fair cross-tenant scheduling of replay jobs on one worker pool.

The service owns ONE bounded process pool (``FlorConfig.service_workers``)
for every tenant's replay jobs; this module decides whose job runs next.
FIFO would let one tenant's hundred-span query starve everyone else's
one-span probes, so admission is per-client weighted round-robin: each
client with pending work is visited in turn and may dispatch
``weight`` jobs per visit (weight 1 by default — strict round-robin).
A small query's spans therefore wait behind at most one in-flight span
per busy tenant, never behind a whole large query.

Execution is delegated to a ``runner`` callable so unit tests can drive
the scheduler with a stub (no subprocesses); the default runner lazily
builds a persistent ``multiprocessing`` pool and executes
:func:`repro.replay.parallel._job_entry` — the same entry the in-library
query path uses — keeping replay semantics identical in and out of the
service.  Dispatcher threads (one per pool slot) pull tickets and block
on their summary, so at most ``workers`` replay jobs run concurrently no
matter how many are queued.

Every dispatched job lands in a bounded in-memory ledger; the concurrency
battery asserts dedup ("two identical queries, one set of jobs") and
fairness against it, and operators can read it off a live daemon.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import threading
import time
from dataclasses import dataclass, field

from ..config import FlorConfig
from ..exceptions import ServiceError
from ..replay.parallel import (ReplayJobSpec, WorkerResult, _job_entry,
                               _summary_to_result)
from ..utils.timing import monotonic

__all__ = ["JobTicket", "FairReplayPool", "LedgerEntry"]


@dataclass
class JobTicket:
    """One replay job queued on the fair pool."""

    client: str
    spec: ReplayJobSpec
    sequence: int
    queued_wall: float = field(default_factory=time.time)
    queued_mono: float = field(default_factory=monotonic)
    #: Seconds the ticket sat queued before a dispatcher picked it up.
    queue_wait: float = 0.0
    result: WorkerResult | None = None
    error: BaseException | None = None
    done: threading.Event = field(default_factory=threading.Event)


@dataclass(frozen=True)
class LedgerEntry:
    """One dispatched replay job (the fairness/dedup accounting trail)."""

    client: str
    run_id: str
    iterations: tuple[int, ...]
    queue_wait: float
    wall_seconds: float


class FairReplayPool:
    """Weighted round-robin replay-job scheduler over one process pool."""

    LEDGER_LIMIT = 4096

    def __init__(self, config: FlorConfig, workers: int | None = None,
                 runner=None, weights: dict[str, int] | None = None):
        self.config = config
        self.workers = max(1, workers if workers is not None
                           else config.service_workers)
        self._runner = runner or self._pool_runner
        self._weights = dict(weights or {})
        #: Per-client consecutive-dispatch credit within one rotation visit.
        self._credit: dict[str, int] = {}
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queues: dict[str, list[JobTicket]] = {}
        #: Round-robin rotation of client ids with pending work.
        self._rotation: list[str] = []
        self._rotation_index = 0
        self._sequence = itertools.count()
        self._closed = False
        self._ledger: list[LedgerEntry] = []
        self._mp_pool = None
        self._mp_lock = threading.Lock()
        self._dispatchers = [
            threading.Thread(target=self._dispatch_loop,
                             name=f"repro-service-dispatch-{index}",
                             daemon=True)
            for index in range(self.workers)]
        for thread in self._dispatchers:
            thread.start()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, client: str, spec: ReplayJobSpec) -> JobTicket:
        """Queue one replay job for ``client``; returns its ticket."""
        with self._work:
            if self._closed:
                raise ServiceError("replay pool is closed",
                                   code="SHUTTING_DOWN")
            ticket = JobTicket(client=client, spec=spec,
                               sequence=next(self._sequence))
            queue = self._queues.setdefault(client, [])
            if client not in self._rotation:
                self._rotation.append(client)
            queue.append(ticket)
            self._work.notify()
            return ticket

    @staticmethod
    def wait(ticket: JobTicket, timeout: float | None = None
             ) -> WorkerResult:
        """Block until ``ticket`` finishes; re-raises a runner failure."""
        if not ticket.done.wait(timeout):
            raise ServiceError(
                f"replay job for {ticket.client!r} did not finish within "
                f"{timeout}s", code="INTERNAL")
        if ticket.error is not None:
            raise ticket.error
        assert ticket.result is not None
        return ticket.result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def ledger(self) -> list[LedgerEntry]:
        """Snapshot of dispatched jobs, oldest first."""
        with self._lock:
            return list(self._ledger)

    def pending(self) -> int:
        with self._lock:
            return sum(len(queue) for queue in self._queues.values())

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _next_ticket(self) -> JobTicket | None:
        """Pop the next ticket under WRR; None when the pool is closed.

        Must be called with ``self._work`` held-and-waited: blocks until
        work arrives.  The rotation visits each client with pending work
        in turn; a client gets ``weight`` consecutive dispatches per
        visit (tracked implicitly by leaving it in place until its credit
        is spent), then the rotation moves on.
        """
        while True:
            if self._closed and not any(self._queues.values()):
                return None
            for _ in range(max(1, len(self._rotation))):
                if not self._rotation:
                    break
                self._rotation_index %= len(self._rotation)
                client = self._rotation[self._rotation_index]
                queue = self._queues.get(client)
                if queue:
                    ticket = queue.pop(0)
                    credit = self._credit.get(client, 0) + 1
                    if credit >= self._weights.get(client, 1) or not queue:
                        # Credit spent (or queue drained): move on.
                        self._credit[client] = 0
                        if not queue:
                            self._rotation.remove(client)
                        else:
                            self._rotation_index += 1
                    else:
                        self._credit[client] = credit
                    return ticket
                self._rotation.remove(client)
            self._work.wait()

    def _dispatch_loop(self) -> None:
        while True:
            with self._work:
                ticket = self._next_ticket()
            if ticket is None:
                return
            ticket.queue_wait = monotonic() - ticket.queued_mono
            started = monotonic()
            try:
                ticket.result = self._runner(ticket.spec)
            except BaseException as error:  # noqa: BLE001 - shipped to waiter
                ticket.error = error
            finally:
                with self._lock:
                    self._ledger.append(LedgerEntry(
                        client=ticket.client,
                        run_id=ticket.spec.run_id,
                        iterations=tuple(ticket.spec.sample_iterations),
                        queue_wait=ticket.queue_wait,
                        wall_seconds=monotonic() - started))
                    if len(self._ledger) > self.LEDGER_LIMIT:
                        del self._ledger[:-self.LEDGER_LIMIT]
                ticket.done.set()

    # ------------------------------------------------------------------ #
    # Default runner: the persistent multiprocessing pool
    # ------------------------------------------------------------------ #
    def _pool_runner(self, spec: ReplayJobSpec) -> WorkerResult:
        pool = self._ensure_mp_pool()
        summary = pool.apply_async(_job_entry, ((spec, self.config),)).get()
        return _summary_to_result(summary)

    def _ensure_mp_pool(self):
        with self._mp_lock:
            if self._closed:
                raise ServiceError("replay pool is closed",
                                   code="SHUTTING_DOWN")
            if self._mp_pool is None:
                # The daemon never holds an active Flor session, so fork
                # is safe where available; workers clear inherited state
                # at entry (_job_entry) either way.
                method = "fork" if hasattr(os, "fork") else "spawn"
                ctx = mp.get_context(method)
                self._mp_pool = ctx.Pool(processes=self.workers)
            return self._mp_pool

    # ------------------------------------------------------------------ #
    # Shutdown
    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop dispatchers; with ``drain`` finish queued work first."""
        with self._work:
            self._closed = True
            if not drain:
                for queue in self._queues.values():
                    for ticket in queue:
                        ticket.error = ServiceError(
                            "service shut down before this job ran",
                            code="SHUTTING_DOWN")
                        ticket.done.set()
                    queue.clear()
                self._rotation.clear()
            self._work.notify_all()
        deadline = monotonic() + timeout
        for thread in self._dispatchers:
            thread.join(max(0.0, deadline - monotonic()))
        with self._mp_lock:
            if self._mp_pool is not None:
                self._mp_pool.terminate()
                self._mp_pool.join()
                self._mp_pool = None
