"""Client of the hindsight query service: ``repro.connect(addr)``.

API parity with the in-process library — ``client.query(...)`` returns
the same :class:`~repro.query.dataframe.QueryResult` (rows +
:class:`QueryStats`) ``repro.query(...)`` would, reassembled from the
streamed batches; ``explain`` and ``diff`` likewise round-trip their
reports through the documented payload codecs.  The one visible
difference: service rows come back sorted by ``(run_id, iteration,
name)`` (batch arrival order is replay-completion order, so the client
normalizes).

Failure handling is typed and bounded:

* ``SERVICE_BUSY`` → sleep the server's ``retry_after`` hint and retry,
  up to ``retries`` times, then raise :class:`ServiceBusy`.
* Connection refused/reset (daemon restarting) → exponential backoff
  retry on the same budget.
* ``SHUTTING_DOWN`` → raise immediately (a draining daemon will not
  come back for this request; the caller should reconnect later).
* Query/planner errors → :class:`~repro.exceptions.QueryError`, same
  type the library raises.

One request per connection; ``timeout`` bounds every socket operation,
so a hung daemon surfaces as ``ServiceError`` rather than a hang.
"""

from __future__ import annotations

import socket
import time
import uuid
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..exceptions import QueryError, ServiceBusy, ServiceError
from ..query.dataframe import QueryResult, QueryRow, QueryStats
from ..query.diff import DiffResult, DiffStats, ValueDrift
from ..query.explain import ExplainReport
from .protocol import (PROTOCOL_VERSION, decode_rows, encode_iterations,
                       read_frame, write_frame)

__all__ = ["ServiceClient", "connect"]


def connect(address: str, client_id: str | None = None,
            timeout: float = 300.0, retries: int = 5,
            backoff: float = 0.2) -> "ServiceClient":
    """Open a client for the daemon at ``address``.

    ``address`` is ``host:port`` for TCP or a filesystem path for a Unix
    socket.  ``client_id`` is the tenant identity fair scheduling weighs
    requests by; it defaults to a stable per-client random id.
    """
    return ServiceClient(address, client_id=client_id, timeout=timeout,
                         retries=retries, backoff=backoff)


class ServiceClient:
    """See :func:`connect`."""

    def __init__(self, address: str, client_id: str | None = None,
                 timeout: float = 300.0, retries: int = 5,
                 backoff: float = 0.2):
        self.address = address
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:8]}"
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self._seq = 0

    # ------------------------------------------------------------------ #
    # Public API (library parity)
    # ------------------------------------------------------------------ #
    def query(self, values: str | Sequence[str],
              runs: str | Iterable[str] | None = None,
              iterations=None, source: str | Path | None = None,
              workload: str | None = None, workers: int | None = None,
              memoize: bool | None = None,
              on_batch: Callable[[list[QueryRow]], None] | None = None,
              ) -> QueryResult:
        """Run a hindsight query on the service; parameters match
        :func:`repro.query`.  ``on_batch`` observes each partial batch as
        it streams in (rows arrive as spans complete)."""
        params = self._query_params(values, runs, iterations, source,
                                    workload, workers, memoize)
        frames = self._request("query", params)
        rows: list[QueryRow] = []
        stats_payload: dict = {}
        for frame in frames:
            if frame["type"] == "batch":
                batch = decode_rows(frame.get("rows") or [])
                rows.extend(batch)
                if on_batch is not None and batch:
                    on_batch(batch)
            else:
                stats_payload = frame.get("stats") or {}
        rows.sort(key=lambda row: (row.run_id, row.iteration, row.name))
        return QueryResult(rows=rows,
                           stats=QueryStats.from_payload(stats_payload))

    def explain(self, values: str | Sequence[str],
                runs: str | Iterable[str] | None = None,
                iterations=None, source: str | Path | None = None,
                workload: str | None = None, workers: int | None = None,
                memoize: bool | None = None) -> ExplainReport:
        """Plan a query on the service without executing it."""
        params = self._query_params(values, runs, iterations, source,
                                    workload, workers, memoize)
        frames = self._request("explain", params)
        return ExplainReport.from_payload(frames[-1]["payload"])

    def diff(self, run_a: str, run_b: str,
             values: str | Sequence[str],
             source: str | Path | None = None,
             tolerance: float = 0.0,
             use_checkpoint_digests: bool = True,
             workers: int | None = None,
             memoize: bool | None = None) -> DiffResult:
        """Locate cross-run drift on the service; mirrors ``repro.diff``."""
        params = {
            "run_a": run_a, "run_b": run_b,
            "values": ([values] if isinstance(values, str)
                       else list(values)),
            "source": _resolve_source(source),
            "tolerance": tolerance,
            "use_checkpoint_digests": use_checkpoint_digests,
            "workers": workers, "memoize": memoize,
        }
        frames = self._request("diff", params)
        final = frames[-1]
        drifts = [ValueDrift(**payload)
                  for payload in final.get("drifts") or []]
        return DiffResult(
            drifts=drifts,
            stats=DiffStats.from_payload(final.get("stats") or {}))

    def ping(self) -> dict:
        """The daemon's health/status document."""
        return self._request("ping", {})[-1]["payload"]

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #
    def _query_params(self, values, runs, iterations, source, workload,
                      workers, memoize) -> dict:
        return {
            "values": ([values] if isinstance(values, str)
                       else list(values)),
            "runs": (list(runs) if isinstance(runs, (list, tuple, set))
                     else runs),
            "iterations": encode_iterations(iterations),
            "source": _resolve_source(source),
            "workload": workload,
            "workers": workers,
            "memoize": memoize,
        }

    def _request(self, op: str, params: dict) -> list[dict]:
        """Send one request; collect frames through the terminal one.

        Retries ``SERVICE_BUSY`` (honoring ``retry_after``) and
        connection failures with exponential backoff, up to ``retries``
        attempts beyond the first.
        """
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            try:
                return self._attempt(op, params)
            except ServiceBusy as busy:
                last_error = busy
                delay = busy.retry_after
            except ServiceError:
                raise
            except (ConnectionError, socket.timeout, OSError) as error:
                last_error = ServiceError(
                    f"service at {self.address!r} unreachable: {error}",
                    code="INTERNAL")
                delay = self.backoff * (2 ** attempt)
            if attempt < self.retries:
                time.sleep(min(5.0, delay))
        assert last_error is not None
        raise last_error

    def _attempt(self, op: str, params: dict) -> list[dict]:
        self._seq += 1
        request_id = f"{self.client_id}-{self._seq}"
        with self._connect() as conn:
            write_frame(conn, {"v": PROTOCOL_VERSION, "op": op,
                               "id": request_id,
                               "client": self.client_id,
                               "params": params})
            frames: list[dict] = []
            while True:
                frame = read_frame(conn)
                if frame is None:
                    raise ServiceError(
                        "connection closed before a terminal frame",
                        code="INTERNAL")
                kind = frame.get("type")
                if kind == "batch":
                    frames.append(frame)
                elif kind == "result":
                    frames.append(frame)
                    return frames
                elif kind == "error":
                    raise _error_from_frame(frame)
                else:
                    raise ServiceError(
                        f"unexpected frame type {kind!r}",
                        code="INTERNAL")

    def _connect(self) -> socket.socket:
        if ":" in self.address and not self.address.startswith(("/", ".")):
            host, _colon, port = self.address.rpartition(":")
            conn = socket.create_connection((host, int(port)),
                                            timeout=self.timeout)
        else:
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(self.timeout)
            conn.connect(self.address)
        return conn


def _resolve_source(source: str | Path | None) -> str | None:
    """Resolve a probe-source path client-side; the daemon sees text.

    The daemon may run on another machine (or another working
    directory), so path resolution must happen where the path means
    something.  Mirrors the library's accept-text-or-path behavior.
    """
    if source is None:
        return None
    if isinstance(source, Path) or ("\n" not in source
                                    and Path(source).exists()):
        return Path(source).read_text(encoding="utf-8")
    return str(source)


def _error_from_frame(frame: dict) -> ServiceError:
    code = frame.get("code") or "INTERNAL"
    message = frame.get("message") or "service error"
    if code == "SERVICE_BUSY":
        return ServiceBusy(message,
                           retry_after=float(frame.get("retry_after",
                                                       0.1)))
    if code == "QUERY":
        return QueryError(message)
    return ServiceError(message, code=code)
