"""The user-facing Flor API.

The paper's pitch is that a model developer only has to ``import flor`` —
everything else (instrumentation, checkpointing, replay) is automatic.  The
equivalent here is::

    from repro import api as flor

    with flor.record_session("cifar-run") as session:
        for epoch in flor.loop(range(epochs)):
            sb = flor.skipblock("train")
            if sb.should_execute():
                for batch in trainloader:
                    ...                      # the expensive inner loop
            net, optimizer = sb.end(net=net, optimizer=optimizer)
            flor.log("val_loss", evaluate(net))

or, for the fully automatic path, hand a plain training script to
:func:`record_script` and later query it with :func:`replay_script`.

Every primitive degrades gracefully when no session is active: ``loop``
iterates normally, ``skipblock`` always executes and never checkpoints, and
``log`` is a no-op that returns its value.  A Flor-instrumented script is
therefore still a valid vanilla training script.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Iterator

from .analysis.diagnostics import Diagnostic, DiagnosticReport, Severity
from .analysis.lint import lint_path, lint_run, lint_source
from .analysis.purity import ProbeAnalysis, ProbeClass, analyze_probe
from .config import FlorConfig, get_config, set_config
from .modes import InitStrategy, Mode
from .query.api import query
from .query.catalog import JobGroup, RunCatalog, RunEntry
from .query.dataframe import QueryResult, QueryStats
from .query.diff import DiffResult, DiffStats, ValueDrift, diff
from .query.explain import ExplainReport, explain
from .record.skipblock import UNDEFINED
from .record.recorder import RecordResult, record_script, record_source
from .replay.parallel import WorkerResult, run_parallel_replay
from .replay.replayer import ReplayResult, replay_script
from .session import Session, get_active_session
from .storage.lifecycle import (DEFAULT_GC_GRACE_SECONDS, GCReport,
                                PruneReport, RetentionPolicy, StorageStats,
                                collect_garbage, measure_storage,
                                prune_store)
from .storage.checkpoint_store import CheckpointStore
from .utils.naming import new_run_id

__all__ = [
    "log", "loop", "skipblock", "it", "UNDEFINED",
    "record_session", "replay_session",
    "record_script", "record_source", "replay_script",
    "run_parallel_replay", "RecordResult", "ReplayResult", "WorkerResult",
    "query", "QueryResult", "QueryStats", "RunCatalog", "RunEntry",
    "JobGroup",
    "explain", "ExplainReport",
    "diff", "DiffResult", "DiffStats", "ValueDrift",
    "gc", "prune", "storage_stats",
    "RetentionPolicy", "PruneReport", "GCReport", "StorageStats",
    "lint_source", "lint_path", "lint_run",
    "Diagnostic", "DiagnosticReport", "Severity",
    "analyze_probe", "ProbeAnalysis", "ProbeClass",
    "get_config", "set_config", "FlorConfig",
]


# ---------------------------------------------------------------------- #
# Primitives that delegate to the active session
# ---------------------------------------------------------------------- #
def log(name: str, value):
    """Log ``value`` under ``name``; returns ``value`` so it can wrap expressions.

    On record the value goes to the run's record log; on replay it goes to
    the worker's replay log.  Outside any session this is a no-op, so
    sprinkling ``flor.log`` calls does not tie a script to Flor.
    """
    session = get_active_session()
    if session is not None:
        session.log(name, value)
    return value


def loop(iterable: Iterable) -> Iterator:
    """Wrap the main training loop's iterator (the Flor generator).

    On record, iterations are tracked; on replay, they are partitioned
    across parallel workers and preceded by worker initialization.  Outside
    a session this is plain iteration.
    """
    session = get_active_session()
    if session is None:
        return iter(iterable)
    return session.loop(iterable)


#: Alias matching the open-source Flor library's ``flor.it``.
it = loop


class _PassthroughSkipBlock:
    """SkipBlock stand-in used when no session is active: always execute."""

    def __init__(self, block_id: str):
        self.block_id = block_id

    def should_execute(self) -> bool:
        return True

    def end(self, _namespace=None, **named_values) -> tuple:
        return tuple(named_values.values())

    def end_from_namespace(self, names, namespace) -> dict:
        return {name: namespace.get(name, UNDEFINED) for name in names}


def skipblock(block_id: str):
    """Create a SkipBlock activation for the current loop iteration."""
    session = get_active_session()
    if session is None:
        return _PassthroughSkipBlock(block_id)
    return session.skipblock(block_id)


# ---------------------------------------------------------------------- #
# Storage lifecycle
# ---------------------------------------------------------------------- #
def gc(config: FlorConfig | None = None, *, grace_seconds: float = 0.0,
       dry_run: bool = False) -> GCReport:
    """Sweep unreferenced checkpoint payload blobs under the Flor home.

    Mark-and-sweep over the home's shared content-addressed object
    store: the referenced digest set is re-derived from every run's
    manifest at call time, so an interrupted or concurrent sweep can
    strand an orphan for the next pass but never delete a payload any
    run still references.  ``dry_run`` reports what would be swept.
    """
    config = config or get_config()
    return collect_garbage(config.home, grace_seconds=grace_seconds,
                           dry_run=dry_run)


def prune(run_id: str, policy: RetentionPolicy | None = None,
          config: FlorConfig | None = None, *,
          collect: bool = True) -> PruneReport:
    """Apply a retention policy to one recorded run, then (optionally) GC.

    ``policy`` defaults to the configured ``retention_policy``.  Manifest
    rows are deleted first (one backend transaction); shared payload
    blobs are released by the follow-up GC pass once no run references
    them.  Replay of the pruned run stays correct — the scheduler bridges
    from the surviving checkpoints.
    """
    config = config or get_config()
    policy = policy if policy is not None else config.retention_policy
    if policy is None:
        from .exceptions import ConfigError
        raise ConfigError(
            "prune() needs a RetentionPolicy: pass one explicitly or set "
            "FlorConfig.retention_policy")
    run_dir = config.run_dir(run_id)
    # Opening a CheckpointStore creates the directory; guard against a
    # typo'd run id silently materializing an empty junk run.
    from .storage.backends import registered_memory_backends
    registered = {backend.root_dir for backend
                  in registered_memory_backends(config.home)
                  if backend.root_dir is not None}
    if not run_dir.is_dir() and run_dir not in registered:
        from .exceptions import StorageError
        raise StorageError(
            f"no recorded run {run_id!r} under {config.home}")
    store = CheckpointStore.for_config(run_dir, config)
    try:
        report = prune_store(store, policy)
    finally:
        store.close()
    if collect:
        # Automatic follow-up sweep: keep the shared-home grace (another
        # session may have written blobs it has not yet indexed) but
        # reclaim what this prune just released immediately via hints —
        # time-scoped, so a writer re-adding a released digest after the
        # prune keeps its blob.
        collect_garbage(config.home,
                        grace_seconds=DEFAULT_GC_GRACE_SECONDS,
                        release_hints=report.released_digests,
                        hints_released_at=report.released_at)
    return report


def storage_stats(config: FlorConfig | None = None) -> StorageStats:
    """Logical vs physical storage footprint of the Flor home.

    ``logical_nbytes`` is what every manifest row claims to store;
    ``physical_nbytes`` is what the deduplicated object store actually
    holds; ``dedup_ratio`` is their quotient.
    """
    config = config or get_config()
    return measure_storage(config.home)


# ---------------------------------------------------------------------- #
# Session context managers (the explicit API)
# ---------------------------------------------------------------------- #
@contextlib.contextmanager
def record_session(name: str | None = None,
                   config: FlorConfig | None = None) -> Iterator[Session]:
    """Open a record-mode session for explicitly instrumented training code."""
    session = Session(run_id=new_run_id(name), mode=Mode.RECORD,
                      config=config or get_config())
    with session:
        yield session


@contextlib.contextmanager
def replay_session(run_id: str, config: FlorConfig | None = None,
                   pid: int = 0, num_workers: int = 1,
                   init_strategy: InitStrategy | str = InitStrategy.STRONG,
                   probed_blocks: Iterable[str] | None = None
                   ) -> Iterator[Session]:
    """Open a replay-mode session against an existing recorded run."""
    session = Session(run_id=run_id, mode=Mode.REPLAY,
                      config=config or get_config(), pid=pid,
                      num_workers=num_workers,
                      init_strategy=InitStrategy(init_strategy),
                      probed_blocks=probed_blocks)
    with session:
        yield session
