"""Background checkpoint materialization (Section 5.1).

Materializing a checkpoint means serializing Python objects and writing the
bytes to disk.  Doing that on the main thread stalls model training, so Flor
pushes the work into the background.  The paper compares four strategies
(Figure 5); all four are implemented here behind a common interface:

``sequential``
    Serialize and write on the main thread (the cloudpickle baseline).
``thread``
    Hand the (already-snapshotted) objects to a background thread.  The GIL
    limits how much serialization overlaps with training, but the disk write
    does overlap.
``ipc_queue``
    Serialize on the main thread, ship bytes to a writer *process* through a
    ``multiprocessing`` queue (the paper's IPC-Queue baseline).
``fork``
    Buffer checkpoints and ``os.fork()``: the child inherits the objects via
    copy-on-write, serializes and writes them, then exits.  The main process
    resumes training immediately (the paper's chosen mechanism).

A fifth strategy, ``shared_memory``, plays the role of the paper's
IPC-Plasma baseline: array payloads are placed in shared memory so the main
thread avoids serializing them; everything else falls back to queue
shipping.  Like Plasma, it only helps for array-like data.

``spool`` — the production default — goes beyond the paper's single
background thread: it hands snapshots to a **bounded** multi-worker
pipeline (:class:`repro.storage.spool.AsyncSpool`) that serializes,
compresses and writes off the hot path, commits manifest rows in batches,
and applies backpressure when the queue fills, so record-time memory stays
bounded under heavy checkpoint traffic.

Every ``submit`` returns a :class:`MaterializationTicket` whose
``main_thread_seconds`` is the time the training thread was blocked — the
quantity Figure 5 measures and the record-overhead figures build on.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..exceptions import RecordError
from ..storage.checkpoint_store import CheckpointStore
from ..storage.serializer import ValueSnapshot, serialize_checkpoint
from ..storage.spool import AsyncSpool
from ..utils.timing import monotonic

__all__ = ["MaterializationTicket", "Materializer", "SequentialMaterializer",
           "ThreadMaterializer", "IPCQueueMaterializer", "ForkMaterializer",
           "SharedMemoryMaterializer", "SpoolMaterializer",
           "create_materializer", "MATERIALIZER_NAMES"]


@dataclass
class MaterializationTicket:
    """Receipt for one submitted checkpoint."""

    block_id: str
    execution_index: int
    main_thread_seconds: float
    payload_nbytes: int
    completed_inline: bool


@dataclass
class MaterializerStats:
    """Aggregate accounting across a materializer's lifetime."""

    submitted: int = 0
    total_main_thread_seconds: float = 0.0
    total_payload_nbytes: int = 0
    errors: list[str] = field(default_factory=list)


class Materializer:
    """Common interface: ``submit`` checkpoints, ``flush`` to durability."""

    name = "abstract"

    def __init__(self, store: CheckpointStore):
        self.store = store
        self.stats = MaterializerStats()

    def submit(self, block_id: str, execution_index: int,
               snapshots: list[ValueSnapshot]) -> MaterializationTicket:
        raise NotImplementedError

    def flush(self) -> None:
        """Block until every submitted checkpoint is durable and indexed."""

    def close(self) -> None:
        self.flush()

    def _account(self, ticket: MaterializationTicket) -> MaterializationTicket:
        self.stats.submitted += 1
        self.stats.total_main_thread_seconds += ticket.main_thread_seconds
        self.stats.total_payload_nbytes += ticket.payload_nbytes
        return ticket


class SequentialMaterializer(Materializer):
    """Serialize and write on the calling (training) thread."""

    name = "sequential"

    def submit(self, block_id, execution_index, snapshots):
        start = monotonic()
        serialized = serialize_checkpoint(snapshots)
        self.store.put_serialized(block_id, execution_index, serialized)
        elapsed = monotonic() - start
        return self._account(MaterializationTicket(
            block_id=block_id, execution_index=execution_index,
            main_thread_seconds=elapsed, payload_nbytes=serialized.nbytes,
            completed_inline=True))


class ThreadMaterializer(Materializer):
    """Serialize and write on a dedicated background thread."""

    name = "thread"
    _STOP = object()

    def __init__(self, store: CheckpointStore):
        super().__init__(store)
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._thread = threading.Thread(target=self._drain, daemon=True,
                                        name="flor-materializer")
        self._thread.start()

    def submit(self, block_id, execution_index, snapshots):
        start = monotonic()
        estimate = sum(snapshot.nbytes() for snapshot in snapshots)
        self._queue.put((block_id, execution_index, snapshots))
        elapsed = monotonic() - start
        return self._account(MaterializationTicket(
            block_id=block_id, execution_index=execution_index,
            main_thread_seconds=elapsed, payload_nbytes=estimate,
            completed_inline=False))

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._STOP:
                    return
                block_id, execution_index, snapshots = item
                try:
                    self.store.put(block_id, execution_index, snapshots)
                except Exception as exc:  # pragma: no cover - background errors
                    self.stats.errors.append(
                        f"{block_id}[{execution_index}]: {exc}")
            finally:
                self._queue.task_done()

    def flush(self) -> None:
        # Queue.join blocks until every submitted item has been processed.
        self._queue.join()

    def close(self) -> None:
        self.flush()
        self._queue.put(self._STOP)
        self._thread.join(timeout=30.0)


def _ipc_writer(run_dir: str, compress: bool, work_queue: mp.Queue) -> None:
    """Entry point of the IPC-Queue writer process."""
    store = CheckpointStore(run_dir, compress=compress)
    while True:
        item = work_queue.get()
        if item is None:
            return
        block_id, execution_index, payload = item
        snapshots = pickle.loads(payload)
        store.put(block_id, execution_index, snapshots)


class IPCQueueMaterializer(Materializer):
    """Serialize on the main thread; write in a separate process."""

    name = "ipc_queue"

    def __init__(self, store: CheckpointStore):
        super().__init__(store)
        self._ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
        self._queue: mp.Queue = self._ctx.Queue()
        self._process = self._ctx.Process(
            target=_ipc_writer,
            args=(str(store.run_dir), store.compress, self._queue),
            daemon=True)
        self._process.start()

    def submit(self, block_id, execution_index, snapshots):
        start = monotonic()
        payload = pickle.dumps(snapshots, protocol=pickle.HIGHEST_PROTOCOL)
        self._queue.put((block_id, execution_index, payload))
        elapsed = monotonic() - start
        return self._account(MaterializationTicket(
            block_id=block_id, execution_index=execution_index,
            main_thread_seconds=elapsed, payload_nbytes=len(payload),
            completed_inline=False))

    def flush(self) -> None:
        deadline = time.time() + 30.0
        while not self._queue.empty() and time.time() < deadline:
            time.sleep(0.005)
        # Give the writer a moment to finish the item it popped last.
        time.sleep(0.05)

    def close(self) -> None:
        self.flush()
        self._queue.put(None)
        self._process.join(timeout=30.0)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()


class ForkMaterializer(Materializer):
    """Buffer checkpoints and materialize them from forked children.

    ``fork()`` gives the child a copy-on-write view of the parent's heap, so
    the training process resumes immediately while the child serializes and
    writes.  Submissions are buffered and batched (the paper batches 5000
    objects per fork) so fork frequency stays low.
    """

    name = "fork"

    def __init__(self, store: CheckpointStore, batch_objects: int = 5000):
        if not hasattr(os, "fork"):
            raise RecordError("fork materialization requires a POSIX system")
        super().__init__(store)
        self.batch_objects = batch_objects
        self._buffer: list[tuple[str, int, list[ValueSnapshot]]] = []
        self._buffered_objects = 0
        self._children: list[int] = []

    def submit(self, block_id, execution_index, snapshots):
        start = monotonic()
        estimate = sum(snapshot.nbytes() for snapshot in snapshots)
        self._buffer.append((block_id, execution_index, snapshots))
        self._buffered_objects += max(len(snapshots), 1)
        if self._buffered_objects >= self.batch_objects:
            self._fork_batch()
        elapsed = monotonic() - start
        return self._account(MaterializationTicket(
            block_id=block_id, execution_index=execution_index,
            main_thread_seconds=elapsed, payload_nbytes=estimate,
            completed_inline=False))

    def _fork_batch(self) -> None:
        if not self._buffer:
            return
        batch = self._buffer
        self._buffer = []
        self._buffered_objects = 0
        self._reap(block=False)
        pid = os.fork()
        if pid == 0:
            # Child: materialize everything in the inherited batch and exit
            # without running any parent cleanup handlers.
            status = 0
            try:
                for block_id, execution_index, snapshots in batch:
                    self.store.put(block_id, execution_index, snapshots)
            except Exception:
                status = 1
            os._exit(status)
        else:
            self._children.append(pid)

    def _reap(self, block: bool) -> None:
        still_alive: list[int] = []
        for pid in self._children:
            try:
                done, status = os.waitpid(pid, 0 if block else os.WNOHANG)
            except ChildProcessError:
                continue
            if done == 0:
                still_alive.append(pid)
            elif os.waitstatus_to_exitcode(status) != 0:
                self.stats.errors.append(f"fork child {pid} failed")
        self._children = still_alive

    def flush(self) -> None:
        self._fork_batch()
        self._reap(block=True)


class SharedMemoryMaterializer(Materializer):
    """Plasma-like strategy: avoid serializing array payloads on the main thread.

    State-dict snapshots (dicts of ndarrays) have their arrays copied into a
    ``multiprocessing.shared_memory`` segment — a memcpy, not a pickle — and
    a writer process reassembles and persists them.  Non-array snapshots fall
    back to pickling through the queue, mirroring Plasma's limitation that it
    "cannot serialize other data types including PyTorch tensors".
    """

    name = "shared_memory"

    def __init__(self, store: CheckpointStore):
        super().__init__(store)
        from multiprocessing import shared_memory  # local: optional feature
        self._shared_memory = shared_memory
        self._ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
        self._queue: mp.Queue = self._ctx.Queue()
        self._process = self._ctx.Process(
            target=_shared_memory_writer,
            args=(str(store.run_dir), store.compress, self._queue),
            daemon=True)
        self._process.start()

    def submit(self, block_id, execution_index, snapshots):
        start = monotonic()
        descriptors = []
        segments = []
        total = 0
        for snapshot in snapshots:
            arrays = _extract_arrays(snapshot)
            if arrays is None:
                payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
                descriptors.append(("pickle", snapshot.name, payload))
                total += len(payload)
                continue
            array_meta = []
            for key, array in arrays.items():
                segment = self._shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1))
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=segment.buf)
                view[...] = array
                array_meta.append((key, segment.name, array.shape,
                                   str(array.dtype)))
                segments.append(segment)
                total += array.nbytes
            descriptors.append(("shm", snapshot.name, snapshot.kind, array_meta))
        self._queue.put((block_id, execution_index, descriptors))
        elapsed = monotonic() - start
        # Keep references alive until the writer confirms by closing them;
        # for simplicity we let the writer unlink and drop ours on flush.
        self._pending_segments = getattr(self, "_pending_segments", [])
        self._pending_segments.extend(segments)
        return self._account(MaterializationTicket(
            block_id=block_id, execution_index=execution_index,
            main_thread_seconds=elapsed, payload_nbytes=total,
            completed_inline=False))

    def flush(self) -> None:
        deadline = time.time() + 30.0
        while not self._queue.empty() and time.time() < deadline:
            time.sleep(0.005)
        time.sleep(0.05)
        for segment in getattr(self, "_pending_segments", []):
            try:
                segment.close()
            except (OSError, ValueError):
                pass
        self._pending_segments = []

    def close(self) -> None:
        self.flush()
        self._queue.put(None)
        self._process.join(timeout=30.0)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()


def _extract_arrays(snapshot: ValueSnapshot) -> dict[str, np.ndarray] | None:
    """Return the snapshot's payload as flat name->ndarray, or None."""
    payload = snapshot.payload
    if isinstance(payload, np.ndarray):
        return {"__array__": payload}
    if isinstance(payload, dict) and payload and all(
            isinstance(v, np.ndarray) for v in payload.values()):
        return dict(payload)
    return None


def _shared_memory_writer(run_dir: str, compress: bool, work_queue: mp.Queue
                          ) -> None:
    """Entry point of the shared-memory writer process."""
    from multiprocessing import shared_memory

    store = CheckpointStore(run_dir, compress=compress)
    while True:
        item = work_queue.get()
        if item is None:
            return
        block_id, execution_index, descriptors = item
        snapshots: list[ValueSnapshot] = []
        for descriptor in descriptors:
            if descriptor[0] == "pickle":
                snapshots.append(pickle.loads(descriptor[2]))
                continue
            _, name, kind, array_meta = descriptor
            payload: dict[str, np.ndarray] = {}
            for key, segment_name, shape, dtype in array_meta:
                segment = shared_memory.SharedMemory(name=segment_name)
                view = np.ndarray(shape, dtype=np.dtype(dtype),
                                  buffer=segment.buf)
                payload[key] = np.array(view, copy=True)
                segment.close()
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
            if list(payload) == ["__array__"]:
                snapshots.append(ValueSnapshot(name=name, kind=kind,
                                               payload=payload["__array__"]))
            else:
                snapshots.append(ValueSnapshot(name=name, kind=kind,
                                               payload=payload))
        store.put(block_id, execution_index, snapshots)


class SpoolMaterializer(Materializer):
    """Materialize through the bounded async spool pipeline.

    The hot path only snapshots and enqueues; a worker pool (threads by
    default, processes for GIL-free serialization + compression) drains
    the bounded queue, writes payloads through the store's backend, and
    commits manifest rows in batches.  ``flush`` is a full barrier: on
    return every submitted checkpoint is durable and indexed.
    """

    name = "spool"

    def __init__(self, store: CheckpointStore, workers: int = 2,
                 queue_size: int = 64, batch_size: int = 16,
                 mode: str = "thread", on_complete=None,
                 on_batch_commit=None):
        super().__init__(store)
        self.spool = AsyncSpool(store, workers=workers,
                                queue_size=queue_size, batch_size=batch_size,
                                mode=mode, on_complete=on_complete,
                                on_batch_commit=on_batch_commit)

    def submit(self, block_id, execution_index, snapshots):
        main_thread_seconds, estimate = self.spool.submit(
            block_id, execution_index, snapshots)
        return self._account(MaterializationTicket(
            block_id=block_id, execution_index=execution_index,
            main_thread_seconds=main_thread_seconds,
            payload_nbytes=estimate, completed_inline=False))

    def _sync_errors(self) -> None:
        for message in self.spool.stats.errors[len(self.stats.errors):]:
            self.stats.errors.append(message)

    def flush(self) -> None:
        self.spool.flush()
        self._sync_errors()

    def close(self) -> None:
        self.spool.close()
        self._sync_errors()


#: Factory table used by the configuration layer.
MATERIALIZER_NAMES = {
    "sequential": SequentialMaterializer,
    "thread": ThreadMaterializer,
    "ipc_queue": IPCQueueMaterializer,
    "fork": ForkMaterializer,
    "shared_memory": SharedMemoryMaterializer,
    "spool": SpoolMaterializer,
}


def create_materializer(name: str, store: CheckpointStore, config=None,
                        **kwargs) -> Materializer:
    """Instantiate a materializer strategy by configuration name.

    When a :class:`~repro.config.FlorConfig` is passed, strategy-specific
    knobs (spool pool sizing, fork batch size) default to the configured
    values; explicit ``kwargs`` still win.
    """
    try:
        factory = MATERIALIZER_NAMES[name]
    except KeyError as exc:
        raise RecordError(
            f"unknown materializer {name!r}; known: "
            f"{sorted(MATERIALIZER_NAMES)}") from exc
    if config is not None:
        if name == "spool":
            kwargs.setdefault("workers", config.spool_workers)
            kwargs.setdefault("queue_size", config.spool_queue_size)
            kwargs.setdefault("batch_size", config.manifest_batch_size)
            kwargs.setdefault("mode", config.spool_mode)
        elif name == "fork":
            kwargs.setdefault("batch_objects", config.fork_batch_size)
    return factory(store, **kwargs)
