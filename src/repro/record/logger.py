"""The log manager: Flor's view of the user's logging statements.

On record, every ``flor.log(name, value)`` call appends a record to the run's
``record.log``.  On replay, the same calls (plus any hindsight-logging
statements added afterwards) write to a per-worker replay log.  The deferred
correctness check (Section 5.2.2) diffs the two: user-observable state that
was logged in both phases must match.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

__all__ = ["LogRecord", "LogManager", "read_log", "merge_logs",
           "iteration_order_key"]


@dataclass(frozen=True)
class LogRecord:
    """One logged value."""

    name: str
    value: object
    iteration: int | None = None
    sequence: int = 0

    def to_json(self) -> str:
        return json.dumps({
            "name": self.name,
            "value": self.value,
            "iteration": self.iteration,
            "sequence": self.sequence,
        }, default=_jsonify)

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        data = json.loads(line)
        return cls(name=data["name"], value=data["value"],
                   iteration=data.get("iteration"),
                   sequence=data.get("sequence", 0))


def _jsonify(value):
    """Coerce NumPy scalars/arrays and torchlike tensors to JSON-able values."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(value)


class LogManager:
    """Appends log records to a file and keeps them in memory."""

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self.records: list[LogRecord] = []
        self._sequence = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Truncate any stale log from a previous run with the same id.
            self.path.write_text("", encoding="utf-8")

    def log(self, name: str, value, iteration: int | None = None) -> LogRecord:
        """Record one value; returns the stored record."""
        record = LogRecord(name=name, value=_normalize(value),
                           iteration=iteration, sequence=self._sequence)
        self._sequence += 1
        self.records.append(record)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
        return record

    def values(self, name: str) -> list:
        """All logged values for ``name``, in order."""
        return [record.value for record in self.records if record.name == name]

    def names(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.name not in seen:
                seen.append(record.name)
        return seen

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def _normalize(value):
    """Convert values to plain Python types before storing them."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "size", None) == 1:
        try:
            return item()
        except (TypeError, ValueError):
            pass
    if isinstance(value, (str, int, float, bool, type(None), list, dict)):
        return value
    return repr(value)


def read_log(path: str | Path) -> list[LogRecord]:
    """Read a log file written by :class:`LogManager`."""
    path = Path(path)
    if not path.exists():
        return []
    records: list[LogRecord] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(LogRecord.from_json(line))
    return records


def iteration_order_key(record: LogRecord) -> tuple:
    """Sort key restoring main-loop iteration order across workers.

    Per-worker ``sequence`` numbers restart at zero in every worker, so raw
    concatenation of worker logs is *not* iteration-ordered; sorting by
    ``(iteration, sequence)`` is, because each iteration is replayed by
    exactly one worker.  Records logged outside the loop sort first.
    """
    return (record.iteration if record.iteration is not None else -1,
            record.sequence)


def merge_logs(logs: Iterable[Iterable[LogRecord]]) -> list[LogRecord]:
    """Merge per-worker replay logs into main-loop iteration order."""
    merged: list[LogRecord] = []
    for worker_records in logs:
        merged.extend(worker_records)
    return sorted(merged, key=iteration_order_key)
