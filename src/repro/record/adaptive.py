"""Adaptive checkpointing (Section 5.3).

Flor must never exceed a user-specifiable record overhead (the Record
Overhead Invariant, Eq. 1) and must guarantee that record-plus-replay beats
two vanilla executions (the Replay Latency Invariant, Eq. 3).  Both reduce
to the Joint Invariant tested per loop after it executes, but before its
checkpoint is materialized (Eq. 4):

    M_i / C_i  <  ( n_i / (k_i + 1) ) * min( 1 / (1 + c),  epsilon )

where ``M_i`` is the expected materialization time of the loop's checkpoint,
``C_i`` its computation time, ``n_i`` how many times the loop has executed
so far, ``k_i`` how many checkpoints have been materialized so far, ``c``
the restore/materialize scaling factor, and ``epsilon`` the overhead
tolerance.  The ``k_i + 1`` accounts for the checkpoint under consideration.

The controller estimates ``M_i`` from the payload size and an online
throughput estimate (bytes/second of past materializations), and refines
``c`` from observed restore times — the paper starts with ``c = 1.0`` and
reports a measured average of ``c = 1.38`` across its workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import DEFAULT_EPSILON, DEFAULT_SCALING_FACTOR

__all__ = ["BlockStats", "CheckpointDecision", "CodecModel",
           "AdaptiveController"]

#: Throughput assumed before any materialization has been observed
#: (conservative serialized-bytes-per-second figure for pickling + disk).
DEFAULT_THROUGHPUT_BYTES_PER_SECOND = 200e6

#: Codec cost-model priors: (compress throughput bytes/s, compression
#: ratio) before any sample has been observed.  Ballpark figures for one
#: CPU core on float32 tensor bytes; the EWMA converges to the machine's
#: real numbers within a few checkpoints.
CODEC_PRIORS = {
    "raw": (2e9, 1.0),
    "gzip": (40e6, 2.0),
    "zlib": (45e6, 2.0),
    "lzma": (2.5e6, 3.0),
}

#: Disk write bandwidth assumed before any write has been observed.
DEFAULT_WRITE_BANDWIDTH_BYTES_PER_SECOND = 500e6

#: Codecs ``choose_codec`` considers by default.  lzma is opt-in: even at
#: preset 1 its throughput is an order of magnitude below the others, so
#: it only wins on very slow storage.
DEFAULT_CODEC_CANDIDATES = ("gzip", "zlib", "raw")


@dataclass
class CodecModel:
    """Online estimate of one codec's compress throughput and ratio."""

    throughput: float
    ratio: float
    observations: int = 0

    def observe(self, raw_nbytes: int, seconds: float,
                compressed_nbytes: int) -> None:
        if raw_nbytes <= 0 or compressed_nbytes <= 0:
            return
        if seconds > 0:
            self.throughput = (0.7 * self.throughput
                               + 0.3 * (raw_nbytes / seconds))
        self.ratio = 0.7 * self.ratio + 0.3 * (raw_nbytes / compressed_nbytes)
        self.observations += 1


@dataclass
class BlockStats:
    """Per-SkipBlock counters (the symbols of Table 2)."""

    executions: int = 0            # n_i
    checkpoints: int = 0           # k_i
    total_compute_seconds: float = 0.0
    total_materialize_seconds: float = 0.0
    total_background_seconds: float = 0.0
    total_restore_seconds: float = 0.0
    last_decision: "CheckpointDecision | None" = None

    @property
    def mean_compute_seconds(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.total_compute_seconds / self.executions


@dataclass(frozen=True)
class CheckpointDecision:
    """Outcome of one Joint Invariant test."""

    materialize: bool
    ratio: float            # M_i / C_i as estimated
    threshold: float        # right-hand side of Eq. 4
    estimated_materialize_seconds: float
    compute_seconds: float
    reason: str = ""


@dataclass
class AdaptiveController:
    """Decides, per loop execution, whether to materialize its checkpoint."""

    epsilon: float = DEFAULT_EPSILON
    scaling_factor: float = DEFAULT_SCALING_FACTOR
    enabled: bool = True
    stats: dict[str, BlockStats] = field(default_factory=dict)
    #: Compute seconds per main-loop iteration (summed over the iteration's
    #: SkipBlock executions) — the replay scheduler's cost model.
    iteration_seconds: dict[int, float] = field(default_factory=dict)
    _throughput: float = DEFAULT_THROUGHPUT_BYTES_PER_SECOND
    _observed_ratios: list[float] = field(default_factory=list)
    #: Per-codec compress-cost models (lazily seeded from CODEC_PRIORS).
    codec_models: dict[str, CodecModel] = field(default_factory=dict)
    _write_bandwidth: float = DEFAULT_WRITE_BANDWIDTH_BYTES_PER_SECOND
    #: EWMA of measured per-checkpoint restore seconds.  Replay sessions
    #: persist it back into ``iteration_stats`` (telemetry on), replacing
    #: the ``scaling_factor * mean_materialize`` prior in the query
    #: planner's and replay scheduler's cost models.
    restore_ewma: float = 0.0
    restore_observations: int = 0

    # ------------------------------------------------------------------ #
    # Observation API (called by the SkipBlock / materializer)
    # ------------------------------------------------------------------ #
    def block(self, block_id: str) -> BlockStats:
        return self.stats.setdefault(block_id, BlockStats())

    def observe_execution(self, block_id: str, compute_seconds: float,
                          iteration: int | None = None) -> None:
        """Record that a loop executed, taking ``compute_seconds``.

        ``iteration`` is the enclosing main-loop iteration (when there is
        one); its per-iteration total feeds the replay scheduler's
        recompute-cost estimates.
        """
        entry = self.block(block_id)
        entry.executions += 1
        entry.total_compute_seconds += max(compute_seconds, 0.0)
        if iteration is not None:
            self.iteration_seconds[iteration] = (
                self.iteration_seconds.get(iteration, 0.0)
                + max(compute_seconds, 0.0))

    def observe_materialization(self, block_id: str, seconds: float,
                                nbytes: int) -> None:
        """Record a completed materialization; refines the throughput model."""
        entry = self.block(block_id)
        entry.checkpoints += 1
        entry.total_materialize_seconds += max(seconds, 0.0)
        if seconds > 0 and nbytes > 0:
            observed = nbytes / seconds
            # Exponentially-weighted blend keeps the estimate adaptive.
            self._throughput = 0.7 * self._throughput + 0.3 * observed

    def observe_background_materialization(self, block_id: str,
                                           seconds: float,
                                           nbytes: int) -> None:
        """Record an asynchronously completed materialization.

        Called from the spool's completion callback.  Unlike
        :meth:`observe_materialization` this neither increments ``k_i``
        (the SkipBlock already counted the checkpoint at submit time) nor
        charges the record hot path; it only refines the throughput model
        with the *real* background serialize+compress+write rate, which
        the submit-time main-thread measurement of an async strategy
        cannot see.
        """
        entry = self.block(block_id)
        entry.total_background_seconds += max(seconds, 0.0)
        if seconds > 0 and nbytes > 0:
            observed = nbytes / seconds
            self._throughput = 0.7 * self._throughput + 0.3 * observed

    # ------------------------------------------------------------------ #
    # Codec cost model (feeds the store's ``codec="auto"`` chooser)
    # ------------------------------------------------------------------ #
    def codec_model(self, codec: str) -> CodecModel:
        model = self.codec_models.get(codec)
        if model is None:
            throughput, ratio = CODEC_PRIORS.get(codec, (50e6, 1.5))
            model = self.codec_models[codec] = CodecModel(
                throughput=throughput, ratio=ratio)
        return model

    def observe_codec(self, codec: str, raw_nbytes: int, seconds: float,
                      compressed_nbytes: int) -> None:
        """Record one measured compress run (the store's codec_observer)."""
        self.codec_model(codec).observe(raw_nbytes, seconds,
                                        compressed_nbytes)

    def observe_write_bandwidth(self, nbytes: int, seconds: float) -> None:
        """Refine the storage bandwidth half of the codec cost model."""
        if nbytes > 0 and seconds > 0:
            self._write_bandwidth = (0.7 * self._write_bandwidth
                                     + 0.3 * (nbytes / seconds))

    def codec_cost_seconds(self, codec: str, nbytes: int) -> float:
        """Expected seconds to compress and write ``nbytes`` with ``codec``.

        Two serial stages: push the raw bytes through the codec, then push
        the compressed bytes to storage — so a slow codec with a great
        ratio wins exactly when storage bandwidth is the bottleneck.
        """
        model = self.codec_model(codec)
        compress_seconds = nbytes / max(model.throughput, 1.0)
        write_seconds = ((nbytes / max(model.ratio, 1e-6))
                         / max(self._write_bandwidth, 1.0))
        return compress_seconds + write_seconds

    def choose_codec(self, nbytes: int,
                     candidates: tuple[str, ...] = DEFAULT_CODEC_CANDIDATES
                     ) -> str:
        """The cheapest codec for a payload of ``nbytes`` (the chooser)."""
        if nbytes <= 0:
            return candidates[0]
        return min(candidates,
                   key=lambda codec: self.codec_cost_seconds(codec, nbytes))

    def codec_summary(self) -> dict[str, dict]:
        """Per-codec model state, suitable for storing as run metadata."""
        return {
            codec: {
                "throughput_bytes_per_second": round(model.throughput, 1),
                "ratio": round(model.ratio, 4),
                "observations": model.observations,
            }
            for codec, model in sorted(self.codec_models.items())
        }

    def observe_restore(self, block_id: str, restore_seconds: float,
                        materialize_seconds: float | None = None) -> None:
        """Refine the restore/materialize scaling factor ``c`` (Eq. 3)."""
        entry = self.block(block_id)
        entry.total_restore_seconds += max(restore_seconds, 0.0)
        observed = max(restore_seconds, 0.0)
        if self.restore_observations == 0:
            self.restore_ewma = observed
        else:
            self.restore_ewma = 0.7 * self.restore_ewma + 0.3 * observed
        self.restore_observations += 1
        if materialize_seconds and materialize_seconds > 0:
            self._observed_ratios.append(restore_seconds / materialize_seconds)
            self.scaling_factor = (
                sum(self._observed_ratios) / len(self._observed_ratios))

    # ------------------------------------------------------------------ #
    # The Joint Invariant (Eq. 4)
    # ------------------------------------------------------------------ #
    def estimate_materialize_seconds(self, nbytes: int) -> float:
        """Expected time to serialize + write ``nbytes`` of checkpoint."""
        if nbytes <= 0:
            return 0.0
        return nbytes / max(self._throughput, 1.0)

    def joint_threshold(self, block_id: str) -> float:
        """Right-hand side of Eq. 4 for the block's current counters."""
        entry = self.block(block_id)
        n_i = max(entry.executions, 1)
        k_i = entry.checkpoints
        return (n_i / (k_i + 1)) * min(1.0 / (1.0 + self.scaling_factor),
                                       self.epsilon)

    def should_materialize(self, block_id: str, compute_seconds: float,
                           payload_nbytes: int) -> CheckpointDecision:
        """Test the Joint Invariant for one just-finished loop execution.

        The test runs *after* the execution but *before* materialization,
        hence ``k_i + 1`` in the threshold.  When adaptivity is disabled
        (the Figure 7 ablation) every execution is materialized.
        """
        estimated = self.estimate_materialize_seconds(payload_nbytes)
        if not self.enabled:
            decision = CheckpointDecision(
                materialize=True, ratio=0.0, threshold=float("inf"),
                estimated_materialize_seconds=estimated,
                compute_seconds=compute_seconds,
                reason="adaptive checkpointing disabled")
            self.block(block_id).last_decision = decision
            return decision

        compute = max(compute_seconds, 1e-9)
        ratio = estimated / compute
        threshold = self.joint_threshold(block_id)
        materialize = ratio < threshold
        decision = CheckpointDecision(
            materialize=materialize, ratio=ratio, threshold=threshold,
            estimated_materialize_seconds=estimated,
            compute_seconds=compute_seconds,
            reason=("joint invariant satisfied" if materialize else
                    "materialization too expensive relative to computation"))
        self.block(block_id).last_decision = decision
        return decision

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def overhead_fraction(self, block_id: str | None = None) -> float:
        """Materialization overhead as a fraction of computation time."""
        if block_id is not None:
            entries = [self.block(block_id)]
        else:
            entries = list(self.stats.values())
        compute = sum(entry.total_compute_seconds for entry in entries)
        materialize = sum(entry.total_materialize_seconds for entry in entries)
        if compute <= 0:
            return 0.0
        return materialize / compute

    def summary(self) -> dict[str, dict]:
        """Per-block counters, suitable for storing as run metadata."""
        return {
            block_id: {
                "executions": entry.executions,
                "checkpoints": entry.checkpoints,
                "total_compute_seconds": entry.total_compute_seconds,
                "total_materialize_seconds": entry.total_materialize_seconds,
                "total_background_seconds": entry.total_background_seconds,
                "total_restore_seconds": entry.total_restore_seconds,
            }
            for block_id, entry in self.stats.items()
        }

    def iteration_stats(self) -> dict:
        """Per-iteration timing statistics for the replay scheduler.

        Persisted into store metadata at record-session close, this is what
        lets replay balance work segments by *estimated recompute + restore
        cost* instead of iteration count.  Background (spool) timings stand
        in for main-thread materialization seconds when available — they
        are the real serialize+compress+write cost.
        """
        executions = sum(entry.executions for entry in self.stats.values())
        checkpoints = sum(entry.checkpoints for entry in self.stats.values())
        compute = sum(entry.total_compute_seconds
                      for entry in self.stats.values())
        materialize = sum(entry.total_background_seconds
                          or entry.total_materialize_seconds
                          for entry in self.stats.values())
        mean_compute = compute / executions if executions else 0.0
        mean_materialize = materialize / checkpoints if checkpoints else 0.0
        stats = {
            "per_iteration_compute_seconds": {
                str(iteration): round(seconds, 6)
                for iteration, seconds in sorted(
                    self.iteration_seconds.items())},
            "mean_compute_seconds": round(mean_compute, 6),
            "mean_materialize_seconds": round(mean_materialize, 6),
            "estimated_restore_seconds": round(
                self.scaling_factor * mean_materialize, 6),
        }
        if self.restore_observations:
            stats["observed_restore_seconds"] = round(self.restore_ewma, 6)
            stats["restore_observations"] = self.restore_observations
        return stats
