"""The record phase: logging, adaptive checkpointing, background
materialization, the SkipBlock construct, and the record-script driver."""

from .adaptive import AdaptiveController, BlockStats, CheckpointDecision
from .logger import LogManager, LogRecord, merge_logs, read_log
from .materializer import (ForkMaterializer, IPCQueueMaterializer,
                           MATERIALIZER_NAMES, MaterializationTicket,
                           Materializer, SequentialMaterializer,
                           SharedMemoryMaterializer, ThreadMaterializer,
                           create_materializer)
from .recorder import RecordResult, record_script, record_source
from .skipblock import SkipBlock

__all__ = [
    "LogRecord", "LogManager", "read_log", "merge_logs",
    "AdaptiveController", "BlockStats", "CheckpointDecision",
    "Materializer", "MaterializationTicket", "SequentialMaterializer",
    "ThreadMaterializer", "IPCQueueMaterializer", "ForkMaterializer",
    "SharedMemoryMaterializer", "create_materializer", "MATERIALIZER_NAMES",
    "SkipBlock",
    "RecordResult", "record_script", "record_source",
]
