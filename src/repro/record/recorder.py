"""The record phase driver (Section 3.1).

``record_script`` takes a plain training script, instruments it (SkipBlocks
around nested training loops, the Flor generator around the main loop),
executes it under a record-mode session, and leaves behind everything the
replay phase needs: the checkpoint store, the record log, the snapshot of
the original source, and the instrumentation metadata.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.instrument import InstrumentationResult, instrument_source
from ..analysis.lint import lint_source
from ..config import FlorConfig, get_config
from ..exceptions import RecordError, ReplaySafetyWarning
from ..modes import Mode
from ..record.logger import LogRecord
from ..session import Session
from ..utils.naming import new_run_id
from ..utils.timing import monotonic

__all__ = ["RecordResult", "record_script", "record_source"]

#: Filename under which the user's original source is snapshotted.
ORIGINAL_SOURCE_NAME = "script.py"
#: Filename under which the instrumented source is kept (for inspection).
INSTRUMENTED_SOURCE_NAME = "script.instrumented.py"


@dataclass
class RecordResult:
    """Summary of one record-phase execution."""

    run_id: str
    run_dir: Path
    wall_seconds: float
    materialization_main_thread_seconds: float
    checkpoint_count: int
    stored_nbytes: int
    storage_backend: str = "local"
    log_records: list[LogRecord] = field(default_factory=list)
    instrumentation: InstrumentationResult | None = None

    @property
    def overhead_fraction(self) -> float:
        """Record overhead as a fraction of total wall time (approximate)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.materialization_main_thread_seconds / self.wall_seconds


def record_script(script_path: str | Path, name: str | None = None,
                  config: FlorConfig | None = None,
                  script_globals: dict | None = None,
                  run_id: str | None = None) -> RecordResult:
    """Record a training script stored on disk."""
    script_path = Path(script_path)
    if not script_path.exists():
        raise RecordError(f"training script not found: {script_path}")
    source = script_path.read_text(encoding="utf-8")
    return record_source(source, name=name or script_path.stem, config=config,
                         script_globals=script_globals, run_id=run_id)


def record_source(source: str, name: str | None = None,
                  config: FlorConfig | None = None,
                  script_globals: dict | None = None,
                  run_id: str | None = None) -> RecordResult:
    """Instrument and record a training script given as source text.

    ``run_id`` overrides the generated identifier.  Distributed recorders
    use this to record under a worker identity
    (:func:`~repro.utils.naming.worker_run_id`, ``<job>@<rank>``) so the
    catalog can group K worker runs back into one logical job; the caller
    owns uniqueness — recording twice under one id overwrites in place.
    """
    config = config or get_config()
    run_id = run_id or new_run_id(name)

    # Replay-safety lint runs before any run directory exists, so a strict
    # failure leaves nothing behind.  Warnings don't block: the paper's
    # posture is warn-and-record, with replay-time checks as the backstop.
    lint_report = lint_source(source, filename=f"{name or 'script'}.py")
    hazards = lint_report.at_least("warning")
    if hazards:
        if config.strict_analysis:
            raise RecordError(
                "strict_analysis: script failed the replay-safety lint\n"
                + hazards.render_text())
        warnings.warn(
            "script has replay-safety hazards (set strict_analysis=True "
            "to fail instead):\n" + hazards.render_text(),
            ReplaySafetyWarning, stacklevel=2)

    instrumentation = instrument_source(source)

    session = Session(run_id=run_id, mode=Mode.RECORD, config=config)
    session.register_blocks(instrumentation.blocks)
    session.store.save_source(ORIGINAL_SOURCE_NAME, source)
    session.store.save_source(INSTRUMENTED_SOURCE_NAME,
                              instrumentation.instrumented_source)
    # The workload name groups runs of the same experiment in the multi-run
    # catalog ("my last 8 cifar runs"), independent of the unique run id.
    session.store.set_metadata("workload", name or "script")
    if lint_report:
        session.store.set_metadata("lint", lint_report.to_payload())

    exec_globals = {"__name__": "__main__", "__file__": ORIGINAL_SOURCE_NAME}
    if script_globals:
        exec_globals.update(script_globals)

    start = monotonic()
    code = compile(instrumentation.instrumented_source, ORIGINAL_SOURCE_NAME,
                   "exec")
    with session:
        exec(code, exec_globals)  # noqa: S102 - executing the user's own script
    wall_seconds = monotonic() - start

    return RecordResult(
        run_id=run_id,
        run_dir=session.run_dir,
        wall_seconds=wall_seconds,
        materialization_main_thread_seconds=
            session.materializer.stats.total_main_thread_seconds,
        checkpoint_count=session.store.checkpoint_count(),
        stored_nbytes=session.store.total_stored_nbytes(),
        storage_backend=session.store.backend.name,
        log_records=list(session.logs.records),
        instrumentation=instrumentation,
    )
