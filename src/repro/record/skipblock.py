"""The SkipBlock language construct (Section 4.2).

A SkipBlock encloses a loop and always applies the loop's side-effects to
the program state, in one of two ways: by executing the loop, or by skipping
it and loading its memoized side-effects from a Loop End Checkpoint.  Which
branch is taken depends on the session's execution phase (record / replay
initialization / replay execution), whether the enclosed loop is probed by a
hindsight logging statement, and whether a checkpoint is available — the
"parameterized branching" of the paper.

Usage (this is also what the instrumenter generates)::

    sb = flor.skipblock("train_loop")
    if sb.should_execute():
        for batch in trainloader:
            ...                      # the expensive nested training loop
    net, optimizer = sb.end(net=net, optimizer=optimizer)

``end`` memoizes the named values when the loop executed on record, and
restores them when the loop was skipped.  Values that implement
``load_state_dict`` are restored in place; plain Python values are returned
so the caller can rebind them.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Mapping

from ..analysis.augmentation import augment_changeset
from ..exceptions import ReplayError
from ..modes import Phase
from ..storage.serializer import ValueSnapshot, restore_value, snapshot_value
from ..telemetry import get_metrics, get_tracer
from ..utils.timing import monotonic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..session import Session

__all__ = ["SkipBlock", "UNDEFINED"]


class _Undefined:
    """Sentinel for a changeset variable that has no value in this process.

    On replay a skipped loop never binds its loop-scoped variables; if such a
    variable is in the changeset but missing from the checkpoint, the
    generated rebinding assigns this sentinel instead of crashing with a
    ``NameError`` at the ``end()`` call site.
    """

    _instance: "_Undefined | None" = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<flor.UNDEFINED>"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()


class SkipBlock:
    """One dynamic activation of a SkipBlock (one enclosing-loop iteration)."""

    def __init__(self, session: "Session", block_id: str):
        self.session = session
        self.block_id = block_id
        self.execution_index = session.next_execution_index(block_id)
        self._executed: bool | None = None
        self._start_time: float | None = None
        self._restore_index: int | None = None

    # ------------------------------------------------------------------ #
    # Parameterized branching
    # ------------------------------------------------------------------ #
    def should_execute(self) -> bool:
        """Decide whether the enclosed loop must run in this activation."""
        phase = self.session.phase
        if phase is Phase.RECORD:
            decision = True
        elif phase is Phase.REPLAY_INIT:
            # Nearest-earlier (weak) restoration is allowed only at the
            # initialization plan's designated restore iteration; any other
            # init iteration must exact-restore or recompute, or replay
            # silently rewinds to stale state (the weak-init divergence bug).
            decision = not self._restorable(
                weak_ok=self.session.allows_weak_restore(self.execution_index))
        elif phase is Phase.REPLAY_EXEC:
            if self.block_id in self.session.probed_blocks:
                decision = True
            else:
                decision = not self._restorable(weak_ok=False)
        else:  # pragma: no cover - defensive
            raise ReplayError(f"unknown phase {phase!r}")

        self._executed = decision
        if decision:
            self._start_time = monotonic()
        return decision

    def _restorable(self, weak_ok: bool) -> bool:
        """Whether a usable checkpoint exists for this activation."""
        store = self.session.store
        if store.contains(self.block_id, self.execution_index):
            self._restore_index = self.execution_index
            return True
        if weak_ok:
            nearest = store.latest_execution_at_or_before(
                self.block_id, self.execution_index)
            if nearest is not None:
                self._restore_index = nearest
                return True
        return False

    # ------------------------------------------------------------------ #
    # Side-effect memoization and restoration
    # ------------------------------------------------------------------ #
    def end(self, _namespace: Mapping[str, object] | None = None,
            **named_values) -> tuple:
        """Close the SkipBlock: memoize or restore, then return the values.

        ``named_values`` are the loop's statically-estimated changeset,
        passed by name.  ``_namespace`` (typically ``{**globals(),
        **locals()}`` at the call site) lets runtime augmentation find
        indirectly-mutated objects such as the model behind an optimizer.
        """
        if self._executed is None:
            raise ReplayError(
                f"SkipBlock {self.block_id!r}.end() called before "
                "should_execute()")
        if self._executed:
            result = self._memoize(named_values, _namespace)
        else:
            result = self._restore(named_values, _namespace)
        if len(named_values) == 1:
            return (result[0],)
        return result

    def end_from_namespace(self, names: list[str],
                           namespace: Mapping[str, object]) -> dict:
        """Close the SkipBlock using a namespace lookup instead of kwargs.

        This is the form the auto-instrumenter generates: the changeset
        ``names`` are looked up in ``namespace`` (so names that are not yet
        bound — loop-scoped variables on a skipped replay — do not raise),
        and the result is a mapping from name to the value the caller should
        rebind.  Missing values come back as :data:`UNDEFINED`.
        """
        named_values = {name: namespace[name] for name in names
                        if name in namespace}
        if self._executed is None:
            raise ReplayError(
                f"SkipBlock {self.block_id!r}.end_from_namespace() called "
                "before should_execute()")
        if self._executed:
            values = self._memoize(named_values, namespace)
        else:
            # Ask _restore about every requested name, not only the bound
            # ones, so loop-scoped variables come back from the checkpoint.
            request = {name: named_values.get(name, UNDEFINED) for name in names}
            values = self._restore(request, namespace)
            return {name: value for name, value in zip(request, values)}
        result = dict(zip(named_values, values))
        for name in names:
            result.setdefault(name, UNDEFINED)
        return result

    # -- record / probed-re-execution path --------------------------------
    def _memoize(self, named_values: dict, namespace: Mapping | None) -> tuple:
        compute_seconds = 0.0
        if self._start_time is not None:
            compute_seconds = monotonic() - self._start_time

        if self.session.phase is not Phase.RECORD:
            # Probed re-execution on replay produces hindsight logs but does
            # not create new checkpoints.
            return tuple(named_values.values())

        session = self.session
        session.adaptive.observe_execution(self.block_id, compute_seconds,
                                           iteration=session.current_iteration)

        with get_tracer().span("record.capture", block_id=self.block_id,
                               execution_index=self.execution_index) as capture:
            # Runtime changeset augmentation with library knowledge.
            capture_names = list(named_values)
            if namespace:
                augmented = augment_changeset(set(named_values), namespace)
                for name in sorted(augmented - set(named_values)):
                    if name in namespace:
                        capture_names.append(name)

            snapshots: list[ValueSnapshot] = []
            payload_nbytes = 0
            for name in capture_names:
                value = named_values.get(name, namespace.get(name) if namespace else None)
                if inspect.ismodule(value):
                    # Table 1's method-call rule conservatively adds the call's
                    # receiver to the changeset, which drags modules in when the
                    # loop calls e.g. ``time.sleep``.  Modules are import
                    # machinery, not training state — never checkpoint them.
                    continue
                snapshot = snapshot_value(name, value)
                payload_nbytes += snapshot.nbytes()
                snapshots.append(snapshot)

            decision = session.adaptive.should_materialize(
                self.block_id, compute_seconds, payload_nbytes)
            capture.set(nbytes=payload_nbytes,
                        materialize=decision.materialize)
            if decision.materialize:
                get_metrics().inc("record.checkpoints")
                get_metrics().inc("record.checkpoint_bytes", payload_nbytes)
                ticket = session.materializer.submit(
                    self.block_id, self.execution_index, snapshots)
                # An async submit's main-thread time is just the enqueue cost;
                # feeding nbytes/enqueue-time into the throughput model would
                # inflate it absurdly.  Pass nbytes only for inline completions;
                # async strategies refine throughput through the background
                # completion callback instead.
                session.adaptive.observe_materialization(
                    self.block_id, ticket.main_thread_seconds,
                    payload_nbytes if ticket.completed_inline else 0)
            else:
                get_metrics().inc("record.checkpoints_skipped")
        return tuple(named_values.values())

    # -- skip-and-restore path ---------------------------------------------
    def _restore(self, named_values: dict, namespace: Mapping | None) -> tuple:
        session = self.session
        index = self._restore_index
        if index is None:  # pragma: no cover - defensive
            raise ReplayError(
                f"SkipBlock {self.block_id!r} was skipped but no checkpoint "
                f"index was resolved")
        start = monotonic()
        with get_tracer().span("replay.restore", block_id=self.block_id,
                               execution_index=self.execution_index,
                               restore_index=index,
                               weak=index != self.execution_index):
            snapshots = session.store.get(self.block_id, index,
                                          run_id=session.run_id)
            by_name = {snapshot.name: snapshot for snapshot in snapshots}

            restored = dict(named_values)
            for name, live_value in named_values.items():
                snapshot = by_name.pop(name, None)
                if snapshot is not None:
                    restored[name] = restore_value(snapshot, live_value)

            # Snapshots that were captured through runtime augmentation (for
            # example the model behind the optimizer) are restored in place via
            # the namespace when possible.
            if namespace:
                for name, snapshot in by_name.items():
                    live = namespace.get(name)
                    if live is not None:
                        restore_value(snapshot, live)

        restore_seconds = monotonic() - start
        get_metrics().inc("replay.restores")
        session.adaptive.observe_restore(self.block_id, restore_seconds)
        return tuple(restored.values())
