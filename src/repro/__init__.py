"""Reproduction of "Hindsight Logging for Model Training" (Flor, VLDB 2020).

Hindsight logging lets a model developer add ordinary log statements to a
training script *after* a run finished and still get their output quickly,
by combining low-overhead checkpointing at record time with partial and
parallel replay.  This package implements the full system:

* :mod:`repro.torchlike` — a NumPy PyTorch-like substrate the workloads
  train against,
* :mod:`repro.analysis` — static side-effect analysis and automatic
  instrumentation,
* :mod:`repro.record` / :mod:`repro.replay` — the record-replay engine
  (SkipBlocks, adaptive checkpointing, background materialization,
  hindsight parallelism, deferred correctness checks),
* :mod:`repro.storage` — the SQLite-indexed checkpoint store and cloud
  cost models,
* :mod:`repro.workloads` — miniature versions of the paper's eight
  evaluation workloads,
* :mod:`repro.sim` — the paper-scale evaluation simulator that regenerates
  every table and figure,
* :mod:`repro.api` — the user-facing ``flor``-style interface.
"""

from . import analysis, api, record, replay, storage, telemetry, torchlike
from .api import (Diagnostic, DiagnosticReport, DiffResult, DiffStats,
                  ExplainReport, GCReport, JobGroup, ProbeAnalysis,
                  ProbeClass, PruneReport, QueryResult, QueryStats,
                  RecordResult, ReplayResult, RetentionPolicy, RunCatalog,
                  RunEntry, Severity, StorageStats, ValueDrift,
                  WorkerResult, analyze_probe, diff, explain, gc,
                  lint_path, lint_run, lint_source, log, loop, prune,
                  record_script, record_session, record_source,
                  replay_script, replay_session, run_parallel_replay,
                  skipblock, storage_stats)
# NOTE: binds the name ``query`` to the entry-point *function*, shadowing
# the ``repro.query`` subpackage attribute (like ``datetime.datetime``).
# ``from repro.query.planner import ...`` still resolves the modules.
from .api import query
from .config import FlorConfig, get_config, reset_config, set_config
from .exceptions import (CheckpointNotFoundError, ConfigError, FlorError,
                         InstrumentationError, QueryError, RecordError,
                         ReplayAnomalyError, ReplayError,
                         ReplaySafetyError, ReplaySafetyWarning,
                         SerializationError, ServiceBusy, ServiceError,
                         SideEffectAnalysisError, SimulationError,
                         StorageError, WorkloadError)
from .service import ServiceClient, connect
from .modes import InitStrategy, Mode, Phase
from .session import Session, get_active_session

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "analysis", "api", "record", "replay", "storage", "telemetry",
    "torchlike",
    "log", "loop", "skipblock",
    "record_session", "replay_session", "record_script", "record_source",
    "replay_script", "run_parallel_replay",
    "RecordResult", "ReplayResult", "WorkerResult",
    "query", "QueryResult", "QueryStats", "RunCatalog", "RunEntry",
    "JobGroup",
    "explain", "ExplainReport",
    "diff", "DiffResult", "DiffStats", "ValueDrift",
    "connect", "ServiceClient",
    "gc", "prune", "storage_stats",
    "RetentionPolicy", "PruneReport", "GCReport", "StorageStats",
    "lint_source", "lint_path", "lint_run",
    "Diagnostic", "DiagnosticReport", "Severity",
    "analyze_probe", "ProbeAnalysis", "ProbeClass",
    "FlorConfig", "get_config", "set_config", "reset_config",
    "Mode", "Phase", "InitStrategy",
    "Session", "get_active_session",
    "FlorError", "RecordError", "ReplayError", "ReplayAnomalyError",
    "ReplaySafetyError", "ReplaySafetyWarning",
    "CheckpointNotFoundError", "InstrumentationError",
    "SideEffectAnalysisError", "StorageError", "SerializationError",
    "ConfigError", "QueryError", "ServiceError", "ServiceBusy",
    "SimulationError", "WorkloadError",
]
