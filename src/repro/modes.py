"""Execution modes and phases shared by the record and replay machinery.

The SkipBlock's "parameterized branching" (Section 4.2) keys off this state:
whether the process is recording or replaying, and — within replay —
whether the current main-loop iteration belongs to the worker's
initialization segment or its work segment (Section 5.4.2).
"""

from __future__ import annotations

import enum

__all__ = ["Mode", "Phase", "InitStrategy"]


class Mode(str, enum.Enum):
    """Top-level execution mode of a Flor session."""

    RECORD = "record"
    REPLAY = "replay"


class Phase(str, enum.Enum):
    """Fine-grained execution phase, as seen by SkipBlocks."""

    #: Record execution: loops run normally and are memoized.
    RECORD = "record"
    #: Replay initialization: loops are skipped, side-effects restored from
    #: checkpoints, so the worker reaches its work segment's starting state.
    REPLAY_INIT = "replay_init"
    #: Replay execution: loops are re-executed only if probed; otherwise
    #: skipped and restored.
    REPLAY_EXEC = "replay_exec"


class InitStrategy(str, enum.Enum):
    """Worker initialization strategy for parallel replay (Section 5.4.2)."""

    #: Initialize every main-loop iteration preceding the work segment
    #: (correct by construction; the default).
    STRONG = "strong"
    #: Initialize only the iteration immediately preceding the work segment
    #: (depends entirely on that iteration's checkpoint).
    WEAK = "weak"
