"""``python -m repro.serve`` — run the multi-tenant hindsight query daemon.

Binds the :class:`~repro.service.server.QueryService` on a TCP port or a
Unix socket and serves until SIGTERM/SIGINT, then drains gracefully:
in-flight requests finish (up to ``--drain-seconds``), new ones are
refused with ``SHUTTING_DOWN``, and the process exits 0 on a clean drain
(3 when the drain deadline expired with work still in flight).

The bound address is printed to stdout as the first line (``listening
<addr>``), so scripts can start the daemon on port 0 and scrape the
ephemeral port.  ``--trace-out`` writes the daemon's flight-recorder
spans as a telemetry JSON document on exit — CI uploads it as the
service-smoke artifact, and ``python -m repro.trace <file>`` renders it.

Examples::

    python -m repro.serve --home /tmp/flor-home --port 7461
    python -m repro.serve --socket /tmp/flor.sock --workers 4
    python -m repro.serve --port 0 --telemetry --trace-out service.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import signal
import sys
import threading
from pathlib import Path

from . import telemetry
from .config import get_config
from .exceptions import FlorError
from .service.server import QueryService

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve concurrent hindsight queries from one daemon.")
    parser.add_argument("--home", metavar="DIR",
                        help="Flor home to serve (default: the "
                             "configured home)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP bind port (default 0: ephemeral, "
                             "printed on stdout)")
    parser.add_argument("--socket", metavar="PATH", dest="socket_path",
                        help="serve on a Unix socket instead of TCP")
    parser.add_argument("--workers", type=int, metavar="N",
                        help="replay worker-pool size (default "
                             "FlorConfig.service_workers)")
    parser.add_argument("--queue-size", type=int, metavar="N",
                        help="admission queue bound (default "
                             "FlorConfig.service_queue_size)")
    parser.add_argument("--drain-seconds", type=float, metavar="S",
                        help="graceful-drain budget on SIGTERM (default "
                             "FlorConfig.service_drain_seconds)")
    parser.add_argument("--telemetry", action="store_true",
                        help="turn on the flight recorder for the daemon")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write captured telemetry spans to FILE as "
                             "a JSON document on exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    overrides: dict = {}
    if args.home:
        overrides["home"] = Path(args.home)
    if args.telemetry:
        overrides["telemetry"] = True
    config = dataclasses.replace(get_config(), **overrides) \
        if overrides else get_config()

    # Handlers go in BEFORE the readiness banner: anyone scripting this
    # daemon treats the banner as "safe to signal".
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda _sig, _frame: stop.set())

    try:
        service = QueryService(config=config, host=args.host,
                               port=args.port,
                               socket_path=args.socket_path,
                               workers=args.workers,
                               queue_size=args.queue_size).start()
    except (FlorError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"listening {service.address}", flush=True)

    # The accept loop and every request run on their own threads, so the
    # main thread's only job is to wait for the stop signal and then
    # drive the drain.  The wait must be a timed poll, not a bare
    # ``stop.wait()``: the kernel may deliver a process-directed SIGTERM
    # to any of the worker threads, and the Python-level handler then
    # only runs once the main thread returns to the interpreter loop —
    # which a main thread parked forever in an untimed lock wait never
    # does.
    while not stop.is_set():
        stop.wait(0.2)

    drained = service.shutdown(drain_seconds=args.drain_seconds)
    if args.trace_out:
        spans = telemetry.get_tracer().export()
        Path(args.trace_out).write_text(
            json.dumps({"version": 1, "spans": spans}),
            encoding="utf-8")
    print(f"drained={'clean' if drained else 'timeout'}", flush=True)
    return 0 if drained else 3


if __name__ == "__main__":
    sys.exit(main())
