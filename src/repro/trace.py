"""``python -m repro.trace`` — the flight-recorder timeline CLI.

Targets may be recorded run ids (any unambiguous prefix; the telemetry
document a ``telemetry=True`` session persisted at close is read from the
run's store metadata) or JSON files holding either a persisted telemetry
document or a previously exported Chrome trace.  Spans from every target
merge onto one timeline.

Output formats: ``table`` (default) renders the nesting-indented terminal
timeline; ``chrome`` emits Chrome trace-event JSON loadable in
``chrome://tracing`` or Perfetto.  Exit status: 0 when spans were found
and rendered, 1 when the targets resolved but carried no spans, 2 on
usage or target-resolution errors.

Examples::

    python -m repro.trace my-run-id
    python -m repro.trace my-run-id --format chrome --output trace.json
    python -m repro.trace bench_trace.json --limit 40
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .config import get_config
from .exceptions import FlorError
from .query.catalog import RunCatalog
from .storage.checkpoint_store import CheckpointStore
from .telemetry import METADATA_KEY, chrome_trace, render_timeline
from .telemetry.document import document_spans, spans_from_chrome_trace
from .telemetry.tracer import Span

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Render captured flight-recorder telemetry.")
    parser.add_argument("targets", nargs="+",
                        help="recorded run ids, telemetry-document JSON "
                             "files, or Chrome trace JSON files")
    parser.add_argument("--format", choices=["table", "chrome"],
                        default="table",
                        help="timeline table (default) or Chrome "
                             "trace-event JSON")
    parser.add_argument("--output", metavar="FILE",
                        help="write the rendering to FILE instead of "
                             "stdout")
    parser.add_argument("--limit", type=int, metavar="N",
                        help="table format: render at most N spans")
    return parser


def _spans_from_file(path: Path) -> list[Span]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise FlorError(f"cannot read trace file {path}: {exc}") from exc
    if isinstance(payload, dict) and "traceEvents" in payload:
        return spans_from_chrome_trace(payload)
    if isinstance(payload, dict) and "spans" in payload:
        return document_spans(payload)
    raise FlorError(
        f"{path} is neither a telemetry document nor a Chrome trace")


def _spans_from_run(run_id: str, catalog: RunCatalog) -> list[Span]:
    matches = catalog.select(run_id)
    if not matches:
        raise FlorError(
            f"target {run_id!r} is neither a file nor a cataloged run")
    if len(matches) > 1:
        raise FlorError(
            f"run id prefix {run_id!r} is ambiguous: "
            f"{', '.join(entry.run_id for entry in matches)}")
    entry = matches[0]
    store = CheckpointStore.for_config(Path(entry.run_dir),
                                       catalog.config)
    try:
        document = store.get_metadata(METADATA_KEY)
    finally:
        store.close()
    if not isinstance(document, dict):
        raise FlorError(
            f"run {entry.run_id} has no persisted telemetry (record it "
            "with FlorConfig(telemetry=True))")
    return document_spans(document)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    spans: list[Span] = []
    catalog: RunCatalog | None = None
    try:
        for target in args.targets:
            path = Path(target)
            if path.is_file():
                spans.extend(_spans_from_file(path))
                continue
            if catalog is None:
                catalog = RunCatalog.open(get_config())
            spans.extend(_spans_from_run(target, catalog))
    except FlorError as exc:
        print(f"repro.trace: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "chrome":
        text = json.dumps(chrome_trace(spans), indent=2)
    else:
        text = render_timeline(spans, limit=args.limit)

    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    else:
        print(text)
    return 0 if spans else 1


if __name__ == "__main__":
    sys.exit(main())
