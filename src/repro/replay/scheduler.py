"""Checkpoint-aware replay scheduling (beyond Section 5.4.1's uniform split).

The paper partitions the main loop's iterations uniformly across workers and
assumes every segment boundary is restorable.  Under adaptive checkpointing
(Section 5.3) that assumption breaks: the controller materializes a *sparse*
subset of Loop End Checkpoints, so a uniform boundary often falls on an
iteration with no checkpoint and the worker must recompute the gap from the
nearest earlier one — or, worse, silently start from stale state.

This module replaces the uniform split with a scheduler that

* asks the checkpoint store which execution indices were *actually*
  materialized for every main-loop block (``CheckpointStore.list_executions``)
  and intersects them into the set of **aligned** iterations — iterations
  whose end-state is fully restorable;
* weighs iterations by the per-iteration timing statistics the record phase
  persists into store metadata (``iteration_stats``), so segments are
  balanced by *estimated recompute + restore cost* instead of iteration
  count; and
* offers two scheduling modes (``FlorConfig.replay_scheduler``):

  ``"static"``
      Each worker independently derives the same checkpoint-aligned,
      cost-balanced contiguous segment for its pid — deterministic and
      coordination-free, like the paper's split.
  ``"dynamic"``
      The iteration range is cut into checkpoint-aligned chunks of roughly
      ``replay_chunk_size`` iterations and workers *pull* chunks from a
      shared queue (SQLite-backed across processes), so a straggler chunk
      no longer bounds wall time the way a contiguous split does.

  A third value, ``"uniform"``, keeps the paper's original split for
  ablation and benchmarking.

Every scheduling mode also produces the worker's **initialization plan**:
the iteration to restore from (weak initialization) plus the gap of
iterations that must be recomputed forward to reach the segment start —
the fix for the weak-init divergence bug where a missing boundary
checkpoint silently replayed from stale state.
"""

from __future__ import annotations

import sqlite3
import time
import warnings
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..exceptions import ReplayError
from .partition import WorkSegment, partition_indices

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..config import FlorConfig
    from ..session import Session
    from ..storage.checkpoint_store import CheckpointStore

__all__ = [
    "SCHEDULER_MODES", "MAIN_LOOP_INDEX_LIMIT", "InitPlan", "IterationCosts",
    "aligned_checkpoints", "candidate_starts", "load_iteration_costs",
    "nearest_aligned_at_or_before", "plan_static_segments", "plan_chunks",
    "InProcessChunkQueue", "SqliteChunkQueue", "ReplayScheduler",
]

#: Scheduling modes accepted by ``FlorConfig.replay_scheduler``.
SCHEDULER_MODES = ("uniform", "static", "dynamic")

#: Execution indices at or above this value are composite (a block entered
#: more than once in one iteration) or synthetic; they never denote a
#: main-loop iteration boundary.  Mirrors ``Session.next_execution_index``.
MAIN_LOOP_INDEX_LIMIT = 1_000_000

#: Fallback per-iteration compute estimate when a run predates (or lost) the
#: recorded ``iteration_stats`` metadata.  Only relative magnitudes matter.
DEFAULT_ITERATION_SECONDS = 1.0


# --------------------------------------------------------------------------- #
# Initialization plans
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class InitPlan:
    """How one worker reaches the starting state of a work segment.

    ``restore_index`` is the single iteration run in replay-initialization
    mode with *weak* (nearest-checkpoint) restoration allowed — always an
    aligned iteration, so the restore is exact.  ``recompute`` is the gap of
    iterations run forward from that state (each SkipBlock inside them may
    still exact-restore when its own checkpoint exists, and executes
    otherwise).  Strong initialization is the degenerate plan with no
    restore index and ``recompute`` covering the whole prefix.
    """

    restore_index: int | None
    recompute: range

    def indices(self) -> list[int]:
        """Initialization iterations, in execution order."""
        head = [] if self.restore_index is None else [self.restore_index]
        return head + list(self.recompute)

    def __len__(self) -> int:
        return (0 if self.restore_index is None else 1) + len(self.recompute)


# --------------------------------------------------------------------------- #
# Cost model
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class IterationCosts:
    """Per-iteration replay cost estimates, from recorded timing stats.

    ``per_iteration`` holds measured compute seconds per main-loop iteration
    (summed over that iteration's SkipBlock executions);
    ``mean_compute_seconds`` covers iterations with no measurement, and
    ``restore_seconds`` estimates one checkpoint restoration (the paper's
    ``R_i = c * M_i``, Eq. 3).
    """

    per_iteration: dict[int, float] = field(default_factory=dict)
    mean_compute_seconds: float = DEFAULT_ITERATION_SECONDS
    restore_seconds: float = 0.0

    def compute(self, index: int) -> float:
        """Estimated seconds to re-execute iteration ``index``."""
        return max(self.per_iteration.get(index, self.mean_compute_seconds),
                   1e-9)

    def span_compute_seconds(self, start: int, stop: int) -> float:
        """Estimated seconds to re-execute iterations ``[start, stop)``.

        The hindsight query planner prices replay spans and restore-vs-
        bridge decisions with this sum.
        """
        return sum(self.compute(index) for index in range(start,
                                                          max(start, stop)))

    def replay_cost(self, index: int, restorable: bool,
                    probed: bool = False) -> float:
        """Estimated seconds iteration ``index`` costs during replay-exec."""
        if probed or not restorable:
            return self.compute(index)
        # A restorable, un-probed iteration is skipped and restored; keep the
        # estimate strictly positive so balancing never divides by zero.
        return max(self.restore_seconds,
                   min(0.1 * self.mean_compute_seconds, self.compute(index)),
                   1e-9)


def load_iteration_costs(store: "CheckpointStore",
                         scaling_factor: float = 1.0) -> IterationCosts:
    """Build the cost model from the run's ``iteration_stats`` metadata.

    The record phase persists per-iteration compute seconds and mean
    materialization seconds at session close; runs recorded before that
    metadata existed fall back to uniform unit costs, which degrades the
    scheduler to count-balanced (but still checkpoint-aligned) segments.
    """
    stats = store.get_metadata("iteration_stats") or {}
    per = {}
    for key, seconds in (stats.get("per_iteration_compute_seconds") or {}).items():
        try:
            per[int(key)] = max(float(seconds), 0.0)
        except (TypeError, ValueError):
            continue
    mean = stats.get("mean_compute_seconds")
    if not mean or mean <= 0:
        mean = (sum(per.values()) / len(per)) if per else DEFAULT_ITERATION_SECONDS
    # Prefer the restore-duration EWMA a telemetry-on replay wrote back
    # over the record-time ``scaling_factor * materialize`` prior: it is
    # measured on the real restore path (deserialize + reassemble + read).
    restore = stats.get("observed_restore_seconds")
    if not restore or restore <= 0:
        restore = stats.get("estimated_restore_seconds")
    if not restore or restore <= 0:
        materialize = stats.get("mean_materialize_seconds") or 0.0
        restore = scaling_factor * float(materialize)
    return IterationCosts(per_iteration=per,
                          mean_compute_seconds=float(mean),
                          restore_seconds=max(float(restore), 0.0))


# --------------------------------------------------------------------------- #
# Checkpoint alignment
# --------------------------------------------------------------------------- #
def aligned_checkpoints(store: "CheckpointStore", total: int,
                        loop_blocks: Iterable[str] | None = None) -> list[int]:
    """Main-loop iterations whose end-state is fully restorable.

    An iteration ``i`` is *aligned* when **every** main-loop SkipBlock has a
    materialized checkpoint at execution index ``i`` — restoring iteration
    ``i`` then reproduces the record-phase state exactly, so a work segment
    may start at ``i + 1``.  Blocks outside the main loop use their own
    counters and run identically in every worker; they do not constrain
    alignment.
    """
    if total <= 0:
        return []
    blocks = list(loop_blocks) if loop_blocks is not None else None
    if blocks is None:
        blocks = store.get_metadata("loop_blocks")
    if not blocks:
        # Pre-metadata runs: conservatively treat any block with a plain
        # (non-composite) execution index inside the loop range as main-loop.
        blocks = [block_id for block_id in store.blocks()
                  if any(0 <= index < min(total, MAIN_LOOP_INDEX_LIMIT)
                         for index in store.list_executions(block_id))]
    if not blocks:
        return []
    aligned: set[int] | None = None
    for block_id in blocks:
        indices = {index for index in store.list_executions(block_id)
                   if 0 <= index < min(total, MAIN_LOOP_INDEX_LIMIT)}
        aligned = indices if aligned is None else aligned & indices
        if not aligned:
            return []
    return sorted(aligned or ())


def nearest_aligned_at_or_before(aligned: Sequence[int],
                                 index: int) -> int | None:
    """Largest aligned iteration ``<= index``, or None.

    ``aligned`` must be sorted ascending (as :func:`aligned_checkpoints`
    returns it).  Shared by init planning and the hindsight query planner:
    both need the exact-restorable iteration closest below a target.
    """
    position = bisect_right(aligned, index)
    return aligned[position - 1] if position else None


def candidate_starts(total: int, aligned: Sequence[int]) -> list[int]:
    """Iteration indices where a work segment may begin.

    ``0`` is always a valid start (no state precedes it); every aligned
    iteration ``i`` makes ``i + 1`` a valid start.
    """
    starts = {0}
    for index in aligned:
        if 0 <= index + 1 < total:
            starts.add(index + 1)
    return sorted(starts)


# --------------------------------------------------------------------------- #
# Static (per-worker deterministic) planning
# --------------------------------------------------------------------------- #
def plan_static_segments(total: int, num_workers: int,
                         aligned: Sequence[int], costs: IterationCosts,
                         probed: bool = False) -> list[WorkSegment]:
    """Checkpoint-aligned, cost-balanced contiguous segments, one per worker.

    Boundaries are chosen only from aligned starts; segments are balanced by
    estimated replay cost (restore for memoized iterations, recompute for the
    rest, plus one restore charge per non-zero segment start).  The split
    minimizes the *bottleneck* segment cost exactly — binary search on the
    bottleneck with a greedy feasibility packing, the classic min-max
    contiguous partition — because the slowest worker bounds replay wall
    time (Figure 13's load-balancing limit).  When there are fewer aligned
    boundaries than workers, trailing workers receive empty segments rather
    than boundaries that would force duplicated recompute.  With no aligned
    checkpoints at all, the plan falls back to the paper's uniform split —
    every worker recomputes either way, and uniform spreads that recompute
    evenly.
    """
    if num_workers < 1:
        raise ReplayError(f"num_workers must be >= 1, got {num_workers}")
    if total <= 0:
        return [WorkSegment(0, 0) for _ in range(num_workers)]
    if num_workers == 1:
        return [WorkSegment(0, total)]
    if not aligned:
        return [partition_indices(total, num_workers, pid)
                for pid in range(num_workers)]

    restorable = set(aligned)
    prefix = [0.0]
    for index in range(total):
        prefix.append(prefix[-1] + costs.replay_cost(
            index, index in restorable, probed=probed))
    bounds = candidate_starts(total, aligned) + [total]
    startup = max(costs.restore_seconds, 0.0)

    def segment_cost(start: int, end: int) -> float:
        if end <= start:
            return 0.0
        return (startup if start > 0 else 0.0) + prefix[end] - prefix[start]

    def pack(limit: float) -> list[int] | None:
        """Greedy packing: segment ends staying under ``limit`` (or None)."""
        ends: list[int] = []
        position = 0
        while bounds[position] < total:
            if len(ends) == num_workers:
                return None
            farthest = position
            while (farthest + 1 < len(bounds) and segment_cost(
                    bounds[position], bounds[farthest + 1]) <= limit):
                farthest += 1
            if farthest == position:
                return None  # even one aligned hop exceeds the limit
            ends.append(bounds[farthest])
            position = farthest
        return ends

    # The bottleneck optimum lies between the heaviest single aligned hop
    # (no split can do better) and the whole range on one worker.
    low = max(segment_cost(bounds[i], bounds[i + 1])
              for i in range(len(bounds) - 1))
    high = segment_cost(0, total) + startup
    assert pack(high) is not None  # one worker can always take everything
    for _ in range(48):
        middle = (low + high) / 2.0
        if pack(middle) is None:
            low = middle
        else:
            high = middle
    limit = high

    # Farthest reachable bound per position at the optimal bottleneck, and
    # the fewest segments needed to finish from each bound (both via the
    # classic greedy; ``reach`` is monotone, so one two-pointer sweep).
    reach = [0] * len(bounds)
    farthest = 0
    for position in range(len(bounds)):
        farthest = max(farthest, position)
        while (farthest + 1 < len(bounds) and segment_cost(
                bounds[position], bounds[farthest + 1]) <= limit):
            farthest += 1
        reach[position] = farthest
    need = [0] * len(bounds)
    for position in range(len(bounds) - 2, -1, -1):
        need[position] = 1 + need[reach[position]]

    # Among the cuts that keep the bottleneck optimal, prefer the one whose
    # segment cost is closest to an even share — greedy-farthest packing
    # alone would front-load work and leave trailing workers idle on ties.
    ends: list[int] = []
    position = 0
    workers_left = num_workers
    while bounds[position] < total:
        share = (prefix[total] - prefix[bounds[position]]) / workers_left
        candidates = [index for index in range(position + 1,
                                               reach[position] + 1)
                      if need[index] <= workers_left - 1]
        cut = min(candidates, key=lambda index: abs(
            segment_cost(bounds[position], bounds[index]) - share))
        ends.append(bounds[cut])
        position = cut
        workers_left -= 1

    segments = []
    prev = 0
    for end in ends + [total] * (num_workers - len(ends)):
        end = min(max(end, prev), total)
        segments.append(WorkSegment(prev, end))
        prev = end
    return segments


# --------------------------------------------------------------------------- #
# Dynamic (work-queue) planning
# --------------------------------------------------------------------------- #
def plan_chunks(total: int, chunk_size: int,
                aligned: Sequence[int]) -> list[WorkSegment]:
    """Cut ``range(total)`` into checkpoint-aligned chunks for the queue.

    Each chunk starts at an aligned boundary and targets ``chunk_size``
    iterations; sparse checkpointing can force larger chunks (an unaligned
    cut would trade a cheap restore for duplicated recompute).
    """
    if total <= 0:
        return []
    if chunk_size < 1:
        raise ReplayError(f"chunk_size must be >= 1, got {chunk_size}")
    bounds = [start for start in candidate_starts(total, aligned)
              if start > 0]
    bounds.append(total)
    chunks: list[WorkSegment] = []
    begin = 0
    for bound in bounds:
        if bound - begin >= chunk_size or bound == total:
            if bound > begin:
                chunks.append(WorkSegment(begin, bound))
                begin = bound
    return chunks


class InProcessChunkQueue:
    """Single-process chunk queue (one worker, or tests)."""

    def __init__(self, chunks: Sequence[WorkSegment]):
        self._chunks: list[WorkSegment] = list(chunks)

    def claim(self, pid: int,
              preferred_start: int | None = None) -> WorkSegment | None:
        if not self._chunks:
            return None
        if preferred_start is not None:
            for position, chunk in enumerate(self._chunks):
                if chunk.start == preferred_start:
                    return self._chunks.pop(position)
        return self._chunks.pop(0)

    def close(self) -> None:
        """Nothing to release."""


class SqliteChunkQueue:
    """Shared work queue of replay chunks, claimable across processes.

    Every worker initializes the queue idempotently (the chunk list is a
    deterministic function of the store, so ``INSERT OR IGNORE`` from any
    number of workers converges to the same rows) and claims chunks with an
    ``BEGIN IMMEDIATE`` transaction, so each chunk is executed by exactly
    one worker.  Workers prefer the chunk contiguous with their last one —
    contiguous chunks need no re-initialization (state carries forward).
    """

    _SCHEMA = ("CREATE TABLE IF NOT EXISTS chunks ("
               "chunk_index INTEGER PRIMARY KEY, "
               "start INTEGER NOT NULL, stop INTEGER NOT NULL, "
               "claimed_by INTEGER)")

    def __init__(self, path: str | Path, chunks: Sequence[WorkSegment]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=30.0,
                                     isolation_level=None,
                                     check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._execute_transaction(lambda conn: (
            conn.execute(self._SCHEMA),
            conn.executemany(
                "INSERT OR IGNORE INTO chunks "
                "(chunk_index, start, stop, claimed_by) VALUES (?, ?, ?, NULL)",
                [(index, chunk.start, chunk.stop)
                 for index, chunk in enumerate(chunks)])))

    @staticmethod
    def _is_lock_contention(error: sqlite3.OperationalError) -> bool:
        message = str(error).lower()
        return "locked" in message or "busy" in message

    def _rollback_quietly(self) -> None:
        """Leave no transaction open, whatever state the failure left."""
        try:
            self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass

    def _execute_transaction(self, operation):
        last_error: sqlite3.OperationalError | None = None
        for attempt in range(64):
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                result = operation(self._conn)
                self._conn.execute("COMMIT")
                return result
            except sqlite3.OperationalError as exc:
                # Only lock contention is retryable; anything else (disk
                # full, corruption) must surface with its real cause, and
                # either way no transaction may stay open across attempts.
                self._rollback_quietly()
                if not self._is_lock_contention(exc):
                    raise
                last_error = exc
                time.sleep(0.005 * (attempt + 1))
            except BaseException:
                self._rollback_quietly()
                raise
        raise ReplayError(f"could not acquire the replay work queue at "
                          f"{self.path} (database stayed locked: "
                          f"{last_error})")

    def claim(self, pid: int,
              preferred_start: int | None = None) -> WorkSegment | None:
        """Atomically claim one unclaimed chunk, or None when drained."""

        def _claim(conn: sqlite3.Connection):
            row = None
            if preferred_start is not None:
                row = conn.execute(
                    "SELECT chunk_index, start, stop FROM chunks "
                    "WHERE claimed_by IS NULL AND start = ? LIMIT 1",
                    (preferred_start,)).fetchone()
            if row is None:
                row = conn.execute(
                    "SELECT chunk_index, start, stop FROM chunks "
                    "WHERE claimed_by IS NULL "
                    "ORDER BY chunk_index LIMIT 1").fetchone()
            if row is None:
                return None
            conn.execute("UPDATE chunks SET claimed_by = ? "
                         "WHERE chunk_index = ?", (pid, row[0]))
            return WorkSegment(start=row[1], stop=row[2])

        return self._execute_transaction(_claim)

    def claims(self) -> dict[int, int | None]:
        """Chunk index -> claiming pid (None while unclaimed); for tests."""
        rows = self._conn.execute(
            "SELECT chunk_index, claimed_by FROM chunks "
            "ORDER BY chunk_index").fetchall()
        return {row[0]: row[1] for row in rows}

    def close(self) -> None:
        self._conn.close()


# --------------------------------------------------------------------------- #
# The scheduler facade
# --------------------------------------------------------------------------- #
class ReplayScheduler:
    """Issues checkpoint-aligned work segments and initialization plans.

    One instance is built per worker from the (shared, read-only) checkpoint
    store; static scheduling is deterministic so every worker derives the
    same global plan without coordination, and dynamic scheduling
    coordinates through a shared SQLite chunk queue.
    """

    def __init__(self, store: "CheckpointStore", total: int,
                 num_workers: int, *, mode: str = "static",
                 chunk_size: int = 4, scaling_factor: float = 1.0,
                 strict: bool = False,
                 probed_blocks: Iterable[str] = (),
                 loop_blocks: Iterable[str] | None = None,
                 queue_path: str | Path | None = None):
        if mode not in SCHEDULER_MODES:
            raise ReplayError(f"replay scheduler must be one of "
                              f"{SCHEDULER_MODES}, got {mode!r}")
        if total < 0:
            raise ReplayError(f"iteration count must be non-negative, "
                              f"got {total}")
        if num_workers < 1:
            raise ReplayError(f"num_workers must be >= 1, got {num_workers}")
        self.store = store
        self.total = total
        self.num_workers = num_workers
        self.mode = mode
        self.chunk_size = chunk_size
        self.strict = strict
        self.probed = bool(set(probed_blocks))
        self.queue_path = Path(queue_path) if queue_path else None
        # The aligned set backs init planning in every mode (weak init must
        # find a truly restorable iteration even under the uniform split).
        self.aligned = aligned_checkpoints(store, total,
                                           loop_blocks=loop_blocks)
        self.costs = load_iteration_costs(store,
                                          scaling_factor=scaling_factor)
        self._queue: InProcessChunkQueue | SqliteChunkQueue | None = None

    @classmethod
    def for_session(cls, session: "Session", total: int) -> "ReplayScheduler":
        config: "FlorConfig" = session.config
        return cls(
            store=session.store,
            total=total,
            num_workers=session.num_workers,
            mode=config.replay_scheduler,
            chunk_size=config.replay_chunk_size,
            scaling_factor=config.scaling_factor,
            strict=config.strict_consistency,
            probed_blocks=session.probed_blocks,
            queue_path=session.replay_queue_path,
        )

    # -- segment issue ----------------------------------------------------
    def static_segments(self) -> list[WorkSegment]:
        """The full static plan (same in every worker), for inspection."""
        if self.mode == "uniform" or not self.aligned:
            return [partition_indices(self.total, self.num_workers, pid)
                    for pid in range(self.num_workers)]
        return plan_static_segments(self.total, self.num_workers,
                                    self.aligned, self.costs,
                                    probed=self.probed)

    def chunks(self) -> list[WorkSegment]:
        """The dynamic mode's chunk list (deterministic across workers)."""
        return plan_chunks(self.total, self.chunk_size, self.aligned)

    def worker_segments(self, pid: int) -> Iterator[WorkSegment]:
        """Yield the work segments worker ``pid`` must replay, in order."""
        if not 0 <= pid < self.num_workers:
            raise ReplayError(f"pid must be in [0, {self.num_workers}), "
                              f"got {pid}")
        if self.total <= 0:
            return
        if self.mode != "dynamic" or not self.aligned:
            # Dynamic without any aligned checkpoint degrades to the uniform
            # split: chunked pulls would each recompute from iteration 0.
            yield self.static_segments()[pid]
            return
        if self.num_workers > 1 and self.queue_path is None:
            # Dynamic coordination needs the shared queue the parallel
            # driver provisions; an uncoordinated multi-worker session
            # falls back to the deterministic static plan.
            yield self.static_segments()[pid]
            return
        queue = self._make_queue()
        try:
            resume_from: int | None = None
            while True:
                chunk = queue.claim(pid, preferred_start=resume_from)
                if chunk is None:
                    return
                yield chunk
                resume_from = chunk.stop
        finally:
            queue.close()

    def _make_queue(self) -> InProcessChunkQueue | SqliteChunkQueue:
        chunks = self.chunks()
        if self.queue_path is None:
            return InProcessChunkQueue(chunks)
        return SqliteChunkQueue(self.queue_path, chunks)

    # -- initialization planning ------------------------------------------
    def init_plan(self, start: int, resume_from: int | None,
                  strong: bool) -> InitPlan:
        """Plan how a worker reaches the state preceding iteration ``start``.

        ``resume_from`` is the end of the segment this worker just finished
        (state carries forward): a contiguous next segment needs no
        initialization, and a later one can recompute forward from the
        current state when that beats restoring an older checkpoint.

        Weak initialization restores the nearest *aligned* checkpoint at or
        before ``start - 1`` and recomputes the gap — the fix for the
        divergence where a missing boundary checkpoint silently replayed
        from stale state.  With no usable checkpoint at all the plan either
        raises (strict mode) or degrades to recomputing the whole prefix,
        which is strong initialization — slow but correct.
        """
        empty = range(0, 0)
        if start <= 0 or resume_from == start:
            return InitPlan(None, empty)
        if resume_from is not None and resume_from > start:
            raise ReplayError(
                f"cannot initialize segment start {start} from later "
                f"state {resume_from}")
        if strong:
            return InitPlan(None, range(resume_from or 0, start))
        restore = nearest_aligned_at_or_before(self.aligned, start - 1)
        if resume_from is not None and (restore is None
                                        or restore < resume_from):
            # Current state is already past every usable checkpoint;
            # recompute forward from it.
            return InitPlan(None, range(resume_from, start))
        if restore is None:
            message = (
                f"weak initialization has no usable checkpoint at or before "
                f"iteration {start - 1}; recomputing iterations 0..{start - 1} "
                f"from scratch instead")
            if self.strict:
                raise ReplayError(
                    f"weak initialization has no usable checkpoint at or "
                    f"before iteration {start - 1} (strict consistency)")
            warnings.warn(message, stacklevel=2)
            return InitPlan(None, range(0, start))
        return InitPlan(restore, range(restore + 1, start))
