"""The replay phase: probe detection, partial replay, hindsight parallelism,
checkpoint-aware scheduling, and deferred correctness checks."""

from .consistency import ConsistencyReport, check_consistency, compare_logs
from .parallel import WorkerResult, run_parallel_replay, run_worker
from .partition import WorkSegment, partition_indices, segment_sizes
from .probe import SourceDiff, detect_probed_blocks, diff_sources
from .replayer import ReplayResult, replay_script
from .scheduler import (InitPlan, IterationCosts, ReplayScheduler,
                        aligned_checkpoints, plan_chunks,
                        plan_static_segments)

__all__ = [
    "WorkSegment", "partition_indices", "segment_sizes",
    "SourceDiff", "diff_sources", "detect_probed_blocks",
    "ConsistencyReport", "compare_logs", "check_consistency",
    "WorkerResult", "run_worker", "run_parallel_replay",
    "ReplayResult", "replay_script",
    "InitPlan", "IterationCosts", "ReplayScheduler",
    "aligned_checkpoints", "plan_chunks", "plan_static_segments",
]
