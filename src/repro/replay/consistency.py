"""Deferred correctness checks (Section 5.2.2).

Flor's side-effect analysis is efficient but unsafe; rather than pay for a
sound analysis, Flor checks *after* replay that the user-observable state
matches between record and replay: the metrics logged during training (loss,
accuracy, ...) form a fingerprint that is hard to preserve if checkpoints
missed relevant state.  Replay logs may contain extra records — those are
the hindsight logging statements — but every record that appears in both
logs must agree.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

from ..exceptions import ReplayAnomalyError
from ..record.logger import LogRecord

__all__ = ["ConsistencyReport", "compare_logs", "check_consistency"]

#: Relative tolerance for comparing floating-point logged values.
DEFAULT_RTOL = 1e-5


@dataclass
class ConsistencyReport:
    """Outcome of a deferred correctness check."""

    matched: int = 0
    missing_from_replay: list[LogRecord] = field(default_factory=list)
    mismatches: list[tuple[LogRecord, LogRecord]] = field(default_factory=list)
    hindsight_records: list[LogRecord] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return not self.mismatches and not self.missing_from_replay

    def summary(self) -> str:
        if self.consistent:
            return (f"replay consistent with record: {self.matched} shared "
                    f"records matched, {len(self.hindsight_records)} hindsight "
                    f"records produced")
        parts = [f"replay anomalies detected: {len(self.mismatches)} value "
                 f"mismatches, {len(self.missing_from_replay)} record-phase "
                 f"records missing from replay"]
        for record_rec, replay_rec in self.mismatches[:5]:
            parts.append(f"  {record_rec.name}[iter {record_rec.iteration}]: "
                         f"record={record_rec.value!r} "
                         f"replay={replay_rec.value!r}")
        return "\n".join(parts)


def _values_match(record_value, replay_value, rtol: float) -> bool:
    if isinstance(record_value, float) or isinstance(replay_value, float):
        try:
            return math.isclose(float(record_value), float(replay_value),
                                rel_tol=rtol, abs_tol=1e-8)
        except (TypeError, ValueError):
            return record_value == replay_value
    return record_value == replay_value


def compare_logs(record_records: list[LogRecord],
                 replay_records: list[LogRecord],
                 replay_iterations: set[int] | None = None,
                 rtol: float = DEFAULT_RTOL) -> ConsistencyReport:
    """Compare record-phase and replay-phase logs.

    ``replay_iterations`` restricts the comparison to main-loop iterations
    the replay actually covered (a partial or partitioned replay only
    reproduces a subset of the record log).
    """
    report = ConsistencyReport()

    def key(record: LogRecord) -> tuple:
        return (record.name, record.iteration)

    replay_by_key: dict[tuple, list[LogRecord]] = {}
    for record in replay_records:
        replay_by_key.setdefault(key(record), []).append(record)

    record_keys = set()
    for record in record_records:
        if (replay_iterations is not None and record.iteration is not None
                and record.iteration not in replay_iterations):
            continue
        record_keys.add(key(record))
        candidates = replay_by_key.get(key(record))
        if not candidates:
            report.missing_from_replay.append(record)
            continue
        replayed = candidates.pop(0)
        if _values_match(record.value, replayed.value, rtol):
            report.matched += 1
        else:
            report.mismatches.append((record, replayed))

    for record in replay_records:
        if key(record) not in record_keys:
            report.hindsight_records.append(record)
    return report


def check_consistency(record_records: list[LogRecord],
                      replay_records: list[LogRecord],
                      replay_iterations: set[int] | None = None,
                      strict: bool = False,
                      rtol: float = DEFAULT_RTOL) -> ConsistencyReport:
    """Run the deferred check and warn (or raise, when ``strict``) on anomalies."""
    report = compare_logs(record_records, replay_records,
                          replay_iterations=replay_iterations, rtol=rtol)
    if not report.consistent:
        if strict:
            raise ReplayAnomalyError(report.summary())
        warnings.warn(report.summary(), stacklevel=2)
    return report
