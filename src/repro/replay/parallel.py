"""Parallel replay: many workers, no coordination (Section 5.4).

Each worker executes the *same* instrumented replay script; the Flor
generator gives worker ``pid`` its own contiguous segment of main-loop
iterations, and checkpoints break the cross-iteration dependencies, so
workers neither communicate nor coordinate.  On the paper's testbed each
worker owned one GPU; here each worker is a separate OS process.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass, field

from ..config import FlorConfig
from ..exceptions import ReplayError
from ..modes import InitStrategy, Mode
from ..record.logger import LogRecord, read_log
from ..session import Session

__all__ = ["WorkerResult", "run_worker", "run_parallel_replay"]


@dataclass
class WorkerResult:
    """Outcome of one replay worker."""

    pid: int
    wall_seconds: float
    iterations: list[int] = field(default_factory=list)
    log_records: list[LogRecord] = field(default_factory=list)
    error: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.error is None


def run_worker(run_id: str, instrumented_source: str, config: FlorConfig,
               pid: int, num_workers: int, init_strategy: InitStrategy,
               probed_blocks: set[str],
               sample_iterations: list[int] | None = None) -> WorkerResult:
    """Execute one worker's share of a parallel replay (in this process)."""
    start = time.perf_counter()
    session = Session(run_id=run_id, mode=Mode.REPLAY, config=config,
                      pid=pid, num_workers=num_workers,
                      init_strategy=init_strategy,
                      probed_blocks=probed_blocks,
                      sample_iterations=sample_iterations)
    exec_globals = {"__name__": "__main__",
                    "__file__": f"replay-p{pid}of{num_workers}.py"}
    try:
        code = compile(instrumented_source, exec_globals["__file__"], "exec")
        with session:
            exec(code, exec_globals)  # noqa: S102 - replaying the user's script
    except Exception:
        return WorkerResult(pid=pid, wall_seconds=time.perf_counter() - start,
                            error=traceback.format_exc())
    return WorkerResult(
        pid=pid,
        wall_seconds=time.perf_counter() - start,
        iterations=list(session.iterations_run),
        log_records=list(session.logs.records),
    )


def _worker_entry(args: tuple) -> dict:
    """Multiprocessing entry point; returns a picklable summary."""
    (run_id, instrumented_source, config, pid, num_workers, init_strategy,
     probed_blocks) = args
    result = run_worker(run_id, instrumented_source, config, pid, num_workers,
                        InitStrategy(init_strategy), set(probed_blocks))
    return {
        "pid": result.pid,
        "wall_seconds": result.wall_seconds,
        "iterations": result.iterations,
        "error": result.error,
    }


def run_parallel_replay(run_id: str, instrumented_source: str,
                        config: FlorConfig, num_workers: int,
                        init_strategy: InitStrategy = InitStrategy.STRONG,
                        probed_blocks: set[str] | None = None,
                        sample_iterations: list[int] | None = None,
                        ) -> list[WorkerResult]:
    """Run ``num_workers`` replay workers and collect their results.

    Workers run as separate processes (``fork`` start method where
    available) so they are as independent as the paper's per-GPU workers.
    Per-worker log records are re-read from the per-worker replay logs so
    nothing has to be pickled back through the pool.
    """
    if num_workers < 1:
        raise ReplayError(f"num_workers must be >= 1, got {num_workers}")
    probed = probed_blocks or set()

    if sample_iterations is not None and num_workers != 1:
        raise ReplayError("sampling replay runs on a single worker; pass "
                          "num_workers=1 together with sample_iterations")

    if num_workers == 1:
        return [run_worker(run_id, instrumented_source, config, 0, 1,
                           init_strategy, probed,
                           sample_iterations=sample_iterations)]

    ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
    jobs = [(run_id, instrumented_source, config, pid, num_workers,
             init_strategy.value, sorted(probed)) for pid in range(num_workers)]
    with ctx.Pool(processes=num_workers) as pool:
        summaries = pool.map(_worker_entry, jobs)

    run_dir = config.run_dir(run_id)
    results = []
    for summary in summaries:
        pid = summary["pid"]
        log_path = run_dir / f"replay-p{pid}of{num_workers}.log"
        results.append(WorkerResult(
            pid=pid,
            wall_seconds=summary["wall_seconds"],
            iterations=summary["iterations"],
            log_records=read_log(log_path),
            error=summary["error"],
        ))
    return results
