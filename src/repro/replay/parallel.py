"""Parallel replay: many workers, no coordination (Section 5.4).

Each worker executes the *same* instrumented replay script; the Flor
generator gives worker ``pid`` its scheduler-issued share of main-loop
iterations, and checkpoints break the cross-iteration dependencies.  Under
static scheduling workers neither communicate nor coordinate (every worker
derives the same checkpoint-aligned plan); under dynamic scheduling they
share only a SQLite-backed chunk queue provisioned here.  On the paper's
testbed each worker owned one GPU; here each worker is a separate OS
process.

Fork safety: the parent process may hold a live Flor session (an open
WAL-mode SQLite connection, background spool worker threads) when this
module forks its worker pool.  ``run_parallel_replay`` quiesces that state
first — flushing and closing the parent's store so children do not inherit
an open connection, and switching to the ``spawn`` start method when an
async spool is active, since its worker threads do not survive ``fork``.
Forked children additionally drop the inherited active-session registration
so their own replay session can activate.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import traceback
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from ..config import FlorConfig
from ..exceptions import ReplayError
from ..modes import InitStrategy, Mode
from ..record.logger import LogRecord, read_log
from ..session import Session, get_active_session
from .. import telemetry
from ..utils.timing import monotonic

__all__ = ["WorkerResult", "ReplayJobSpec", "run_worker",
           "run_parallel_replay", "run_replay_jobs"]


@dataclass
class WorkerResult:
    """Outcome of one replay worker."""

    pid: int
    wall_seconds: float
    iterations: list[int] = field(default_factory=list)
    log_records: list[LogRecord] = field(default_factory=list)
    error: str | None = None
    #: Telemetry spans captured in the worker process (exported dicts),
    #: shipped back through the pool and ingested by the dispatching side.
    spans: list[dict] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.error is None


def run_worker(run_id: str, instrumented_source: str, config: FlorConfig,
               pid: int, num_workers: int, init_strategy: InitStrategy,
               probed_blocks: set[str],
               sample_iterations: list[int] | None = None,
               replay_queue_path: str | None = None) -> WorkerResult:
    """Execute one worker's share of a parallel replay (in this process)."""
    start = monotonic()
    session = Session(run_id=run_id, mode=Mode.REPLAY, config=config,
                      pid=pid, num_workers=num_workers,
                      init_strategy=init_strategy,
                      probed_blocks=probed_blocks,
                      sample_iterations=sample_iterations,
                      replay_queue_path=replay_queue_path)
    exec_globals = {"__name__": "__main__",
                    "__file__": f"replay-p{pid}of{num_workers}.py"}
    try:
        code = compile(instrumented_source, exec_globals["__file__"], "exec")
        with session:
            exec(code, exec_globals)  # noqa: S102 - replaying the user's script
    except Exception:
        return WorkerResult(pid=pid, wall_seconds=monotonic() - start,
                            error=traceback.format_exc())
    return WorkerResult(
        pid=pid,
        wall_seconds=monotonic() - start,
        iterations=list(session.iterations_run),
        log_records=list(session.logs.records),
    )


@dataclass(frozen=True)
class ReplayJobSpec:
    """One batched hindsight-query replay job.

    A job replays one contiguous iteration span of one run as a sampling
    replay (``sample_iterations``), so the hindsight query engine can put
    spans of *different* runs — and disjoint spans of the same run — on one
    process pool.  ``pid``/``num_workers`` only disambiguate the per-worker
    replay log filename between concurrent jobs of the same run; sampling
    replay does not partition by them.
    """

    run_id: str
    instrumented_source: str
    probed_blocks: tuple[str, ...]
    sample_iterations: tuple[int, ...]
    pid: int = 0
    num_workers: int = 1


def _worker_entry(args: tuple) -> dict:
    """Multiprocessing entry point; returns a picklable summary."""
    (run_id, instrumented_source, config, pid, num_workers, init_strategy,
     probed_blocks, replay_queue_path) = args
    # A forked child inherits the parent's active-session registration (and
    # a spawned child starts clean either way); drop it so this worker's
    # replay session can activate.
    from .. import session as session_module
    session_module._ACTIVE_SESSION = None
    # A forked child also inherits the parent's telemetry ring buffer;
    # clear it so only THIS worker's spans ship back through the summary.
    telemetry.reset_for_worker()
    result = run_worker(run_id, instrumented_source, config, pid, num_workers,
                        InitStrategy(init_strategy), set(probed_blocks),
                        replay_queue_path=replay_queue_path)
    return {
        "pid": result.pid,
        "wall_seconds": result.wall_seconds,
        "iterations": result.iterations,
        "error": result.error,
        "spans": telemetry.get_tracer().drain(),
    }


def _quiesce_parent_session(start_method: str) -> str:
    """Make the parent's live Flor session safe to fork around.

    Flushes in-flight materializations and the store so children observe a
    consistent manifest.  With an async spool active, ``fork`` would copy a
    process whose spool worker threads no longer exist (fork duplicates
    only the calling thread) while their queue and locks do — so select
    ``spawn`` instead.  Otherwise close the parent's store connection; the
    backend reopens lazily, and children open their own.
    """
    session = get_active_session()
    if session is None:
        return start_method
    session.materializer.flush()
    session.store.flush()
    if (start_method == "fork"
            and getattr(session.materializer, "spool", None) is not None):
        return "spawn"
    session.store.close()
    return start_method


def _remove_queue_files(queue_path: str | None) -> None:
    if not queue_path:
        return
    for suffix in ("", "-wal", "-shm"):
        try:
            Path(queue_path + suffix).unlink()
        except OSError:
            pass


def run_parallel_replay(run_id: str, instrumented_source: str,
                        config: FlorConfig, num_workers: int,
                        init_strategy: InitStrategy = InitStrategy.STRONG,
                        probed_blocks: set[str] | None = None,
                        sample_iterations: list[int] | None = None,
                        ) -> list[WorkerResult]:
    """Run ``num_workers`` replay workers and collect their results.

    Workers run as separate processes (``fork`` start method where
    available and safe, ``spawn`` otherwise) so they are as independent as
    the paper's per-GPU workers.  Per-worker log records are re-read from
    the per-worker replay logs so nothing has to be pickled back through
    the pool.  For dynamic scheduling this driver provisions the shared
    chunk-queue file that workers pull work from, and removes it afterwards.
    """
    if num_workers < 1:
        raise ReplayError(f"num_workers must be >= 1, got {num_workers}")
    probed = probed_blocks or set()

    if sample_iterations is not None and num_workers != 1:
        raise ReplayError("sampling replay runs on a single worker; pass "
                          "num_workers=1 together with sample_iterations")

    if num_workers == 1:
        return [run_worker(run_id, instrumented_source, config, 0, 1,
                           init_strategy, probed,
                           sample_iterations=sample_iterations)]

    queue_path: str | None = None
    if config.replay_scheduler == "dynamic":
        run_dir = config.run_dir(run_id)
        run_dir.mkdir(parents=True, exist_ok=True)
        queue_path = str(run_dir
                         / f"replay-queue-{uuid.uuid4().hex[:12]}.sqlite")

    start_method = "fork" if hasattr(os, "fork") else "spawn"
    start_method = _quiesce_parent_session(start_method)
    ctx = mp.get_context(start_method)
    jobs = [(run_id, instrumented_source, config, pid, num_workers,
             init_strategy.value, sorted(probed), queue_path)
            for pid in range(num_workers)]
    tracer = telemetry.get_tracer()
    try:
        with tracer.span("replay.parallel", run_id=run_id,
                         workers=num_workers) as dispatch:
            with ctx.Pool(processes=num_workers) as pool:
                summaries = pool.map(_worker_entry, jobs)
            for summary in summaries:
                # Worker spans come back through the result channel;
                # re-parent their roots under this dispatch span so the
                # merged trace stays one tree.
                tracer.ingest(summary.get("spans") or [],
                              parent_id=dispatch.span_id)
    finally:
        _remove_queue_files(queue_path)

    run_dir = config.run_dir(run_id)
    results = []
    for summary in summaries:
        pid = summary["pid"]
        log_path = run_dir / f"replay-p{pid}of{num_workers}.log"
        results.append(WorkerResult(
            pid=pid,
            wall_seconds=summary["wall_seconds"],
            iterations=summary["iterations"],
            log_records=read_log(log_path),
            error=summary["error"],
            spans=summary.get("spans") or [],
        ))
    return results


# --------------------------------------------------------------------------- #
# Batched replay jobs (the hindsight query engine's execution primitive)
# --------------------------------------------------------------------------- #
def _job_entry(args: tuple) -> dict:
    """Pool entry for one :class:`ReplayJobSpec`; returns a picklable summary.

    Log records travel back through the pool as plain tuples (their values
    are JSON-normalized by the log manager) instead of being re-read from
    per-worker log files, so concurrent jobs of the same run cannot race on
    a shared log path.
    """
    spec, config = args
    from .. import session as session_module
    session_module._ACTIVE_SESSION = None
    telemetry.reset_for_worker()
    result = run_worker(spec.run_id, spec.instrumented_source, config,
                        spec.pid, spec.num_workers, InitStrategy.WEAK,
                        set(spec.probed_blocks),
                        sample_iterations=list(spec.sample_iterations))
    return {
        "pid": result.pid,
        "wall_seconds": result.wall_seconds,
        "iterations": result.iterations,
        "log_records": [(r.name, r.value, r.iteration, r.sequence)
                        for r in result.log_records],
        "error": result.error,
        "spans": telemetry.get_tracer().drain(),
    }


def _summary_to_result(summary: dict) -> WorkerResult:
    return WorkerResult(
        pid=summary["pid"],
        wall_seconds=summary["wall_seconds"],
        iterations=summary["iterations"],
        log_records=[LogRecord(name=name, value=value, iteration=iteration,
                               sequence=sequence)
                     for name, value, iteration, sequence
                     in summary["log_records"]],
        error=summary["error"],
        spans=summary.get("spans") or [],
    )


def run_replay_jobs(jobs: list[ReplayJobSpec], config: FlorConfig,
                    processes: int = 1) -> list[WorkerResult]:
    """Execute a batch of query replay jobs; results align with ``jobs``.

    Jobs are independent sampling replays (each restores its own aligned
    checkpoint), so the batch runs on one process pool of ``processes``
    workers regardless of how many distinct runs it spans — this is how a
    multi-run hindsight query parallelizes across runs.  With one job or
    ``processes <= 1`` the batch runs in the calling process instead (no
    pool spin-up for a cheap query).  Errors are reported per job in
    ``WorkerResult.error``; callers decide whether to raise.
    """
    specs = list(jobs)
    if not specs:
        return []
    # The in-process fast path needs this process session-free: run_worker
    # activates its own replay session, which a live session (a query
    # issued inside a record_session) would reject.  With a session active,
    # even a single job goes through the pool, whose children clear the
    # inherited registration and whose setup quiesces the parent's store.
    if (processes <= 1 or len(specs) == 1) and get_active_session() is None:
        return [run_worker(spec.run_id, spec.instrumented_source, config,
                           spec.pid, spec.num_workers, InitStrategy.WEAK,
                           set(spec.probed_blocks),
                           sample_iterations=list(spec.sample_iterations))
                for spec in specs]
    start_method = "fork" if hasattr(os, "fork") else "spawn"
    start_method = _quiesce_parent_session(start_method)
    ctx = mp.get_context(start_method)
    tracer = telemetry.get_tracer()
    with tracer.span("replay.jobs", jobs=len(specs),
                     processes=processes) as dispatch:
        with ctx.Pool(processes=max(1, min(processes, len(specs)))) as pool:
            summaries = pool.map(_job_entry,
                                 [(spec, config) for spec in specs])
        for summary in summaries:
            tracer.ingest(summary.get("spans") or [],
                          parent_id=dispatch.span_id)
    return [_summary_to_result(summary) for summary in summaries]
