"""Parallel replay: many workers, no coordination (Section 5.4).

Each worker executes the *same* instrumented replay script; the Flor
generator gives worker ``pid`` its scheduler-issued share of main-loop
iterations, and checkpoints break the cross-iteration dependencies.  Under
static scheduling workers neither communicate nor coordinate (every worker
derives the same checkpoint-aligned plan); under dynamic scheduling they
share only a SQLite-backed chunk queue provisioned here.  On the paper's
testbed each worker owned one GPU; here each worker is a separate OS
process.

Fork safety: the parent process may hold a live Flor session (an open
WAL-mode SQLite connection, background spool worker threads) when this
module forks its worker pool.  ``run_parallel_replay`` quiesces that state
first — flushing and closing the parent's store so children do not inherit
an open connection, and switching to the ``spawn`` start method when an
async spool is active, since its worker threads do not survive ``fork``.
Forked children additionally drop the inherited active-session registration
so their own replay session can activate.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import traceback
import uuid
from dataclasses import dataclass, field
from pathlib import Path

from ..config import FlorConfig
from ..exceptions import ReplayError
from ..modes import InitStrategy, Mode
from ..record.logger import LogRecord, read_log
from ..session import Session, get_active_session

__all__ = ["WorkerResult", "run_worker", "run_parallel_replay"]


@dataclass
class WorkerResult:
    """Outcome of one replay worker."""

    pid: int
    wall_seconds: float
    iterations: list[int] = field(default_factory=list)
    log_records: list[LogRecord] = field(default_factory=list)
    error: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.error is None


def run_worker(run_id: str, instrumented_source: str, config: FlorConfig,
               pid: int, num_workers: int, init_strategy: InitStrategy,
               probed_blocks: set[str],
               sample_iterations: list[int] | None = None,
               replay_queue_path: str | None = None) -> WorkerResult:
    """Execute one worker's share of a parallel replay (in this process)."""
    start = time.perf_counter()
    session = Session(run_id=run_id, mode=Mode.REPLAY, config=config,
                      pid=pid, num_workers=num_workers,
                      init_strategy=init_strategy,
                      probed_blocks=probed_blocks,
                      sample_iterations=sample_iterations,
                      replay_queue_path=replay_queue_path)
    exec_globals = {"__name__": "__main__",
                    "__file__": f"replay-p{pid}of{num_workers}.py"}
    try:
        code = compile(instrumented_source, exec_globals["__file__"], "exec")
        with session:
            exec(code, exec_globals)  # noqa: S102 - replaying the user's script
    except Exception:
        return WorkerResult(pid=pid, wall_seconds=time.perf_counter() - start,
                            error=traceback.format_exc())
    return WorkerResult(
        pid=pid,
        wall_seconds=time.perf_counter() - start,
        iterations=list(session.iterations_run),
        log_records=list(session.logs.records),
    )


def _worker_entry(args: tuple) -> dict:
    """Multiprocessing entry point; returns a picklable summary."""
    (run_id, instrumented_source, config, pid, num_workers, init_strategy,
     probed_blocks, replay_queue_path) = args
    # A forked child inherits the parent's active-session registration (and
    # a spawned child starts clean either way); drop it so this worker's
    # replay session can activate.
    from .. import session as session_module
    session_module._ACTIVE_SESSION = None
    result = run_worker(run_id, instrumented_source, config, pid, num_workers,
                        InitStrategy(init_strategy), set(probed_blocks),
                        replay_queue_path=replay_queue_path)
    return {
        "pid": result.pid,
        "wall_seconds": result.wall_seconds,
        "iterations": result.iterations,
        "error": result.error,
    }


def _quiesce_parent_session(start_method: str) -> str:
    """Make the parent's live Flor session safe to fork around.

    Flushes in-flight materializations and the store so children observe a
    consistent manifest.  With an async spool active, ``fork`` would copy a
    process whose spool worker threads no longer exist (fork duplicates
    only the calling thread) while their queue and locks do — so select
    ``spawn`` instead.  Otherwise close the parent's store connection; the
    backend reopens lazily, and children open their own.
    """
    session = get_active_session()
    if session is None:
        return start_method
    session.materializer.flush()
    session.store.flush()
    if (start_method == "fork"
            and getattr(session.materializer, "spool", None) is not None):
        return "spawn"
    session.store.close()
    return start_method


def _remove_queue_files(queue_path: str | None) -> None:
    if not queue_path:
        return
    for suffix in ("", "-wal", "-shm"):
        try:
            Path(queue_path + suffix).unlink()
        except OSError:
            pass


def run_parallel_replay(run_id: str, instrumented_source: str,
                        config: FlorConfig, num_workers: int,
                        init_strategy: InitStrategy = InitStrategy.STRONG,
                        probed_blocks: set[str] | None = None,
                        sample_iterations: list[int] | None = None,
                        ) -> list[WorkerResult]:
    """Run ``num_workers`` replay workers and collect their results.

    Workers run as separate processes (``fork`` start method where
    available and safe, ``spawn`` otherwise) so they are as independent as
    the paper's per-GPU workers.  Per-worker log records are re-read from
    the per-worker replay logs so nothing has to be pickled back through
    the pool.  For dynamic scheduling this driver provisions the shared
    chunk-queue file that workers pull work from, and removes it afterwards.
    """
    if num_workers < 1:
        raise ReplayError(f"num_workers must be >= 1, got {num_workers}")
    probed = probed_blocks or set()

    if sample_iterations is not None and num_workers != 1:
        raise ReplayError("sampling replay runs on a single worker; pass "
                          "num_workers=1 together with sample_iterations")

    if num_workers == 1:
        return [run_worker(run_id, instrumented_source, config, 0, 1,
                           init_strategy, probed,
                           sample_iterations=sample_iterations)]

    queue_path: str | None = None
    if config.replay_scheduler == "dynamic":
        run_dir = config.run_dir(run_id)
        run_dir.mkdir(parents=True, exist_ok=True)
        queue_path = str(run_dir
                         / f"replay-queue-{uuid.uuid4().hex[:12]}.sqlite")

    start_method = "fork" if hasattr(os, "fork") else "spawn"
    start_method = _quiesce_parent_session(start_method)
    ctx = mp.get_context(start_method)
    jobs = [(run_id, instrumented_source, config, pid, num_workers,
             init_strategy.value, sorted(probed), queue_path)
            for pid in range(num_workers)]
    try:
        with ctx.Pool(processes=num_workers) as pool:
            summaries = pool.map(_worker_entry, jobs)
    finally:
        _remove_queue_files(queue_path)

    run_dir = config.run_dir(run_id)
    results = []
    for summary in summaries:
        pid = summary["pid"]
        log_path = run_dir / f"replay-p{pid}of{num_workers}.log"
        results.append(WorkerResult(
            pid=pid,
            wall_seconds=summary["wall_seconds"],
            iterations=summary["iterations"],
            log_records=read_log(log_path),
            error=summary["error"],
        ))
    return results
