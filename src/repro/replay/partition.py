"""Uniform iterator partitioning for hindsight parallelism (Section 5.4.1).

The paper splits the main loop's iterator into as many contiguous segments
as there are parallel workers and assigns one segment per worker.  Work is
balanced so segment sizes differ by at most one — with 200 epochs over 16
workers, the largest share is 13 epochs, which is exactly the load-
balancing limit the paper reports for Figure 13.

This count-balanced split assumes every boundary is restorable, which
adaptive checkpointing does not guarantee; replay normally plans segments
through :mod:`repro.replay.scheduler`, which aligns boundaries to
materialized checkpoints and balances by estimated cost, and falls back to
:func:`partition_indices` for the ``"uniform"`` scheduling mode and for
runs with no usable checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ReplayError

__all__ = ["WorkSegment", "partition_indices", "segment_sizes"]


@dataclass(frozen=True)
class WorkSegment:
    """A contiguous range of main-loop iteration indices owned by one worker."""

    start: int
    stop: int

    def __len__(self) -> int:
        return max(self.stop - self.start, 0)

    def indices(self) -> range:
        return range(self.start, self.stop)

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.stop


def partition_indices(total: int, num_workers: int, pid: int) -> WorkSegment:
    """Contiguous, balanced partition of ``range(total)`` for worker ``pid``.

    The first ``total % num_workers`` workers receive one extra iteration.
    Workers beyond ``total`` receive empty segments.
    """
    if total < 0:
        raise ReplayError(f"iteration count must be non-negative, got {total}")
    if num_workers < 1:
        raise ReplayError(f"num_workers must be >= 1, got {num_workers}")
    if not 0 <= pid < num_workers:
        raise ReplayError(
            f"pid must be in [0, {num_workers}), got {pid}")

    base, remainder = divmod(total, num_workers)
    start = pid * base + min(pid, remainder)
    size = base + (1 if pid < remainder else 0)
    return WorkSegment(start=start, stop=start + size)


def segment_sizes(total: int, num_workers: int) -> list[int]:
    """Sizes of every worker's segment (useful for load-balance analysis)."""
    return [len(partition_indices(total, num_workers, pid))
            for pid in range(num_workers)]
