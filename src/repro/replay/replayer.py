"""The replay phase driver (Section 3.2).

``replay_script`` takes the run id of a recorded execution and (optionally)
a new version of the training script containing hindsight logging
statements.  It detects which SkipBlocks are probed by diffing the new
source against the source saved at record time, re-instruments the new
source, executes it — partially, in parallel, or both — and finally runs the
deferred correctness check against the record log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.instrument import BlockSpec, instrument_source
from ..config import FlorConfig, get_config
from ..exceptions import ReplayError
from ..modes import InitStrategy
from ..record.logger import (LogRecord, iteration_order_key, merge_logs,
                             read_log)
from ..record.recorder import ORIGINAL_SOURCE_NAME
from ..storage.checkpoint_store import CheckpointStore
from ..utils.timing import monotonic
from .consistency import ConsistencyReport, check_consistency
from .parallel import WorkerResult, run_parallel_replay
from .probe import assert_probes_safe, detect_probed_blocks

__all__ = ["ReplayResult", "replay_script"]


@dataclass
class ReplayResult:
    """Summary of one replay-phase execution."""

    run_id: str
    probed_blocks: set[str]
    num_workers: int
    init_strategy: InitStrategy
    wall_seconds: float
    worker_results: list[WorkerResult] = field(default_factory=list)
    log_records: list[LogRecord] = field(default_factory=list)
    consistency: ConsistencyReport | None = None

    @property
    def succeeded(self) -> bool:
        return all(worker.succeeded for worker in self.worker_results)

    def values(self, name: str) -> list:
        """All replayed values logged under ``name``, in iteration order.

        ``log_records`` merges per-worker logs whose ``sequence`` counters
        each restart at zero, so the promise of iteration order is kept by
        sorting on ``(iteration, sequence)`` here rather than trusting the
        stored order.
        """
        matching = [record for record in self.log_records
                    if record.name == name]
        matching.sort(key=iteration_order_key)
        return [record.value for record in matching]


def replay_script(run_id: str, new_source: str | Path | None = None,
                  num_workers: int = 1,
                  init_strategy: InitStrategy | str = InitStrategy.STRONG,
                  config: FlorConfig | None = None,
                  probed_blocks: set[str] | None = None,
                  sample_iterations: list[int] | None = None,
                  check: bool = True) -> ReplayResult:
    """Replay a recorded run, producing the output of hindsight log statements.

    Parameters
    ----------
    run_id:
        Identifier returned by :func:`repro.record.recorder.record_script`.
    new_source:
        The updated training script (text, or a path to it) containing the
        hindsight logging statements.  When omitted, the source recorded at
        record time is replayed unchanged (no blocks are probed, so the
        replay is maximally partial).
    num_workers:
        Degree of hindsight parallelism.
    init_strategy:
        Strong (default) or weak worker initialization.
    probed_blocks:
        Explicit override of probe detection (useful for experiments).
    sample_iterations:
        Sampling replay (the paper's Section 8 proof of concept): replay
        only these main-loop iterations, using checkpoint random access to
        initialise each one.  Requires ``num_workers == 1``.
    check:
        Run the deferred correctness check against the record log.
    """
    config = config or get_config()
    init_strategy = InitStrategy(init_strategy)
    run_dir = config.run_dir(run_id)
    if not run_dir.exists():
        raise ReplayError(f"no recorded run at {run_dir}")
    # The store sniffs an existing layout (shards.json, in-memory registry)
    # before falling back to the configured backend, so a sharded or
    # in-memory run replays without backend-matching configuration.
    store = CheckpointStore.for_config(run_dir, config)

    record_source_text = store.load_source(ORIGINAL_SOURCE_NAME)
    if new_source is None:
        replay_source_text = record_source_text
    elif isinstance(new_source, Path) or (
            isinstance(new_source, str) and "\n" not in new_source
            and Path(new_source).exists()):
        replay_source_text = Path(new_source).read_text(encoding="utf-8")
    else:
        replay_source_text = str(new_source)

    if replay_source_text != record_source_text:
        # MUTATING probes are refused before any worker starts: a probe
        # that writes a changeset name would silently diverge every
        # iteration after its first execution.
        assert_probes_safe(record_source_text, replay_source_text,
                           filename=f"{run_id}:replay source")

    stored_blocks = {bid: BlockSpec.from_dict(spec)
                     for bid, spec in store.get_metadata("blocks", {}).items()}
    if probed_blocks is None:
        probed = detect_probed_blocks(record_source_text, replay_source_text,
                                      stored_blocks)
    else:
        probed = set(probed_blocks)

    instrumentation = instrument_source(replay_source_text)

    # Release this process's store connection before the parallel driver
    # forks worker processes; the backend reopens lazily if needed again.
    store.close()

    start = monotonic()
    worker_results = run_parallel_replay(
        run_id=run_id,
        instrumented_source=instrumentation.instrumented_source,
        config=config,
        num_workers=num_workers,
        init_strategy=init_strategy,
        probed_blocks=probed,
        sample_iterations=sample_iterations,
    )
    wall_seconds = monotonic() - start

    failures = [worker for worker in worker_results if not worker.succeeded]
    if failures:
        details = "\n".join(worker.error or "" for worker in failures)
        raise ReplayError(
            f"{len(failures)} replay worker(s) failed for run {run_id}:\n"
            f"{details}")

    # Sort the concatenated per-worker logs into main-loop iteration order
    # before they feed the consistency check or reach the user.
    merged = merge_logs([worker.log_records for worker in worker_results])
    result = ReplayResult(
        run_id=run_id,
        probed_blocks=probed,
        num_workers=num_workers,
        init_strategy=init_strategy,
        wall_seconds=wall_seconds,
        worker_results=worker_results,
        log_records=merged,
    )

    if check:
        record_records = read_log(run_dir / "record.log")
        covered = {index for worker in worker_results
                   for index in worker.iterations}
        result.consistency = check_consistency(
            record_records, merged, replay_iterations=covered,
            strict=config.strict_consistency)
    return result
