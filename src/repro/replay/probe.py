"""Probe detection: mapping a source diff onto SkipBlocks (Section 3.2).

At replay time, the only differences between the current source and the
source saved at record time are the hindsight logging statements the model
developer added.  Flor diffs the two versions; a SkipBlock whose enclosed
loop contains a changed or inserted line is *probed* and must be re-executed
on replay, because its checkpoint only captured the loop's final state, not
the intermediate state the new log statements observe.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from ..analysis.instrument import BlockSpec
from ..analysis.purity import ProbeAnalysis, analyze_probe
from ..exceptions import ReplaySafetyError

__all__ = ["SourceDiff", "diff_sources", "detect_probed_blocks",
           "probe_safety", "assert_probes_safe"]


@dataclass
class SourceDiff:
    """Line-level differences between record-time and replay-time source."""

    #: Record-source line numbers (1-based) whose content changed or was deleted.
    changed_record_lines: set[int] = field(default_factory=set)
    #: Insertions: (record line number before which new lines land, the new lines).
    insertions: list[tuple[int, list[str]]] = field(default_factory=list)
    #: Replay-source line numbers (1-based) that are new or modified.
    new_replay_lines: set[int] = field(default_factory=set)

    @property
    def insertion_points(self) -> set[int]:
        return {point for point, _lines in self.insertions}

    @property
    def is_identical(self) -> bool:
        return not (self.changed_record_lines or self.insertions
                    or self.new_replay_lines)


def diff_sources(record_source: str, replay_source: str) -> SourceDiff:
    """Compute the line-level diff between the two source versions.

    Lines are compared with trailing whitespace stripped: CRLF-vs-LF
    round-trips (an editor or VCS normalizing line endings between record
    and replay) and trailing-space-only edits change no Python semantics,
    so they must not mark every block probed.  Leading whitespace is
    significant (indentation) and is compared verbatim.  Insertion
    *content* is reported from the original replay lines so indentation
    checks downstream see the real text.
    """
    record_lines = record_source.splitlines()
    replay_lines = replay_source.splitlines()
    matcher = difflib.SequenceMatcher(
        a=[line.rstrip() for line in record_lines],
        b=[line.rstrip() for line in replay_lines],
        autojunk=False)
    diff = SourceDiff()
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            continue
        if tag in ("replace", "delete"):
            diff.changed_record_lines.update(range(i1 + 1, i2 + 1))
        if tag in ("replace", "insert"):
            diff.new_replay_lines.update(range(j1 + 1, j2 + 1))
        if tag == "insert":
            # New lines were inserted before record line i1+1 (1-based).
            diff.insertions.append((i1 + 1, replay_lines[j1:j2]))
    return diff


def _indentation(line: str) -> int:
    return len(line) - len(line.lstrip(" \t"))


def detect_probed_blocks(record_source: str, replay_source: str,
                         blocks: dict[str, BlockSpec]) -> set[str]:
    """Return the ids of SkipBlocks whose enclosed loop was probed.

    A block is probed when a changed record line falls within the loop's
    original line range, or when new lines were inserted inside it.  An
    insertion landing exactly at the loop's end is ambiguous at the line
    level ("last statement of the body" vs "first statement after the
    loop"); indentation of the inserted lines disambiguates, exactly as the
    Python parser would.
    """
    diff = diff_sources(record_source, replay_source)
    if diff.is_identical:
        return set()

    record_lines = record_source.splitlines()
    probed: set[str] = set()
    for block_id, spec in blocks.items():
        if any(spec.contains_line(line) for line in diff.changed_record_lines):
            probed.add(block_id)
            continue
        header_indent = _indentation(record_lines[spec.start_line - 1]) \
            if spec.start_line <= len(record_lines) else 0
        for point, inserted in diff.insertions:
            if not any(line.strip() for line in inserted):
                # Blank-line-only insertions change no semantics.
                continue
            # Strictly inside the body: unambiguous.
            if spec.start_line < point <= spec.end_line:
                probed.add(block_id)
                break
            # At the boundary just past the loop: inside only if the inserted
            # code is indented deeper than the loop header.
            if point == spec.end_line + 1 and any(
                    line.strip() and _indentation(line) > header_indent
                    for line in inserted):
                probed.add(block_id)
                break
    return probed


def probe_safety(record_source: str, replay_source: str,
                 logged_names: set[str] | frozenset[str] = frozenset(),
                 filename: str = "<replay source>") -> ProbeAnalysis:
    """Classify the probes ``replay_source`` adds over ``record_source``.

    Thin re-export of :func:`repro.analysis.purity.analyze_probe` from the
    replay layer, using the record source's own Table-1 changesets as the
    protected name set.
    """
    return analyze_probe(record_source, replay_source,
                         logged_names=logged_names, filename=filename)


def assert_probes_safe(record_source: str, replay_source: str,
                       logged_names: set[str] | frozenset[str] = frozenset(),
                       filename: str = "<replay source>") -> ProbeAnalysis:
    """Refuse ``MUTATING`` probes before any replay worker starts.

    A probe that writes a changeset name would diverge every iteration
    after its first execution — the replayed values would be silently
    wrong, which is worse than failing.  Raises :class:`ReplaySafetyError`
    with the RPL001 diagnostics attached; returns the analysis otherwise.
    """
    analysis = probe_safety(record_source, replay_source,
                            logged_names=logged_names, filename=filename)
    if analysis.mutating:
        lines = sorted(probe.facts.lineno for probe in analysis.mutating)
        raise ReplaySafetyError(
            f"replay refused: {len(analysis.mutating)} probe statement(s) "
            f"write into the recorded changeset (line(s) "
            f"{', '.join(map(str, lines))})",
            report=analysis.report)
    return analysis
