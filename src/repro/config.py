"""Configuration for Flor record/replay sessions.

The paper exposes a single meaningful knob to the user — the record overhead
tolerance ``epsilon`` (Section 5.3, Eq. 1) — and fixes a handful of internal
constants (the restore/materialize scaling factor ``c``, the checkpoint
batching size for fork-based materialization, and so on).  This module keeps
all of them in one dataclass so sessions, simulators and benchmarks share a
single source of truth.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path

from .exceptions import ConfigError

#: Overhead tolerance used throughout the paper's evaluation: 6.67% (1/15).
DEFAULT_EPSILON = 1.0 / 15.0

#: Initial restore/materialize scaling factor (Section 5.3.2); refined online.
DEFAULT_SCALING_FACTOR = 1.0

#: Average scaling factor measured across the paper's workloads (Table 3).
PAPER_MEASURED_SCALING_FACTOR = 1.38

#: The paper buffers checkpoints and forks in batches of 5000 objects.
DEFAULT_FORK_BATCH_SIZE = 5000

#: Default directory in which runs store checkpoints, logs and source copies.
DEFAULT_HOME = Path(os.environ.get("FLOR_HOME", "~/.flor_repro")).expanduser()


@dataclass(frozen=True)
class FlorConfig:
    """Immutable configuration shared by record and replay sessions.

    Parameters
    ----------
    home:
        Root directory for run artifacts.  Each run gets
        ``<home>/<run_id>/`` containing the checkpoint store, the record
        log, and the snapshot of the source code taken at record time.
    epsilon:
        Record overhead tolerance (Eq. 1).  Materialization time for a loop
        must stay below ``epsilon`` times its computation time.
    scaling_factor:
        Initial estimate of ``c`` in ``R_i = c * M_i`` (Eq. 3).
    adaptive_checkpointing:
        When False, every SkipBlock execution is memoized regardless of the
        Joint Invariant — the "adaptivity disabled" ablation in Figure 7.
    background_materialization:
        Strategy name for checkpoint materialization: one of ``"fork"``,
        ``"thread"``, ``"ipc_queue"``, ``"sequential"``.
    fork_batch_size:
        Number of buffered checkpoint objects that triggers a fork.
    compress_checkpoints:
        Gzip-compress payloads before they hit disk (Table 4 reports
        compressed sizes).
    strict_consistency:
        When True, deferred correctness checks raise instead of warning.
    """

    home: Path = field(default_factory=lambda: DEFAULT_HOME)
    epsilon: float = DEFAULT_EPSILON
    scaling_factor: float = DEFAULT_SCALING_FACTOR
    adaptive_checkpointing: bool = True
    background_materialization: str = "thread"
    fork_batch_size: int = DEFAULT_FORK_BATCH_SIZE
    compress_checkpoints: bool = True
    strict_consistency: bool = False

    _VALID_MATERIALIZERS = ("fork", "thread", "ipc_queue", "sequential")

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or self.epsilon >= 1:
            raise ConfigError(
                f"epsilon must be in (0, 1), got {self.epsilon!r}"
            )
        if self.scaling_factor <= 0:
            raise ConfigError(
                f"scaling_factor must be positive, got {self.scaling_factor!r}"
            )
        if self.fork_batch_size < 1:
            raise ConfigError(
                f"fork_batch_size must be >= 1, got {self.fork_batch_size!r}"
            )
        if self.background_materialization not in self._VALID_MATERIALIZERS:
            raise ConfigError(
                "background_materialization must be one of "
                f"{self._VALID_MATERIALIZERS}, got "
                f"{self.background_materialization!r}"
            )
        object.__setattr__(self, "home", Path(self.home).expanduser())

    def with_overrides(self, **kwargs) -> "FlorConfig":
        """Return a copy of this configuration with ``kwargs`` replaced."""
        return replace(self, **kwargs)

    def run_dir(self, run_id: str) -> Path:
        """Directory holding every artifact of run ``run_id``."""
        return self.home / run_id


_active_config: FlorConfig | None = None


def get_config() -> FlorConfig:
    """Return the process-wide configuration, creating a default if unset."""
    global _active_config
    if _active_config is None:
        _active_config = FlorConfig()
    return _active_config


def set_config(config: FlorConfig) -> FlorConfig:
    """Install ``config`` as the process-wide configuration and return it."""
    global _active_config
    if not isinstance(config, FlorConfig):
        raise ConfigError(f"expected FlorConfig, got {type(config).__name__}")
    _active_config = config
    return config


def reset_config() -> None:
    """Drop the process-wide configuration (used by tests)."""
    global _active_config
    _active_config = None
