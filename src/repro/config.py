"""Configuration for Flor record/replay sessions.

The paper exposes a single meaningful knob to the user — the record overhead
tolerance ``epsilon`` (Section 5.3, Eq. 1) — and fixes a handful of internal
constants (the restore/materialize scaling factor ``c``, the checkpoint
batching size for fork-based materialization, and so on).  This module keeps
all of them — plus the storage-backend and async-spool knobs this
reproduction adds on the road to multi-run scale — in one dataclass so
sessions, simulators and benchmarks share a single source of truth.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path

from .exceptions import ConfigError, StorageError
from .storage.lifecycle import RetentionPolicy

#: Overhead tolerance used throughout the paper's evaluation: 6.67% (1/15).
DEFAULT_EPSILON = 1.0 / 15.0

#: Initial restore/materialize scaling factor (Section 5.3.2); refined online.
DEFAULT_SCALING_FACTOR = 1.0

#: Average scaling factor measured across the paper's workloads (Table 3).
PAPER_MEASURED_SCALING_FACTOR = 1.38

#: The paper buffers checkpoints and forks in batches of 5000 objects.
DEFAULT_FORK_BATCH_SIZE = 5000

#: Default directory in which runs store checkpoints, logs and source copies.
DEFAULT_HOME = Path(os.environ.get("FLOR_HOME", "~/.flor_repro")).expanduser()

#: Default shard count for the sharded storage backend.
DEFAULT_STORAGE_SHARDS = 4

#: Default worker-pool size of the async materialization spool.
DEFAULT_SPOOL_WORKERS = 2

#: Default bound on in-flight checkpoints before ``submit`` backpressures.
DEFAULT_SPOOL_QUEUE_SIZE = 64

#: Default number of manifest rows per batched commit.
DEFAULT_MANIFEST_BATCH_SIZE = 16

#: Default parallel-replay scheduling mode (see ``replay_scheduler``).
DEFAULT_REPLAY_SCHEDULER = "static"

#: Default target iterations per dynamic-replay work-queue chunk.
DEFAULT_REPLAY_CHUNK_SIZE = 4

#: Default process-pool size for hindsight-query replay jobs.
DEFAULT_QUERY_WORKERS = 2

#: Default target chunk size for delta checkpoints (256 KiB).
DEFAULT_CHUNK_NBYTES = 1 << 18

#: Default span ring-buffer capacity for the telemetry flight recorder.
DEFAULT_TELEMETRY_BUFFER = 4096

#: Default replay-worker pool size of the hindsight query service.
DEFAULT_SERVICE_WORKERS = 2

#: Default admission-queue bound of the hindsight query service.
DEFAULT_SERVICE_QUEUE_SIZE = 16

#: Default seconds a draining service waits for in-flight requests.
DEFAULT_SERVICE_DRAIN_SECONDS = 30.0


@dataclass(frozen=True)
class FlorConfig:
    """Immutable configuration shared by record and replay sessions.

    Parameters
    ----------
    home:
        Root directory for run artifacts.  Each run gets
        ``<home>/<run_id>/`` containing the checkpoint store, the record
        log, and the snapshot of the source code taken at record time.
    epsilon:
        Record overhead tolerance (Eq. 1).  Materialization time for a loop
        must stay below ``epsilon`` times its computation time.
    scaling_factor:
        Initial estimate of ``c`` in ``R_i = c * M_i`` (Eq. 3).
    adaptive_checkpointing:
        When False, every SkipBlock execution is memoized regardless of the
        Joint Invariant — the "adaptivity disabled" ablation in Figure 7.
    background_materialization:
        Strategy name for checkpoint materialization: one of ``"spool"``
        (the default: the bounded async pipeline), ``"fork"``,
        ``"thread"``, ``"ipc_queue"``, ``"shared_memory"``,
        ``"sequential"``.
    fork_batch_size:
        Number of buffered checkpoint objects that triggers a fork
        (``"fork"`` strategy only).
    compress_checkpoints:
        Gzip-compress payloads before they hit disk (Table 4 reports
        compressed sizes).
    strict_consistency:
        When True, deferred correctness checks raise instead of warning.
    storage_backend:
        Checkpoint storage backend: ``"local"`` (single SQLite manifest +
        payload tree, the default), ``"memory"`` (process-local, for tests
        and benchmarks) or ``"sharded"`` (checkpoints partitioned by
        ``hash(block_id) % storage_shards``, one manifest per shard).
        Reopening an existing run auto-detects its backend, so replay
        never needs this to match the record-time value.
    storage_shards:
        Shard count for the ``"sharded"`` backend.  Persisted in the
        run's ``shards.json`` at record time; the persisted value wins on
        reopen.
    spool_workers:
        Worker-pool size of the async spool (``"spool"`` strategy):
        how many checkpoints serialize/compress/write concurrently.
    spool_queue_size:
        Bound on checkpoints in flight in the spool.  When the queue is
        full, ``submit`` blocks (backpressure) so record-time memory stays
        bounded regardless of checkpoint traffic.
    spool_mode:
        ``"thread"`` (default) runs spool workers as threads;
        ``"process"`` runs the CPU-bound serialize+gzip stage in a process
        pool, sidestepping the GIL for large checkpoints.
    manifest_batch_size:
        Manifest rows the spool buffers before one batched transactional
        commit.  Larger batches amortize commit overhead; ``flush()``
        commits any remainder.
    replay_scheduler:
        Parallel-replay scheduling mode.  ``"static"`` (the default) gives
        each worker a checkpoint-aligned contiguous segment balanced by
        estimated recompute + restore cost; ``"dynamic"`` has workers pull
        checkpoint-aligned chunks from a shared work queue, so stragglers
        no longer bound wall time; ``"uniform"`` keeps the paper's
        count-balanced split (for ablation).
    replay_chunk_size:
        Target iterations per work-queue chunk in ``"dynamic"`` scheduling.
        Sparse checkpointing can force larger chunks (chunks always start
        at restorable iterations).
    query_workers:
        Process-pool size for the hindsight query engine's batched replay
        jobs.  Jobs from *different* runs (and disjoint spans of the same
        run) execute concurrently, so one multi-run query saturates
        ``query_workers`` processes.
    query_memoize:
        When True (the default), values computed by query-driven replay are
        written back through the run's storage backend, so repeated and
        overlapping queries are served from storage instead of recompute.
    query_planner:
        ``"cost"`` (the default) resolves each requested value to the
        cheapest source — already-logged read, memoized read, or a
        checkpoint-aligned replay span — using the recorded per-iteration
        timing stats.  ``"replay_all"`` forces a full replay of every
        queried run (the ablation baseline the benchmark compares against).
    dedup:
        Content-address checkpoint payloads (the default): one physical
        blob per payload digest in the home-shared object store, so
        identical checkpoints across executions and across runs cost one
        copy.  ``False`` keeps the legacy one-file-per-execution layout.
        Reads follow the manifest's recorded locations, so either setting
        replays runs recorded under the other.
    chunking:
        Delta checkpoints: split each serialized payload into
        content-addressed chunks and store only chunks whose digest is
        new, so consecutive epochs pay for what changed.  ``"fixed"``
        (the default) cuts ``chunk_nbytes`` slices restarting at tensor
        boundaries; ``"cdc"`` places content-defined boundaries with a
        rolling hash (robust to insertions); ``"off"`` stores payloads
        whole.  Requires ``dedup``; reads follow the manifest, so any
        setting replays runs recorded under any other.
    chunk_nbytes:
        Target chunk size for delta checkpoints.  ``"cdc"`` chunks range
        over ``[chunk_nbytes / 4, chunk_nbytes * 4]``.
    codec:
        Compression codec for checkpoint payloads (when
        ``compress_checkpoints`` is on): ``"gzip"`` (the default, the
        paper's codec), ``"zlib"``, ``"lzma"``, ``"raw"`` (framing only),
        or ``"auto"`` — the adaptive controller picks per payload from
        its measured per-codec throughput/ratio cost model.
    codec_level:
        Compression level passed to the codec (codec-specific default
        when ``None``; clamped to the codec's valid range).
    gc_interval:
        Seconds between background lifecycle passes (retention prune +
        payload GC) on the async spool's workers during record.  ``None``
        (the default) disables background passes; session close and
        ``repro.gc()`` still run them.
    retention_policy:
        A :class:`~repro.storage.lifecycle.RetentionPolicy` applied to
        each recording run (on background passes when ``gc_interval`` is
        set, and at session close).  ``None`` keeps every checkpoint.
    telemetry:
        Turn on the flight recorder (``repro.telemetry``): structured
        spans around the record loop, spool, storage, replay and query
        seams plus aggregate metrics, captured into a bounded in-memory
        ring buffer and persisted as ``"telemetry"`` store metadata at
        session close.  Off by default; the instrumentation reduces to a
        single flag check when disabled.  When on, observed restore
        durations also refine the adaptive controller's and query
        planner's cost models (EWMA over measured values replaces the
        ``scaling_factor`` prior).
    telemetry_buffer:
        Capacity (in spans) of the telemetry ring buffer.  Old spans
        fall off the back, so tracing an arbitrarily long run costs
        bounded memory.
    service_workers:
        Replay-worker pool size of the hindsight query service
        (``python -m repro.serve``): how many query-driven replay jobs
        execute concurrently across *all* connected clients.  One bounded
        pool serves every tenant; the service's weighted round-robin
        scheduler decides whose job gets the next free slot.
    service_queue_size:
        Bound on admitted-but-unfinished service requests.  A request
        arriving past the bound is rejected immediately with a typed
        ``SERVICE_BUSY`` error carrying a retry-after hint — admission
        control never queues unboundedly and never hangs the client.
    service_drain_seconds:
        How long a draining service (SIGTERM or ``shutdown`` op) waits
        for in-flight requests to finish before closing anyway.
    strict_analysis:
        When True, record open fails with a :class:`RecordError` if the
        replay-safety lint (``repro.analysis.lint``) finds any
        warning-or-worse diagnostic in the script — unseeded RNG, wall
        clock reads in loop bodies, and friends.  The default (False)
        emits :class:`~repro.exceptions.ReplaySafetyWarning` and records
        anyway, matching the paper's warn-don't-abort posture.
    """

    home: Path = field(default_factory=lambda: DEFAULT_HOME)
    epsilon: float = DEFAULT_EPSILON
    scaling_factor: float = DEFAULT_SCALING_FACTOR
    adaptive_checkpointing: bool = True
    background_materialization: str = "spool"
    fork_batch_size: int = DEFAULT_FORK_BATCH_SIZE
    compress_checkpoints: bool = True
    strict_consistency: bool = False
    storage_backend: str = "local"
    storage_shards: int = DEFAULT_STORAGE_SHARDS
    spool_workers: int = DEFAULT_SPOOL_WORKERS
    spool_queue_size: int = DEFAULT_SPOOL_QUEUE_SIZE
    spool_mode: str = "thread"
    manifest_batch_size: int = DEFAULT_MANIFEST_BATCH_SIZE
    replay_scheduler: str = DEFAULT_REPLAY_SCHEDULER
    replay_chunk_size: int = DEFAULT_REPLAY_CHUNK_SIZE
    query_workers: int = DEFAULT_QUERY_WORKERS
    query_memoize: bool = True
    query_planner: str = "cost"
    service_workers: int = DEFAULT_SERVICE_WORKERS
    service_queue_size: int = DEFAULT_SERVICE_QUEUE_SIZE
    service_drain_seconds: float = DEFAULT_SERVICE_DRAIN_SECONDS
    dedup: bool = True
    chunking: str = "fixed"
    chunk_nbytes: int = DEFAULT_CHUNK_NBYTES
    codec: str = "gzip"
    codec_level: int | None = None
    gc_interval: float | None = None
    retention_policy: RetentionPolicy | None = None
    strict_analysis: bool = False
    telemetry: bool = False
    telemetry_buffer: int = DEFAULT_TELEMETRY_BUFFER

    _VALID_MATERIALIZERS = ("fork", "thread", "ipc_queue", "sequential",
                            "shared_memory", "spool")
    _VALID_BACKENDS = ("local", "memory", "sharded")
    _VALID_SPOOL_MODES = ("thread", "process")
    _VALID_REPLAY_SCHEDULERS = ("uniform", "static", "dynamic")
    _VALID_QUERY_PLANNERS = ("cost", "replay_all")
    _VALID_CHUNKING = ("off", "fixed", "cdc")
    _VALID_CODECS = ("auto", "raw", "gzip", "zlib", "lzma")

    def __post_init__(self) -> None:
        object.__setattr__(self, "home", Path(self.home).expanduser())
        self.validate()

    def validate(self) -> "FlorConfig":
        """Check every knob and raise :class:`ConfigError` on the first bad one.

        All validation lives here (not scattered across the record/replay
        machinery), so a typo'd enum value like ``replay_scheduler="statik"``
        fails at construction with a message naming the knob and its valid
        values — instead of deep inside a replay worker.  Returns ``self``
        so callers can chain ``FlorConfig(...).validate()``.
        """
        if self.epsilon <= 0 or self.epsilon >= 1:
            raise ConfigError(
                f"epsilon must be in (0, 1), got {self.epsilon!r}")
        if self.scaling_factor <= 0:
            raise ConfigError(
                f"scaling_factor must be positive, got {self.scaling_factor!r}")
        self._check_choice("background_materialization",
                           self.background_materialization,
                           self._VALID_MATERIALIZERS)
        self._check_choice("storage_backend", self.storage_backend,
                           self._VALID_BACKENDS)
        self._check_choice("spool_mode", self.spool_mode,
                           self._VALID_SPOOL_MODES)
        self._check_choice("replay_scheduler", self.replay_scheduler,
                           self._VALID_REPLAY_SCHEDULERS)
        self._check_choice("query_planner", self.query_planner,
                           self._VALID_QUERY_PLANNERS)
        self._check_at_least_one("fork_batch_size", self.fork_batch_size)
        self._check_at_least_one("storage_shards", self.storage_shards)
        self._check_at_least_one("spool_workers", self.spool_workers)
        self._check_at_least_one("spool_queue_size", self.spool_queue_size)
        self._check_at_least_one("manifest_batch_size",
                                 self.manifest_batch_size)
        self._check_at_least_one("replay_chunk_size", self.replay_chunk_size)
        self._check_at_least_one("query_workers", self.query_workers)
        self._check_at_least_one("service_workers", self.service_workers)
        self._check_at_least_one("service_queue_size",
                                 self.service_queue_size)
        if (not isinstance(self.service_drain_seconds, (int, float))
                or isinstance(self.service_drain_seconds, bool)
                or self.service_drain_seconds <= 0):
            raise ConfigError(
                f"service_drain_seconds must be a positive number of "
                f"seconds, got {self.service_drain_seconds!r}")
        if not isinstance(self.dedup, bool):
            raise ConfigError(f"dedup must be a bool, got {self.dedup!r}")
        self._check_choice("chunking", self.chunking, self._VALID_CHUNKING)
        self._check_choice("codec", self.codec, self._VALID_CODECS)
        if (not isinstance(self.chunk_nbytes, int)
                or isinstance(self.chunk_nbytes, bool)
                or self.chunk_nbytes < 1024):
            # A floor keeps recipes (one digest per chunk) and per-chunk
            # hashing overhead sane; delta granularity below 1 KiB buys
            # nothing on tensor payloads.
            raise ConfigError(f"chunk_nbytes must be an integer >= 1024, "
                              f"got {self.chunk_nbytes!r}")
        if self.codec_level is not None and (
                not isinstance(self.codec_level, int)
                or isinstance(self.codec_level, bool)
                or not 0 <= self.codec_level <= 9):
            raise ConfigError(f"codec_level must be an integer in [0, 9] or "
                              f"None, got {self.codec_level!r}")
        if not isinstance(self.strict_analysis, bool):
            raise ConfigError(f"strict_analysis must be a bool, "
                              f"got {self.strict_analysis!r}")
        if not isinstance(self.telemetry, bool):
            raise ConfigError(
                f"telemetry must be a bool, got {self.telemetry!r}")
        if (not isinstance(self.telemetry_buffer, int)
                or isinstance(self.telemetry_buffer, bool)
                or self.telemetry_buffer < 16):
            # Below ~16 spans the buffer cannot even hold one record
            # iteration's worth of nested spans; the ring would thrash.
            raise ConfigError(f"telemetry_buffer must be an integer >= 16, "
                              f"got {self.telemetry_buffer!r}")
        if self.gc_interval is not None and (
                not isinstance(self.gc_interval, (int, float))
                or isinstance(self.gc_interval, bool)
                or self.gc_interval <= 0):
            raise ConfigError(
                f"gc_interval must be a positive number of seconds or "
                f"None, got {self.gc_interval!r}")
        if self.gc_interval is not None and \
                self.background_materialization != "spool":
            # Background lifecycle passes ride on the spool's batched
            # manifest commits; with any other materializer the interval
            # would silently never fire.
            raise ConfigError(
                "gc_interval requires background_materialization='spool' "
                f"(got {self.background_materialization!r}); drop "
                "gc_interval to run lifecycle passes at session close only")
        if self.retention_policy is not None:
            if not isinstance(self.retention_policy, RetentionPolicy):
                raise ConfigError(
                    f"retention_policy must be a RetentionPolicy or None, "
                    f"got {type(self.retention_policy).__name__}")
            try:
                self.retention_policy.validate()
            except StorageError as exc:
                raise ConfigError(f"retention_policy invalid: {exc}") from exc
        return self

    @staticmethod
    def _check_choice(name: str, value, valid: tuple) -> None:
        if value not in valid:
            raise ConfigError(f"{name} must be one of {valid}, got {value!r}")

    @staticmethod
    def _check_at_least_one(name: str, value) -> None:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ConfigError(f"{name} must be an integer >= 1, "
                              f"got {value!r}")

    def with_overrides(self, **kwargs) -> "FlorConfig":
        """Return a copy of this configuration with ``kwargs`` replaced."""
        return replace(self, **kwargs)

    def run_dir(self, run_id: str) -> Path:
        """Directory holding every artifact of run ``run_id``."""
        return self.home / run_id


_active_config: FlorConfig | None = None


def get_config() -> FlorConfig:
    """Return the process-wide configuration, creating a default if unset."""
    global _active_config
    if _active_config is None:
        _active_config = FlorConfig()
    return _active_config


def set_config(config: FlorConfig) -> FlorConfig:
    """Install ``config`` as the process-wide configuration and return it."""
    global _active_config
    if not isinstance(config, FlorConfig):
        raise ConfigError(f"expected FlorConfig, got {type(config).__name__}")
    _active_config = config
    return config


def reset_config() -> None:
    """Drop the process-wide configuration (used by tests)."""
    global _active_config
    _active_config = None
