"""Data-parallel record: K workers, one shared Flor home, one logical job.

The fleet-scale shape of the paper's headline scenario: a data-parallel
training job runs as ``world_size`` recorder processes, each training on
its own shard of the dataset and recording **shard-local** state (its model
replica, its shard losses) into the *same* Flor home.  Every worker is an
ordinary Flor run — own run directory, own manifest, own record log —
identified as ``<job_id>@<rank>`` (:func:`~repro.utils.naming.worker_run_id`),
so nothing in the storage layer is distributed-aware: what the workers share
is exactly what PR 5 already shares per home, the content-addressed object
store and its GC, now exercised by concurrent *writers* instead of one
writer racing GC.  The catalog's merged view
(:meth:`~repro.query.catalog.RunCatalog.job`) groups the worker runs back
into one logical job for queries and drift diffs.

Entry points:

* :func:`build_distributed_training_script` — source text of one worker's
  shard-local training script (what each recorder process executes);
* :func:`record_worker` — record one worker's script under its worker run
  id (runs in the calling process; the per-process unit tests and the
  fault-injection battery drive this directly);
* :func:`run_distributed_record` — the driver: spawn ``world_size``
  recorder processes against one shared home and collect per-worker
  results.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field

from ..config import FlorConfig, get_config
from ..exceptions import WorkloadError
from ..utils.naming import new_run_id, worker_run_id
from .registry import get_workload

__all__ = ["DistributedWorkerResult", "DistributedRecordResult",
           "build_distributed_training_script", "record_worker",
           "run_distributed_record"]


_DISTRIBUTED_SCRIPT_TEMPLATE = '''\
"""Miniature {name} data-parallel worker {rank}/{world_size} ({task})."""
import numpy as np
from repro import api as flor
from repro import torchlike as tl
from repro.workloads.training import dataset_for, make_training_setup

RANK = {rank}
WORLD_SIZE = {world_size}

setup = make_training_setup({name!r}, seed={seed})
net = setup.net
optimizer = setup.optimizer
scheduler = setup.scheduler
criterion = setup.criterion


class _Shard:
    """Rank-strided view of the shared dataset (mirrors DistributedSampler)."""

    def __init__(self, dataset, rank, world):
        self.dataset = dataset
        self.indices = list(range(rank, len(dataset), world))

    def __getitem__(self, index):
        return self.dataset[self.indices[index]]

    def __len__(self):
        return len(self.indices)


shard = _Shard(dataset_for(setup.spec, seed={seed}), RANK, WORLD_SIZE)
trainloader = tl.DataLoader(shard, batch_size=setup.spec.mini_batch_size,
                            shuffle=True, seed={seed} + RANK)

for epoch in range({epochs}):
    trainloader.set_epoch(epoch)
    for inputs, targets in trainloader:
        logits = net({forward})
        loss = criterion(logits, targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    scheduler.step()
    flor.log("shard_loss", loss.item())
    flor.log("shard_examples", len(shard))
'''


def build_distributed_training_script(workload_name: str, rank: int,
                                      world_size: int,
                                      epochs: int | None = None,
                                      seed: int = 0) -> str:
    """Source text of worker ``rank``'s shard-local training script.

    Every worker trains its own model replica on a rank-strided shard of
    the shared synthetic dataset; the model seed is shared (all replicas
    initialize identically — the data-parallel convention) while the
    shuffle seed is rank-offset so shards see independent batch orders.
    """
    if world_size < 1:
        raise WorkloadError(f"world_size must be >= 1, got {world_size}")
    if not 0 <= rank < world_size:
        raise WorkloadError(
            f"rank {rank} out of range for world_size {world_size}")
    spec = get_workload(workload_name)
    wrap_inputs = spec.name.lower() in ("cifr", "rsnt", "imgn", "jasp")
    forward = "tl.Tensor(inputs)" if wrap_inputs else "inputs"
    return _DISTRIBUTED_SCRIPT_TEMPLATE.format(
        name=spec.name, task=spec.task, rank=rank, world_size=world_size,
        seed=seed, forward=forward,
        epochs=epochs if epochs is not None else spec.mini_epochs)


@dataclass
class DistributedWorkerResult:
    """One worker's record outcome, as reported back through the pool."""

    rank: int
    run_id: str
    wall_seconds: float = 0.0
    checkpoint_count: int = 0
    logged_iterations: int = 0
    error: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.error is None


@dataclass
class DistributedRecordResult:
    """Outcome of one data-parallel record job (K worker runs, one home)."""

    job_id: str
    world_size: int
    workers: list[DistributedWorkerResult] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def run_ids(self) -> list[str]:
        return [worker.run_id for worker in self.workers]

    @property
    def succeeded(self) -> bool:
        return all(worker.succeeded for worker in self.workers)


def record_worker(job_id: str, rank: int, world_size: int,
                  workload_name: str = "cifr", epochs: int | None = None,
                  seed: int = 0,
                  config: FlorConfig | None = None
                  ) -> DistributedWorkerResult:
    """Record one worker's shard-local run under ``<job_id>@<rank>``.

    Runs in the calling process — this is both the subprocess entry of
    :func:`run_distributed_record` and the unit the concurrency battery
    drives (and kills) directly.
    """
    from ..record.recorder import record_source

    config = config or get_config()
    run_id = worker_run_id(job_id, rank)
    start = time.perf_counter()
    try:
        source = build_distributed_training_script(
            workload_name, rank, world_size, epochs=epochs, seed=seed)
        recorded = record_source(source, name=workload_name, config=config,
                                 run_id=run_id)
    except Exception as exc:  # surfaced per worker, like WorkerResult.error
        return DistributedWorkerResult(rank=rank, run_id=run_id,
                                       wall_seconds=time.perf_counter() - start,
                                       error=f"{type(exc).__name__}: {exc}")
    return DistributedWorkerResult(
        rank=rank,
        run_id=run_id,
        wall_seconds=time.perf_counter() - start,
        checkpoint_count=recorded.checkpoint_count,
        logged_iterations=len({r.iteration for r in recorded.log_records
                               if r.iteration is not None}),
    )


def _worker_entry(args: tuple) -> dict:
    """Multiprocessing entry point; returns a picklable summary."""
    (job_id, rank, world_size, workload_name, epochs, seed, config) = args
    # A forked child inherits the parent's active-session registration;
    # drop it so this worker's record session can activate.
    from .. import session as session_module
    session_module._ACTIVE_SESSION = None
    result = record_worker(job_id, rank, world_size,
                           workload_name=workload_name, epochs=epochs,
                           seed=seed, config=config)
    return {"rank": result.rank, "run_id": result.run_id,
            "wall_seconds": result.wall_seconds,
            "checkpoint_count": result.checkpoint_count,
            "logged_iterations": result.logged_iterations,
            "error": result.error}


def run_distributed_record(workload_name: str = "cifr", world_size: int = 2,
                           epochs: int | None = None, seed: int = 0,
                           job_name: str | None = None,
                           config: FlorConfig | None = None,
                           start_method: str | None = None
                           ) -> DistributedRecordResult:
    """Record one data-parallel job: ``world_size`` processes, one home.

    Workers are real OS processes (the shared-home writer race is only
    real across processes); each records its shard-local run under
    ``<job_id>@<rank>``.  In-memory backends cannot span processes, so a
    ``memory``-backend config records its workers sequentially in this
    process instead — same runs, same shared (process-local) object store,
    no concurrency.  Worker failures are reported per worker, not raised:
    the surviving workers' runs are still valid, queryable Flor runs.
    """
    if world_size < 1:
        raise WorkloadError(f"world_size must be >= 1, got {world_size}")
    config = config or get_config()
    job_id = new_run_id(job_name or f"{workload_name}-ddp")
    result = DistributedRecordResult(job_id=job_id, world_size=world_size)
    start = time.perf_counter()

    jobs = [(job_id, rank, world_size, workload_name, epochs, seed, config)
            for rank in range(world_size)]
    if world_size == 1 or config.storage_backend == "memory":
        summaries = [_worker_entry(job) for job in jobs]
    else:
        method = start_method or ("fork" if hasattr(os, "fork") else "spawn")
        ctx = mp.get_context(method)
        with ctx.Pool(processes=world_size) as pool:
            summaries = pool.map(_worker_entry, jobs)

    for summary in summaries:
        result.workers.append(DistributedWorkerResult(
            rank=summary["rank"], run_id=summary["run_id"],
            wall_seconds=summary["wall_seconds"],
            checkpoint_count=summary["checkpoint_count"],
            logged_iterations=summary["logged_iterations"],
            error=summary["error"]))
    result.wall_seconds = time.perf_counter() - start
    return result
