"""Runnable miniature training workloads.

Two entry points per workload:

* :func:`build_training_script` returns the *source text* of a plain
  training script (the same nested-loop shape as Figure 2).  This is what
  the auto-instrumentation path records: ``flor.record_script`` /
  ``flor.record_source`` instrument it, and hindsight probes are added to it
  later as ordinary source edits.
* :func:`make_training_setup` returns live objects (model, loader,
  optimizer, scheduler, criterion) for code that drives training through the
  explicit ``flor.loop`` / ``flor.skipblock`` API.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import torchlike as tl
from ..exceptions import WorkloadError
from . import models, synthetic_data
from .registry import WorkloadSpec, get_workload

__all__ = ["TrainingSetup", "dataset_for", "make_training_setup",
           "build_training_script", "run_vanilla_training"]


@dataclass
class TrainingSetup:
    """Live objects for one miniature workload's training loop."""

    spec: WorkloadSpec
    net: tl.Module
    trainloader: tl.DataLoader
    optimizer: tl.Optimizer
    scheduler: tl.LRScheduler
    criterion: tl.Module
    wrap_inputs: bool  # whether batches must be wrapped in a Tensor (images)


def dataset_for(spec: WorkloadSpec, seed: int = 0) -> tl.Dataset:
    """Build the synthetic dataset matching a workload's modality."""
    name = spec.name.lower()
    if name in ("cifr", "rsnt", "imgn"):
        return synthetic_data.synthetic_image_classification(
            num_samples=spec.mini_dataset_size, seed=seed)
    if name in ("rte", "cola"):
        return synthetic_data.synthetic_text_classification(
            num_samples=spec.mini_dataset_size, seed=seed)
    if name == "wiki":
        return synthetic_data.synthetic_text_classification(
            num_samples=spec.mini_dataset_size, seed=seed)
    if name == "jasp":
        return synthetic_data.synthetic_speech_frames(
            num_samples=spec.mini_dataset_size, seed=seed)
    if name == "rnnt":
        return synthetic_data.synthetic_translation_pairs(
            num_samples=spec.mini_dataset_size, seed=seed)
    raise WorkloadError(f"no dataset builder for workload {spec.name!r}")


def make_training_setup(workload_name: str, seed: int = 0) -> TrainingSetup:
    """Build model, data, optimizer and scheduler for a miniature workload."""
    spec = get_workload(workload_name)
    rng = np.random.default_rng(seed)
    dataset = dataset_for(spec, seed=seed)
    trainloader = tl.DataLoader(dataset, batch_size=spec.mini_batch_size,
                                shuffle=True, seed=seed)
    net = models.build_model_for(spec.name, rng=rng)

    trainable = [p for p in net.parameters() if p.requires_grad]
    if spec.is_fine_tune:
        optimizer: tl.Optimizer = tl.AdamW(trainable, lr=5e-3, weight_decay=0.01)
    else:
        optimizer = tl.SGD(trainable, lr=0.02, momentum=0.9)
    scheduler = tl.StepLR(optimizer, step_size=max(spec.mini_epochs // 2, 1),
                          gamma=0.5)
    criterion = tl.CrossEntropyLoss()
    wrap_inputs = spec.name.lower() in ("cifr", "rsnt", "imgn", "jasp")
    return TrainingSetup(spec=spec, net=net, trainloader=trainloader,
                         optimizer=optimizer, scheduler=scheduler,
                         criterion=criterion, wrap_inputs=wrap_inputs)


_SCRIPT_TEMPLATE = '''\
"""Miniature {name} training script ({task}; {mode})."""
import numpy as np
from repro import api as flor
from repro import torchlike as tl
from repro.workloads.training import make_training_setup

setup = make_training_setup({name!r}, seed={seed})
net = setup.net
trainloader = setup.trainloader
optimizer = setup.optimizer
scheduler = setup.scheduler
criterion = setup.criterion


def evaluate(model):
    """Mean training-set accuracy (the user-observable metric that gets logged)."""
    correct = 0
    total = 0
    with tl.no_grad():
        for inputs, targets in trainloader:
            logits = model({forward})
            predictions = logits.argmax(axis=-1).numpy()
            correct += int((predictions == targets).sum())
            total += int(np.prod(targets.shape))
    return correct / max(total, 1)


for epoch in range({epochs}):
    trainloader.set_epoch(epoch)
    for inputs, targets in trainloader:
        logits = net({forward})
        loss = criterion(logits, targets)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    scheduler.step()
    flor.log("train_loss", loss.item())
    flor.log("accuracy", evaluate(net))
'''


def build_training_script(workload_name: str, epochs: int | None = None,
                          seed: int = 0) -> str:
    """Return the source text of a plain (uninstrumented) training script."""
    spec = get_workload(workload_name)
    wrap_inputs = spec.name.lower() in ("cifr", "rsnt", "imgn", "jasp")
    forward = "tl.Tensor(inputs)" if wrap_inputs else "inputs"
    return _SCRIPT_TEMPLATE.format(
        name=spec.name, task=spec.task, mode=spec.mode, seed=seed,
        epochs=epochs if epochs is not None else spec.mini_epochs,
        forward=forward)


def run_vanilla_training(workload_name: str, epochs: int | None = None,
                         seed: int = 0) -> list[float]:
    """Train a miniature workload without Flor; return the per-epoch losses.

    This is the "vanilla execution" the evaluation compares against: same
    work, same logging volume, no checkpointing.
    """
    setup = make_training_setup(workload_name, seed=seed)
    spec = setup.spec
    epochs = epochs if epochs is not None else spec.mini_epochs
    losses: list[float] = []
    for epoch in range(epochs):
        setup.trainloader.set_epoch(epoch)
        loss = None
        for inputs, targets in setup.trainloader:
            batch = tl.Tensor(inputs) if setup.wrap_inputs else inputs
            logits = setup.net(batch)
            loss = setup.criterion(logits, targets)
            setup.optimizer.zero_grad()
            loss.backward()
            setup.optimizer.step()
        setup.scheduler.step()
        losses.append(float(loss.item()))
    return losses
