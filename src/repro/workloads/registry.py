"""The evaluation workload catalogue (Table 3).

Each entry carries two parameterisations:

* the **paper-scale** parameters (epochs, wall-clock training time on the
  paper's 4×V100 testbed, gzip-compressed checkpoint size from Table 4, and
  whether the workload trains from scratch or fine-tunes) — these drive the
  paper-scale simulator in :mod:`repro.sim`;
* a **miniature** parameterisation (dataset size, model width, epochs) that
  trains in seconds on CPU against :mod:`repro.torchlike` — these drive the
  live end-to-end experiments and tests.

Training times are taken from Figure 11 (hours, vanilla execution) and
checkpoint sizes from Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import WorkloadError

__all__ = ["WorkloadSpec", "WORKLOADS", "get_workload", "workload_names"]

_MB = 1024 ** 2
_GB = 1024 ** 3


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table 3, with the measurements the evaluation relies on."""

    name: str
    benchmark: str
    task: str
    model: str
    dataset: str
    mode: str                     # "train" or "fine-tune"
    epochs: int
    # Paper-scale measurements (the simulator's inputs).
    vanilla_hours: float          # Figure 11: training time without Flor
    checkpoint_nbytes: int        # Table 4: gzip-compressed checkpoints / run
    record_overhead_adaptive: float      # Figure 7 / 11: with adaptive ckpt
    record_overhead_nonadaptive: float   # Figure 7: adaptivity disabled
    outer_probe_speedup: float    # Figure 12 (top): partial replay speedup
    # Miniature parameterisation (live experiments).
    mini_epochs: int = 6
    mini_dataset_size: int = 96
    mini_batch_size: int = 16
    mini_hidden: int = 32

    @property
    def is_fine_tune(self) -> bool:
        return self.mode == "fine-tune"

    @property
    def vanilla_seconds(self) -> float:
        return self.vanilla_hours * 3600.0

    @property
    def epoch_seconds(self) -> float:
        """Vanilla time of one main-loop iteration at paper scale."""
        return self.vanilla_seconds / self.epochs

    @property
    def checkpoint_nbytes_per_epoch(self) -> float:
        """Approximate bytes of checkpoint state written per memoized epoch."""
        return self.checkpoint_nbytes / self.epochs


# Paper-scale numbers: epochs/benchmarks/models from Table 3, checkpoint
# sizes from Table 4, training hours read off Figure 11, overheads from
# Figures 7 and 11, and outer-probe replay speedups from Figure 12 (top).
WORKLOADS: dict[str, WorkloadSpec] = {
    "RTE": WorkloadSpec(
        name="RTE", benchmark="GLUE", task="Recognizing Textual Entailment",
        model="RoBERTa", dataset="RTE", mode="fine-tune", epochs=200,
        vanilla_hours=2.5, checkpoint_nbytes=14 * _GB,
        record_overhead_adaptive=0.055, record_overhead_nonadaptive=0.91,
        outer_probe_speedup=7.0,
        mini_epochs=6, mini_dataset_size=64, mini_batch_size=16, mini_hidden=32),
    "CoLA": WorkloadSpec(
        name="CoLA", benchmark="GLUE", task="Language Acceptability",
        model="RoBERTa", dataset="CoLA", mode="fine-tune", epochs=80,
        vanilla_hours=1.8, checkpoint_nbytes=15 * _GB,
        record_overhead_adaptive=0.05, record_overhead_nonadaptive=0.28,
        outer_probe_speedup=9.0,
        mini_epochs=6, mini_dataset_size=64, mini_batch_size=16, mini_hidden=32),
    "Cifr": WorkloadSpec(
        name="Cifr", benchmark="Classic CV", task="Image Classification",
        model="Squeezenet", dataset="Cifar100", mode="train", epochs=200,
        vanilla_hours=1.0, checkpoint_nbytes=705 * _MB,
        record_overhead_adaptive=0.013, record_overhead_nonadaptive=0.018,
        outer_probe_speedup=64.0,
        mini_epochs=6, mini_dataset_size=96, mini_batch_size=16, mini_hidden=16),
    "RsNt": WorkloadSpec(
        name="RsNt", benchmark="Classic CV", task="Image Classification",
        model="ResNet-152", dataset="Cifar100", mode="train", epochs=200,
        vanilla_hours=16.0, checkpoint_nbytes=39 * _GB,
        record_overhead_adaptive=0.014, record_overhead_nonadaptive=0.02,
        outer_probe_speedup=870.0,
        mini_epochs=6, mini_dataset_size=96, mini_batch_size=16, mini_hidden=16),
    "Wiki": WorkloadSpec(
        name="Wiki", benchmark="GLUE", task="Language Modeling",
        model="RoBERTa", dataset="Wiki", mode="train", epochs=12,
        vanilla_hours=20.0, checkpoint_nbytes=14 * _GB,
        record_overhead_adaptive=0.01, record_overhead_nonadaptive=0.012,
        outer_probe_speedup=1123.0,
        mini_epochs=4, mini_dataset_size=64, mini_batch_size=8, mini_hidden=32),
    "Jasp": WorkloadSpec(
        name="Jasp", benchmark="MLPerf", task="Speech Recognition",
        model="Jasper", dataset="LibriSpeech", mode="train", epochs=4,
        vanilla_hours=14.0, checkpoint_nbytes=2 * _GB,
        record_overhead_adaptive=0.012, record_overhead_nonadaptive=0.015,
        outer_probe_speedup=340.0,
        mini_epochs=4, mini_dataset_size=48, mini_batch_size=8, mini_hidden=16),
    "ImgN": WorkloadSpec(
        name="ImgN", benchmark="Classic CV", task="Image Classification",
        model="Squeezenet", dataset="ImageNet", mode="train", epochs=8,
        vanilla_hours=10.0, checkpoint_nbytes=51 * _MB,
        record_overhead_adaptive=0.01, record_overhead_nonadaptive=0.013,
        outer_probe_speedup=410.0,
        mini_epochs=4, mini_dataset_size=64, mini_batch_size=16, mini_hidden=16),
    "RnnT": WorkloadSpec(
        name="RnnT", benchmark="MLPerf", task="Language Translation",
        model="RNN w/ Attention", dataset="WMT16", mode="train", epochs=8,
        vanilla_hours=12.0, checkpoint_nbytes=29 * _GB,
        record_overhead_adaptive=0.015, record_overhead_nonadaptive=0.02,
        outer_probe_speedup=290.0,
        mini_epochs=4, mini_dataset_size=48, mini_batch_size=8, mini_hidden=16),
}


def workload_names() -> list[str]:
    """Names of all eight workloads, in Table 3 order."""
    return list(WORKLOADS)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by its Table 3 name (case-insensitive)."""
    for key, spec in WORKLOADS.items():
        if key.lower() == name.lower():
            return spec
    raise WorkloadError(
        f"unknown workload {name!r}; known workloads: {workload_names()}")
