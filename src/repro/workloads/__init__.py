"""Miniature versions of the paper's eight evaluation workloads (Table 3)."""

from .models import (MiniJasper, MiniResNet, MiniRNNTranslator, MiniRoBERTa,
                     MiniRoBERTaClassifier, MiniSqueezeNet, build_model_for)
from .registry import WORKLOADS, WorkloadSpec, get_workload, workload_names
from .synthetic_data import (synthetic_image_classification,
                             synthetic_language_modeling,
                             synthetic_speech_frames,
                             synthetic_text_classification,
                             synthetic_translation_pairs)
from .training import (TrainingSetup, build_training_script, dataset_for,
                       make_training_setup, run_vanilla_training)

__all__ = [
    "WorkloadSpec", "WORKLOADS", "get_workload", "workload_names",
    "MiniSqueezeNet", "MiniResNet", "MiniRoBERTa", "MiniRoBERTaClassifier",
    "MiniJasper", "MiniRNNTranslator", "build_model_for",
    "synthetic_image_classification", "synthetic_text_classification",
    "synthetic_language_modeling", "synthetic_speech_frames",
    "synthetic_translation_pairs",
    "TrainingSetup", "dataset_for", "make_training_setup",
    "build_training_script", "run_vanilla_training",
]
