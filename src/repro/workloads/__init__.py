"""Miniature versions of the paper's eight evaluation workloads (Table 3).

Each workload pairs a small :mod:`repro.torchlike` model with a synthetic
dataset generator so the full record -> replay pipeline runs in seconds on a
CPU while keeping the paper's shape: an epoch-level main loop, a nested
batch loop wrapped in a SkipBlock, and per-epoch metric logging.

* :mod:`~repro.workloads.registry` — :class:`WorkloadSpec` table mapping the
  paper's workload names (ImgN, Cifr, RoBERTa, ...) to model builders,
  dataset shapes and paper-reported statistics.
* :mod:`~repro.workloads.models` — the miniature model zoo (MiniSqueezeNet,
  MiniResNet, MiniRoBERTa, MiniJasper, MiniRNNTranslator, ...).
* :mod:`~repro.workloads.synthetic_data` — deterministic generators for
  image/text/speech/translation toy datasets.
* :mod:`~repro.workloads.training` — glue: builds runnable training scripts
  (for the instrumenter) and vanilla baselines (for overhead benchmarks).
"""

from .distributed import (DistributedRecordResult, DistributedWorkerResult,
                          build_distributed_training_script, record_worker,
                          run_distributed_record)
from .models import (MiniJasper, MiniResNet, MiniRNNTranslator, MiniRoBERTa,
                     MiniRoBERTaClassifier, MiniSqueezeNet, build_model_for)
from .registry import WORKLOADS, WorkloadSpec, get_workload, workload_names
from .streaming import (DEFAULT_STREAMING_POLICY, StreamingRecordResult,
                        build_streaming_script, run_streaming_record)
from .synthetic_data import (synthetic_image_classification,
                             synthetic_language_modeling,
                             synthetic_speech_frames,
                             synthetic_text_classification,
                             synthetic_translation_pairs)
from .training import (TrainingSetup, build_training_script, dataset_for,
                       make_training_setup, run_vanilla_training)

__all__ = [
    "WorkloadSpec", "WORKLOADS", "get_workload", "workload_names",
    "MiniSqueezeNet", "MiniResNet", "MiniRoBERTa", "MiniRoBERTaClassifier",
    "MiniJasper", "MiniRNNTranslator", "build_model_for",
    "synthetic_image_classification", "synthetic_text_classification",
    "synthetic_language_modeling", "synthetic_speech_frames",
    "synthetic_translation_pairs",
    "TrainingSetup", "dataset_for", "make_training_setup",
    "build_training_script", "run_vanilla_training",
    "DistributedWorkerResult", "DistributedRecordResult",
    "build_distributed_training_script", "record_worker",
    "run_distributed_record",
    "StreamingRecordResult", "DEFAULT_STREAMING_POLICY",
    "build_streaming_script", "run_streaming_record",
]
